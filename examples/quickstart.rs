//! Quickstart: synthesize a small arithmetic expression into a timing-optimal
//! carry-save FA-tree and print the quality-of-results report plus a Verilog excerpt.
//!
//! Run with `cargo run -p dpsyn-core --example quickstart`.

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_ir::{parse_expr, InputSpec};
use dpsyn_tech::TechLibrary;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The expression of Figure 1 of the paper, with realistic widths.
    let expr = parse_expr("x*x + x + y")?;
    let spec = InputSpec::builder()
        .var_with_arrival("x", 8, 0.7) // x arrives late, as in Table 1
        .var("y", 8)
        .build()?;
    let lib = TechLibrary::lcbg10pv_like();

    let design = Synthesizer::new(&expr, &spec)
        .objective(Objective::Timing)
        .technology(&lib)
        .name("quickstart")
        .run()?;

    println!("{}", design.report());
    let verilog = design.to_verilog();
    println!("--- first lines of the generated Verilog ---");
    for line in verilog.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)", verilog.lines().count());
    Ok(())
}
