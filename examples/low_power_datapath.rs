//! Power-driven synthesis of a complex-multiplier datapath whose inputs have strongly
//! biased signal probabilities, validated against a toggle-counting logic simulation.
//!
//! Run with `cargo run -p dpsyn-core --example low_power_datapath`.

use dpsyn_core::{Objective, SelectionStrategy, Synthesizer};
use dpsyn_ir::{parse_expr, InputSpec};
use dpsyn_sim::measure_toggles;
use dpsyn_tech::TechLibrary;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Real part of a complex multiplication; the imaginary operands are almost always
    // small in this (synthetic) workload, so their high-order bits are rarely 1.
    let expr = parse_expr("a*c - b*d + 32768")?;
    let spec = InputSpec::builder()
        .var_with_probability("a", 12, 0.5)
        .var_with_probability("b", 12, 0.08)
        .var_with_probability("c", 12, 0.5)
        .var_with_probability("d", 12, 0.12)
        .build()?;
    let lib = TechLibrary::lcbg10pv_like();

    let mut rows = Vec::new();
    for (label, strategy) in [
        ("FA_ALP", None),
        ("fixed Wallace", Some(SelectionStrategy::RowOrder)),
        ("FA_random", Some(SelectionStrategy::Random(9))),
    ] {
        let mut synthesizer = Synthesizer::new(&expr, &spec)
            .objective(Objective::Power)
            .technology(&lib)
            .output_width(26)
            .name("complex_real");
        if let Some(strategy) = strategy {
            synthesizer = synthesizer.strategy(strategy);
        }
        let design = synthesizer.run()?;
        // Cross-check the analytic estimate with a toggle-counting simulation.
        let toggles = measure_toggles(design.netlist(), design.word_map(), &spec, 2000, 5)?;
        let simulated: f64 = design
            .netlist()
            .cells()
            .flat_map(|(_, cell)| cell.outputs().to_vec())
            .map(|net| toggles.toggle_rate(net))
            .sum();
        rows.push((label, design.report().switching_energy, simulated));
    }

    println!("complex multiplier real part, biased input probabilities");
    println!(
        "{:<14} {:>18} {:>22}",
        "selection", "analytic E_switch", "simulated toggles/vec"
    );
    for (label, analytic, simulated) in &rows {
        println!("{:<14} {:>18.3} {:>22.3}", label, analytic, simulated);
    }
    println!("the power-driven selection should sit at or near the bottom of both columns");
    Ok(())
}
