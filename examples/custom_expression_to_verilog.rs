//! Synthesize an arbitrary expression given on the command line and print the
//! generated structural Verilog netlist (the paper's tool output format).
//!
//! Usage:
//! `cargo run -p dpsyn-core --example custom_expression_to_verilog -- "a*b + c - 7" 12`
//! (expression, then optional per-input width, default 8; optional objective
//! `timing`/`power` as the third argument).

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_ir::{parse_expr, InputSpec};
use dpsyn_tech::TechLibrary;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let source = args.next().unwrap_or_else(|| "a*b + c - 7".to_string());
    let width: u32 = args.next().map(|w| w.parse()).transpose()?.unwrap_or(8);
    let objective = match args.next().as_deref() {
        Some("power") => Objective::Power,
        _ => Objective::Timing,
    };

    let expr = parse_expr(&source)?;
    let mut builder = InputSpec::builder();
    for variable in expr.variables() {
        builder = builder.var(variable, width);
    }
    let spec = builder.build()?;
    let lib = TechLibrary::lcbg10pv_like();
    let design = Synthesizer::new(&expr, &spec)
        .objective(objective)
        .technology(&lib)
        .name("custom_datapath")
        .run()?;

    eprintln!("// {}", design.report().to_string().replace('\n', "\n// "));
    println!("{}", design.to_verilog());
    Ok(())
}
