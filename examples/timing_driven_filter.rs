//! Timing-driven synthesis of the IIR filter core: compares the paper's FA_AOT against
//! the conventional operation-level flow and the word-level CSA_OPT baseline under a
//! skewed input arrival profile (the feedback taps arrive late).
//!
//! Run with `cargo run -p dpsyn-core --example timing_driven_filter`.

use dpsyn_baselines::{conventional, csa_opt, fa_aot};
use dpsyn_ir::{parse_expr, InputSpec};
use dpsyn_tech::TechLibrary;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Second-order IIR section: the feedback values y1/y2 come out of the previous
    // cycle's adder and therefore arrive later than the feed-forward taps.
    let expr = parse_expr("b0*x + b1*x1 + b2*x2 + a1*y1 + a2*y2")?;
    let spec = InputSpec::builder()
        .var("x", 8)
        .var("x1", 8)
        .var("x2", 8)
        .var_with_arrival("y1", 8, 1.2)
        .var_with_arrival("y2", 8, 0.8)
        .var("b0", 5)
        .var("b1", 5)
        .var("b2", 5)
        .var("a1", 5)
        .var("a2", 5)
        .build()?;
    let lib = TechLibrary::lcbg10pv_like();
    let width = 16;

    let ours = fa_aot(&expr, &spec, width, &lib)?;
    let word_level = csa_opt(&expr, &spec, width, &lib)?;
    let reference = conventional(&expr, &spec, width, &lib)?;

    println!("IIR filter core, 16-bit output, feedback taps arriving late");
    println!("{:<14} {:>10} {:>12}", "flow", "delay (ns)", "area (units)");
    for flow in [&reference, &word_level, &ours] {
        println!("{:<14} {:>10.3} {:>12.0}", flow.flow, flow.delay, flow.area);
    }
    println!(
        "FA_AOT improves delay by {:.1}% over the conventional flow and {:.1}% over CSA_OPT",
        100.0 * ours.delay_improvement_over(&reference),
        100.0 * ours.delay_improvement_over(&word_level),
    );
    Ok(())
}
