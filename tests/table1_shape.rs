//! Shape check for Table 1: FA_AOT is never slower than the conventional flow or
//! CSA_OPT, and the average improvements are substantial (the paper reports 37.8 % and
//! 23.5 %; the absolute numbers depend on the library, the ordering must not).

use dpsyn_bench::{format_table1, table1};
use dpsyn_tech::TechLibrary;

#[test]
fn fa_aot_wins_on_every_design_and_by_a_wide_margin_on_average() {
    let lib = TechLibrary::lcbg10pv_like();
    // The polynomial designs plus the two medium-sized filter cores keep the test fast;
    // the full ten-design table is produced by `cargo run -p dpsyn-bench --bin table1`.
    let designs = vec![
        dpsyn_designs::x_squared(),
        dpsyn_designs::x_cubed(),
        dpsyn_designs::x2_x_y(),
        dpsyn_designs::binomial_square(),
        dpsyn_designs::mixed_poly(),
        dpsyn_designs::iir(),
        dpsyn_designs::serial_adapter(),
    ];
    let rows = table1(&designs, &lib);
    assert_eq!(rows.len(), designs.len());
    let mut conventional_improvement = 0.0;
    let mut csa_improvement = 0.0;
    for row in &rows {
        assert!(
            row.fa_aot.delay <= row.conventional.delay + 1e-9,
            "{}: FA_AOT {} vs conventional {}",
            row.design,
            row.fa_aot.delay,
            row.conventional.delay
        );
        assert!(
            row.fa_aot.delay <= row.csa_opt.delay + 1e-9,
            "{}: FA_AOT {} vs CSA_OPT {}",
            row.design,
            row.fa_aot.delay,
            row.csa_opt.delay
        );
        // Area: the fine-grained tree never needs more cells than the word-level rows.
        assert!(
            row.fa_aot.area <= row.csa_opt.area + 1e-9,
            "{}: FA_AOT area {} vs CSA_OPT area {}",
            row.design,
            row.fa_aot.area,
            row.csa_opt.area
        );
        conventional_improvement += row.delay_improvement_vs_conventional();
        csa_improvement += row.delay_improvement_vs_csa_opt();
    }
    let conventional_improvement = conventional_improvement / rows.len() as f64;
    let csa_improvement = csa_improvement / rows.len() as f64;
    // The paper reports 37.8 % / 23.5 %. Our substrate is not Design Compiler, so only
    // require that the improvements are clearly positive and ordered the same way.
    assert!(
        conventional_improvement > 0.10,
        "average improvement vs conventional is only {conventional_improvement}"
    );
    assert!(
        csa_improvement > 0.0,
        "average improvement vs CSA_OPT is only {csa_improvement}"
    );
    assert!(
        conventional_improvement > csa_improvement,
        "the gap to the conventional flow should exceed the gap to CSA_OPT"
    );
    // The formatted table mentions every design.
    let text = format_table1(&rows);
    for row in &rows {
        assert!(text.contains(&row.design));
    }
}
