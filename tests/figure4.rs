//! Figure 4 of the paper: the effect of FA input selection on switching energy for four
//! single-bit addends with p = 0.1, 0.2, 0.3, 0.4 and Ws = Wc = 1.

use dpsyn_bench::figure4;
use dpsyn_core::{allocate_fa_tree, LeafAddend, SelectionStrategy};
use dpsyn_netlist::Netlist;
use dpsyn_tech::TechLibrary;

#[test]
fn sc_lp_keeps_the_most_skewed_addends() {
    let result = figure4();
    // SC_LP leaves out the addend closest to p = 0.5 (index 3, p = 0.4).
    assert_eq!(result.sc_lp_leaves_out, 3);
    // Energies are monotone: the more skew kept inside the FA, the lower the energy.
    for window in result.energy_leaving_out.windows(2) {
        assert!(window[0] >= window[1] - 1e-12);
    }
    // The spread between the best and the worst selection is meaningful (the paper's
    // rounded numbers are 0.411 vs 0.400; the exact closed forms give a wider gap).
    assert!(result.energy_leaving_out[0] - result.energy_leaving_out[3] > 0.05);
}

#[test]
fn engine_selection_matches_the_figure() {
    // Build the same four single-bit addends and let the allocation engine pick: the
    // power-driven strategy must realise the minimum-energy tree among all strategies.
    let probabilities = [0.1, 0.2, 0.3, 0.4];
    let lib = TechLibrary::unit();
    let energy_of = |strategy: SelectionStrategy| {
        let mut netlist = Netlist::new("figure4");
        let leaves: Vec<LeafAddend> = probabilities
            .iter()
            .enumerate()
            .map(|(index, p)| LeafAddend::new(netlist.add_input(format!("x{index}")), 0.0, *p))
            .collect();
        allocate_fa_tree(&mut netlist, vec![leaves], strategy, &lib)
            .expect("allocation")
            .tree_switching_energy
    };
    let alp = energy_of(SelectionStrategy::LargestDeviation);
    let row = energy_of(SelectionStrategy::RowOrder);
    let best = figure4()
        .energy_leaving_out
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!((alp - best).abs() < 1e-9);
    assert!(alp <= row + 1e-9);
}
