//! Property suite for the incremental (delta) re-analysis layer.
//!
//! The contract under test: for any sequence of input-profile perturbations and
//! small local rewires applied to a design, every `rerun_delta` report of
//! `IncrementalTiming` / `IncrementalPower` is **bit-identical** to a fresh
//! `run_compiled` of the cumulative configuration — including along branches the
//! dirty-cone worklist terminated early (values recomputed to identical bits) and
//! after `DeltaState::rebind` migrated the state across a recompile.
//!
//! The oracle is deliberately dumb: cumulative `BTreeMap` profiles re-run through
//! the full single-pass analyses on every step.

use dpsyn_netlist::{CellId, CellKind, CompiledNetlist, DeltaState, InputDelta, NetId, Netlist};
use dpsyn_power::{IncrementalPower, PowerReport, ProbabilityAnalysis};
use dpsyn_tech::TechLibrary;
use dpsyn_timing::{IncrementalTiming, TimingAnalysis, TimingReport};
use std::collections::BTreeMap;

/// A tiny deterministic PRNG (splitmix64) so the suite needs no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds a seeded random DAG over every cell kind, with a few marked outputs.
fn random_dag(seed: u64) -> Netlist {
    let mut rng = Rng(seed);
    let mut netlist = Netlist::new(format!("dag_{seed}"));
    let input_count = 2 + rng.below(5);
    let mut nets: Vec<NetId> = (0..input_count)
        .map(|index| netlist.add_input(format!("i{index}")))
        .collect();
    let kinds = CellKind::all();
    let cell_count = 5 + rng.below(40);
    for _ in 0..cell_count {
        let kind = kinds[rng.below(kinds.len())];
        let inputs: Vec<NetId> = (0..kind.input_count())
            .map(|_| nets[rng.below(nets.len())])
            .collect();
        let outputs = netlist.add_gate(kind, &inputs).expect("valid arity");
        nets.extend(outputs);
    }
    for _ in 0..(1 + rng.below(4)) {
        let candidate = nets[rng.below(nets.len())];
        netlist.mark_output(candidate);
    }
    netlist
}

fn assert_bits_eq(label: &str, left: &[f64], right: &[f64]) {
    assert_eq!(left.len(), right.len(), "{label}: length mismatch");
    for (index, (a, b)) in left.iter().zip(right.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}[{index}]: {a} vs {b} differ in bits"
        );
    }
}

/// Full bit-level comparison of a delta timing report against the fresh oracle.
fn assert_timing_identical(label: &str, incremental: &TimingReport, fresh: &TimingReport) {
    assert_eq!(incremental, fresh, "{label}: timing report diverged");
    assert_bits_eq(label, incremental.arrivals(), fresh.arrivals());
    assert_eq!(incremental.critical_output(), fresh.critical_output());
    assert_eq!(incremental.critical_path(), fresh.critical_path());
}

/// Full bit-level comparison of a delta power report against the fresh oracle.
fn assert_power_identical(label: &str, incremental: &PowerReport, fresh: &PowerReport) {
    assert_eq!(incremental, fresh, "{label}: power report diverged");
    assert_bits_eq(label, incremental.probabilities(), fresh.probabilities());
    assert_eq!(
        incremental.total_energy().to_bits(),
        fresh.total_energy().to_bits(),
        "{label}: total energy bits"
    );
    assert_eq!(
        incremental.total_activity().to_bits(),
        fresh.total_activity().to_bits(),
        "{label}: total activity bits"
    );
}

/// One perturbation step: picks a random subset of inputs and redraws their arrival
/// and/or probability, deliberately mixing in *no-op* assignments (values equal to
/// the current ones) so the worklist's seed-side early termination is exercised, and
/// coarse value grids so downstream cones frequently recompute to unchanged values
/// (the drain-side early termination).
fn perturb(
    rng: &mut Rng,
    inputs: &[NetId],
    arrivals: &mut BTreeMap<NetId, f64>,
    probabilities: &mut BTreeMap<NetId, f64>,
) -> InputDelta {
    let mut delta = InputDelta::new();
    for &net in inputs {
        match rng.below(4) {
            0 => {
                // Coarse grid: collisions with the current value are common.
                let arrival = rng.below(4) as f64 * 1.25;
                arrivals.insert(net, arrival);
                delta.set_arrival(net, arrival);
            }
            1 => {
                let probability = [0.0, 0.25, 0.5, 0.9][rng.below(4)];
                probabilities.insert(net, probability);
                delta.set_probability(net, probability);
            }
            2 => {
                // Explicit no-op: re-assert the current values of both channels.
                delta.set_arrival(net, arrivals.get(&net).copied().unwrap_or(0.0));
                delta.set_probability(net, probabilities.get(&net).copied().unwrap_or(0.5));
            }
            _ => {} // untouched
        }
    }
    delta
}

/// The fresh-run oracles for the cumulative profile.
fn fresh_reports(
    lib: &TechLibrary,
    compiled: &CompiledNetlist,
    arrivals: &BTreeMap<NetId, f64>,
    probabilities: &BTreeMap<NetId, f64>,
) -> (TimingReport, PowerReport) {
    let timing = TimingAnalysis::new(lib)
        .with_input_arrivals(arrivals.clone())
        .run_compiled(compiled)
        .expect("fresh timing");
    let power = ProbabilityAnalysis::new(lib)
        .with_input_probabilities(probabilities.clone())
        .run_compiled(compiled)
        .expect("fresh power");
    (timing, power)
}

#[test]
fn random_profile_perturbation_sequences_are_bit_identical() {
    for seed in 0..48u64 {
        let netlist = random_dag(seed);
        let compiled = netlist.compile().expect("acyclic");
        let lib = if seed % 2 == 0 {
            TechLibrary::lcbg10pv_like()
        } else {
            TechLibrary::unit()
        };
        let timing_engine = IncrementalTiming::new(&lib, &compiled).expect("resolve");
        let power_engine = IncrementalPower::new(&lib, &compiled).expect("resolve");
        let mut state = DeltaState::new(&compiled);
        let mut rng = Rng(seed ^ 0x5eed);
        let mut arrivals: BTreeMap<NetId, f64> = BTreeMap::new();
        let mut probabilities: BTreeMap<NetId, f64> = BTreeMap::new();
        // Prime with a non-trivial profile and check the prime itself.
        for &net in netlist.inputs() {
            if rng.below(2) == 0 {
                arrivals.insert(net, rng.unit() * 7.5);
            }
            if rng.below(2) == 0 {
                probabilities.insert(net, rng.unit());
            }
        }
        let primed_timing = timing_engine
            .run_full(&compiled, &arrivals, &mut state)
            .expect("prime timing");
        let primed_power = power_engine
            .run_full(&compiled, &probabilities, &mut state)
            .expect("prime power");
        let (fresh_timing, fresh_power) = fresh_reports(&lib, &compiled, &arrivals, &probabilities);
        assert_timing_identical(&format!("seed {seed} prime"), &primed_timing, &fresh_timing);
        assert_power_identical(&format!("seed {seed} prime"), &primed_power, &fresh_power);

        for round in 0..10 {
            let delta = perturb(
                &mut rng,
                netlist.inputs(),
                &mut arrivals,
                &mut probabilities,
            );
            let label = format!("seed {seed} round {round}");
            let incremental_timing = timing_engine
                .rerun_delta(&compiled, &mut state, &delta)
                .expect("delta timing");
            let incremental_power = power_engine
                .rerun_delta(&compiled, &mut state, &delta)
                .expect("delta power");
            let (fresh_timing, fresh_power) =
                fresh_reports(&lib, &compiled, &arrivals, &probabilities);
            assert_timing_identical(&label, &incremental_timing, &fresh_timing);
            assert_power_identical(&label, &incremental_power, &fresh_power);
        }
    }
}

/// Position of every cell in the compiled (topological) op order.
fn op_positions(compiled: &CompiledNetlist) -> Vec<usize> {
    let mut position = vec![0usize; compiled.cell_count()];
    for (index, op) in compiled.ops().iter().enumerate() {
        position[op.cell.index()] = index;
    }
    position
}

/// Applies one random local rewire to `netlist`, keeping it acyclic and its net/cell
/// universe intact: either a same-arity kind flip or an input-pin reconnection to a
/// net whose driver precedes the cell in the current topological order.
fn random_rewire(rng: &mut Rng, netlist: &mut Netlist, compiled: &CompiledNetlist) {
    let cell_count = netlist.cell_count();
    let cell: CellId = netlist
        .cells()
        .nth(rng.below(cell_count))
        .expect("cell index in range")
        .0;
    let kind = netlist.cell(cell).kind();
    if rng.below(2) == 0 {
        // Same-arity kind flip.
        let flip = match kind {
            CellKind::And2 => Some(CellKind::Or2),
            CellKind::Or2 => Some(CellKind::Xor2),
            CellKind::Xor2 => Some(CellKind::And2),
            CellKind::Not => Some(CellKind::Buf),
            CellKind::Buf => Some(CellKind::Not),
            CellKind::And3 => Some(CellKind::Xor3),
            CellKind::Xor3 => Some(CellKind::Mux2),
            CellKind::Mux2 => Some(CellKind::And3),
            _ => None, // Fa/Ha/constants have no same-arity sibling
        };
        if let Some(flip) = flip {
            netlist.replace_cell_kind(cell, flip).expect("same arity");
            return;
        }
    }
    // Input-pin rewire. Eligible sources: primary inputs, undriven nets, or outputs
    // of cells strictly earlier in the current topological order (never a cycle).
    if kind.input_count() == 0 {
        return; // constants have no input pins to rewire
    }
    let positions = op_positions(compiled);
    let reader_position = positions[cell.index()];
    let eligible: Vec<NetId> = netlist
        .nets()
        .filter(|(_, net)| match net.driver() {
            None => true,
            Some((driver, _)) => positions[driver.index()] < reader_position,
        })
        .map(|(id, _)| id)
        .collect();
    if eligible.is_empty() {
        return;
    }
    let source = eligible[rng.below(eligible.len())];
    let pin = rng.below(kind.input_count());
    netlist.rewire_input(cell, pin, source).expect("known net");
}

#[test]
fn random_local_rewires_rebind_and_stay_bit_identical() {
    for seed in 0..32u64 {
        let mut netlist = random_dag(seed.wrapping_mul(131) ^ 7);
        let mut compiled = netlist.compile().expect("acyclic");
        let lib = TechLibrary::lcbg10pv_like();
        let mut rng = Rng(seed ^ 0xabcd);
        let mut arrivals: BTreeMap<NetId, f64> = BTreeMap::new();
        let mut probabilities: BTreeMap<NetId, f64> = BTreeMap::new();
        for &net in netlist.inputs() {
            arrivals.insert(net, rng.unit() * 3.0);
            probabilities.insert(net, rng.unit());
        }
        let mut state = DeltaState::new(&compiled);
        IncrementalTiming::new(&lib, &compiled)
            .expect("resolve")
            .run_full(&compiled, &arrivals, &mut state)
            .expect("prime timing");
        IncrementalPower::new(&lib, &compiled)
            .expect("resolve")
            .run_full(&compiled, &probabilities, &mut state)
            .expect("prime power");

        for round in 0..8 {
            random_rewire(&mut rng, &mut netlist, &compiled);
            let recompiled = netlist.compile().expect("rewires preserve acyclicity");
            state.rebind(&compiled, &recompiled);
            compiled = recompiled;
            // The engines are rebuilt per program: resolution is once-per-program.
            let timing_engine = IncrementalTiming::new(&lib, &compiled).expect("resolve");
            let power_engine = IncrementalPower::new(&lib, &compiled).expect("resolve");
            // Half the rounds also carry a profile delta on top of the rewire.
            let delta = if rng.below(2) == 0 {
                perturb(
                    &mut rng,
                    netlist.inputs(),
                    &mut arrivals,
                    &mut probabilities,
                )
            } else {
                InputDelta::new()
            };
            let label = format!("seed {seed} rewire round {round}");
            let incremental_timing = timing_engine
                .rerun_delta(&compiled, &mut state, &delta)
                .expect("delta timing");
            let incremental_power = power_engine
                .rerun_delta(&compiled, &mut state, &delta)
                .expect("delta power");
            let (fresh_timing, fresh_power) =
                fresh_reports(&lib, &compiled, &arrivals, &probabilities);
            assert_timing_identical(&label, &incremental_timing, &fresh_timing);
            assert_power_identical(&label, &incremental_power, &fresh_power);
        }
    }
}

#[test]
fn early_termination_keeps_untouched_cones_bit_identical() {
    // a AND b feeds a long buffer chain; c XOR d feeds another. Perturbing only
    // (a, b) must leave the (c, d) cone's values untouched *and* still produce
    // fully identical reports — the early-termination path in its purest form.
    let mut netlist = Netlist::new("cones");
    let a = netlist.add_input("a");
    let b = netlist.add_input("b");
    let c = netlist.add_input("c");
    let d = netlist.add_input("d");
    let mut left = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
    let mut right = netlist.add_gate(CellKind::Xor2, &[c, d]).unwrap()[0];
    for _ in 0..16 {
        left = netlist.add_gate(CellKind::Buf, &[left]).unwrap()[0];
        right = netlist.add_gate(CellKind::Buf, &[right]).unwrap()[0];
    }
    netlist.mark_output(left);
    netlist.mark_output(right);
    let compiled = netlist.compile().unwrap();
    let lib = TechLibrary::lcbg10pv_like();
    let timing_engine = IncrementalTiming::new(&lib, &compiled).unwrap();
    let power_engine = IncrementalPower::new(&lib, &compiled).unwrap();
    let mut state = DeltaState::new(&compiled);
    let mut arrivals = BTreeMap::new();
    let mut probabilities = BTreeMap::new();
    timing_engine
        .run_full(&compiled, &arrivals, &mut state)
        .unwrap();
    power_engine
        .run_full(&compiled, &probabilities, &mut state)
        .unwrap();
    // Zero-probability AND input: changing the other input never changes the AND's
    // output probability, so the whole left power cone terminates at level 0.
    let mut delta = InputDelta::new();
    delta.set_probability(a, 0.0);
    probabilities.insert(a, 0.0);
    power_engine
        .rerun_delta(&compiled, &mut state, &delta)
        .unwrap();
    for (value, map_value) in [(0.35, 0.35), (0.8, 0.8)] {
        let mut delta = InputDelta::new();
        delta.set_probability(b, value);
        probabilities.insert(b, map_value);
        // Arrival bump on `a` that stays below `b`'s: the AND's arrival (driven by
        // the max) is recomputed to an unchanged value, so the buffer chain is
        // never revisited by the timing worklist either.
        delta.set_arrival(b, 5.0);
        arrivals.insert(b, 5.0);
        delta.set_arrival(a, 1.0);
        arrivals.insert(a, 1.0);
        let incremental_timing = timing_engine
            .rerun_delta(&compiled, &mut state, &delta)
            .unwrap();
        let incremental_power = power_engine
            .rerun_delta(&compiled, &mut state, &delta)
            .unwrap();
        let (fresh_timing, fresh_power) = fresh_reports(&lib, &compiled, &arrivals, &probabilities);
        assert_timing_identical("cones", &incremental_timing, &fresh_timing);
        assert_power_identical("cones", &incremental_power, &fresh_power);
    }
}
