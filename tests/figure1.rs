//! Figure 1 of the paper: the addend matrix and FA allocation for F = X + Y + Z + W
//! with X, Y, W two bits wide and Z one bit wide.

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_ir::{parse_expr, InputSpec, LoweringOptions};
use dpsyn_sim::check_equivalence;
use dpsyn_tech::TechLibrary;

fn figure1_inputs() -> (dpsyn_ir::Expr, InputSpec) {
    let expr = parse_expr("x + y + z + w").expect("figure 1 expression");
    let spec = InputSpec::builder()
        .var("x", 2)
        .var("y", 2)
        .var("z", 1)
        .var("w", 2)
        .build()
        .expect("figure 1 spec");
    (expr, spec)
}

#[test]
fn addend_matrix_matches_figure_1a() {
    let (expr, spec) = figure1_inputs();
    let matrix = expr
        .lower(&spec, &LoweringOptions::with_width(4))
        .expect("lowering");
    // Column 0 holds x0, y0, z0, w0; column 1 holds x1, y1, w1.
    assert_eq!(matrix.column(0).len(), 4);
    assert_eq!(matrix.column(1).len(), 3);
    assert_eq!(matrix.column(2).len(), 0);
    assert_eq!(matrix.total_addends(), 7);
}

#[test]
fn fa_allocation_matches_figure_1c() {
    let (expr, spec) = figure1_inputs();
    let lib = TechLibrary::unit();
    let design = Synthesizer::new(&expr, &spec)
        .objective(Objective::Timing)
        .technology(&lib)
        .output_width(4)
        .run()
        .expect("synthesis");
    // Figure 1(c): two FAs in the compression tree (one per column), then the final
    // adder. Column 1 receives the carry of column 0, giving it four addends, so the
    // tree needs exactly two FAs and no HA.
    assert_eq!(design.report().tree_fa_count, 2);
    assert_eq!(design.report().tree_ha_count, 0);
    // The netlist computes X + Y + Z + W for every input combination.
    check_equivalence(design.netlist(), design.word_map(), &expr, &spec, 4, 200, 1)
        .expect("figure 1 design is functionally correct");
}
