//! Golden equivalence suite for the compiled-analysis layer.
//!
//! The timing and power analyses were rewritten as single-pass evaluators over the
//! shared `CompiledNetlist` program. This suite pins the refactored reports
//! **bit-identical** to the pre-refactor implementations, which are reproduced here
//! verbatim as reference oracles (topological-order walk, per-cell technology map
//! lookups, allocating fanout map), across:
//!
//! * seeded random DAGs mixing every cell kind, with skewed arrival / probability
//!   profiles, and
//! * all ten benchmark designs of the paper's Table 1, synthesized end to end.
//!
//! It also pins the deduplicated graph traversals (`levelize`,
//! `topological_order`, the fanout CSR, `logic_depth`) to the legacy Kahn
//! traversal, including the cycle-culprit error.

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_netlist::{CellId, CellKind, NetId, Netlist};
use dpsyn_power::{propagate_cell, ProbabilityAnalysis};
use dpsyn_tech::TechLibrary;
use dpsyn_timing::TimingAnalysis;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Legacy reference implementations (the pre-refactor algorithms, verbatim).
// ---------------------------------------------------------------------------

/// The pre-refactor `Netlist::fanout_map`: one freshly allocated `Vec` per net.
fn legacy_fanout_map(netlist: &Netlist) -> Vec<Vec<(CellId, usize)>> {
    let mut map = vec![Vec::new(); netlist.net_count()];
    for (id, cell) in netlist.cells() {
        for (pin, net) in cell.inputs().iter().enumerate() {
            map[net.index()].push((id, pin));
        }
    }
    map
}

/// The pre-refactor `Netlist::levelize`: an independent Kahn traversal over the
/// allocating fanout map. Returns the levels or the first stuck cell on a cycle.
fn legacy_levelize(netlist: &Netlist) -> Result<Vec<Vec<CellId>>, CellId> {
    let mut pending: Vec<usize> = netlist
        .cells()
        .map(|(_, cell)| {
            cell.inputs()
                .iter()
                .filter(|net| netlist.net(**net).driver().is_some())
                .count()
        })
        .collect();
    let fanout = legacy_fanout_map(netlist);
    let mut current: Vec<CellId> = netlist
        .cells()
        .filter(|(id, _)| pending[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut levels = Vec::new();
    let mut placed = 0;
    while !current.is_empty() {
        placed += current.len();
        let mut next = Vec::new();
        for cell in &current {
            for net in netlist.cell(*cell).outputs() {
                for (reader, _) in &fanout[net.index()] {
                    pending[reader.index()] -= 1;
                    if pending[reader.index()] == 0 {
                        next.push(*reader);
                    }
                }
            }
        }
        levels.push(current);
        current = next;
    }
    if placed != netlist.cell_count() {
        let culprit = netlist
            .cells()
            .map(|(id, _)| id)
            .find(|id| pending[id.index()] > 0)
            .unwrap();
        return Err(culprit);
    }
    Ok(levels)
}

/// The pre-refactor `Netlist::logic_depth`: a per-net depth walk in topological order.
fn legacy_logic_depth(netlist: &Netlist) -> usize {
    let order = match legacy_levelize(netlist) {
        Ok(levels) => levels.concat(),
        Err(_) => return 0,
    };
    let mut depth = vec![0usize; netlist.net_count()];
    let mut max_depth = 0;
    for cell in order {
        let cell = netlist.cell(cell);
        let input_depth = cell
            .inputs()
            .iter()
            .map(|net| depth[net.index()])
            .max()
            .unwrap_or(0);
        for net in cell.outputs() {
            depth[net.index()] = input_depth + 1;
            max_depth = max_depth.max(input_depth + 1);
        }
    }
    max_depth
}

/// The pre-refactor STA loop: topological walk with a `tech.output_delay` map lookup
/// per cell. Returns (arrivals, critical output, critical path).
fn legacy_timing(
    netlist: &Netlist,
    tech: &TechLibrary,
    input_arrivals: &BTreeMap<NetId, f64>,
) -> (Vec<f64>, Option<NetId>, Vec<NetId>) {
    let order = legacy_levelize(netlist).expect("acyclic").concat();
    let mut arrival = vec![0.0f64; netlist.net_count()];
    let mut worst_predecessor: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for net in netlist.inputs() {
        arrival[net.index()] = input_arrivals.get(net).copied().unwrap_or(0.0);
    }
    for cell_id in order {
        let cell = netlist.cell(cell_id);
        let (worst_input, input_arrival) = cell
            .inputs()
            .iter()
            .map(|net| (Some(*net), arrival[net.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((None, 0.0));
        for (pin, net) in cell.outputs().iter().enumerate() {
            arrival[net.index()] = input_arrival + tech.output_delay(cell.kind(), pin);
            worst_predecessor[net.index()] = worst_input;
        }
    }
    let critical_output = netlist
        .outputs()
        .iter()
        .copied()
        .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
    let critical_path = critical_output
        .map(|output| {
            let mut path = vec![output];
            let mut current = output;
            while let Some(previous) = worst_predecessor[current.index()] {
                path.push(previous);
                current = previous;
            }
            path.reverse();
            path
        })
        .unwrap_or_default();
    (arrival, critical_output, critical_path)
}

/// The pre-refactor probability/power loop: topological walk, per-cell `Vec`
/// staging through `propagate_cell` and a `tech.switch_energy` map lookup per pin.
/// Returns (probabilities, per-cell energies, total energy, total activity).
fn legacy_power(
    netlist: &Netlist,
    tech: &TechLibrary,
    input_probabilities: &BTreeMap<NetId, f64>,
    default_probability: f64,
) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let order = legacy_levelize(netlist).expect("acyclic").concat();
    let mut probability = vec![default_probability; netlist.net_count()];
    for net in netlist.inputs() {
        probability[net.index()] = input_probabilities
            .get(net)
            .copied()
            .unwrap_or(default_probability);
    }
    let mut cell_energy = vec![0.0f64; netlist.cell_count()];
    let mut total_energy = 0.0f64;
    let mut total_activity = 0.0f64;
    for cell_id in order {
        let cell = netlist.cell(cell_id);
        let inputs: Vec<f64> = cell
            .inputs()
            .iter()
            .map(|net| probability[net.index()])
            .collect();
        let outputs = propagate_cell(cell.kind(), &inputs);
        let mut energy = 0.0;
        for (pin, (net, p)) in cell.outputs().iter().zip(outputs.iter()).enumerate() {
            probability[net.index()] = *p;
            let activity = p * (1.0 - p);
            total_activity += activity;
            energy += tech.switch_energy(cell.kind(), pin) * activity;
        }
        cell_energy[cell_id.index()] = energy;
        total_energy += energy;
    }
    (probability, cell_energy, total_energy, total_activity)
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

/// A tiny deterministic PRNG (splitmix64) so the suite needs no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds a seeded random DAG over every cell kind, with a few marked outputs.
fn random_dag(seed: u64) -> Netlist {
    let mut rng = Rng(seed);
    let mut netlist = Netlist::new(format!("dag_{seed}"));
    let input_count = 2 + rng.below(5);
    let mut nets: Vec<NetId> = (0..input_count)
        .map(|index| netlist.add_input(format!("i{index}")))
        .collect();
    let kinds = CellKind::all();
    let cell_count = 5 + rng.below(40);
    for _ in 0..cell_count {
        let kind = kinds[rng.below(kinds.len())];
        let inputs: Vec<NetId> = (0..kind.input_count())
            .map(|_| nets[rng.below(nets.len())])
            .collect();
        let outputs = netlist.add_gate(kind, &inputs).expect("valid arity");
        nets.extend(outputs);
    }
    for _ in 0..(1 + rng.below(4)) {
        let candidate = nets[rng.below(nets.len())];
        netlist.mark_output(candidate);
    }
    netlist
}

/// Skewed input profiles for a netlist, drawn deterministically from `seed`.
fn random_profiles(netlist: &Netlist, seed: u64) -> (BTreeMap<NetId, f64>, BTreeMap<NetId, f64>) {
    let mut rng = Rng(seed ^ 0xdead_beef);
    let mut arrivals = BTreeMap::new();
    let mut probabilities = BTreeMap::new();
    for net in netlist.inputs() {
        if rng.below(4) != 0 {
            arrivals.insert(*net, rng.unit() * 7.5);
        }
        if rng.below(4) != 0 {
            probabilities.insert(*net, rng.unit());
        }
    }
    (arrivals, probabilities)
}

fn assert_bits_eq(label: &str, left: &[f64], right: &[f64]) {
    assert_eq!(left.len(), right.len(), "{label}: length mismatch");
    for (index, (a, b)) in left.iter().zip(right.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}[{index}]: {a} vs {b} differ in bits"
        );
    }
}

// ---------------------------------------------------------------------------
// The suite.
// ---------------------------------------------------------------------------

#[test]
fn traversals_match_legacy_on_random_dags() {
    for seed in 0..64 {
        let netlist = random_dag(seed);
        let levels = legacy_levelize(&netlist).expect("acyclic by construction");
        assert_eq!(netlist.levelize().unwrap(), levels, "seed {seed}");
        assert_eq!(
            netlist.topological_order().unwrap(),
            levels.concat(),
            "seed {seed}"
        );
        assert_eq!(
            netlist.logic_depth(),
            legacy_logic_depth(&netlist),
            "seed {seed}"
        );
        let compiled = netlist.compile().unwrap();
        assert_eq!(compiled.level_count(), levels.len(), "seed {seed}");
        // Fanout CSR vs the allocating map, entry for entry.
        let legacy = legacy_fanout_map(&netlist);
        for (net, _) in netlist.nets() {
            let csr: Vec<(CellId, usize)> = compiled
                .fanout(net)
                .iter()
                .map(|(cell, pin)| (*cell, *pin as usize))
                .collect();
            assert_eq!(csr, legacy[net.index()], "seed {seed}, net {net}");
        }
    }
}

#[test]
fn cycle_culprits_match_legacy() {
    // A 2-cell loop hanging off a legal prefix: both traversals must converge on the
    // same (lowest-indexed) stuck cell.
    let mut netlist = Netlist::new("cyclic");
    let a = netlist.add_input("a");
    let head = netlist.add_gate(CellKind::Not, &[a]).unwrap()[0];
    let loop_net = netlist.add_net("loop");
    let mid = netlist.add_net("mid");
    netlist
        .add_cell(CellKind::And2, "g1", vec![head, loop_net], vec![mid])
        .unwrap();
    netlist
        .add_cell(CellKind::Buf, "g2", vec![mid], vec![loop_net])
        .unwrap();
    let legacy = legacy_levelize(&netlist).unwrap_err();
    let refactored = netlist.levelize().unwrap_err();
    match refactored {
        dpsyn_netlist::NetlistError::CombinationalCycle { cell } => {
            assert_eq!(cell, legacy)
        }
        other => panic!("expected a cycle error, got {other}"),
    }
}

#[test]
fn timing_reports_match_legacy_on_random_dags() {
    let lib = TechLibrary::lcbg10pv_like();
    let unit = TechLibrary::unit();
    for seed in 0..64 {
        let netlist = random_dag(seed);
        let (arrivals, _) = random_profiles(&netlist, seed);
        let compiled = netlist.compile().unwrap();
        for tech in [&lib, &unit] {
            let (legacy_arrival, legacy_output, legacy_path) =
                legacy_timing(&netlist, tech, &arrivals);
            let analysis = TimingAnalysis::new(tech).with_input_arrivals(arrivals.clone());
            for report in [
                analysis.run(&netlist).unwrap(),
                analysis.run_compiled(&compiled).unwrap(),
            ] {
                assert_bits_eq("arrival", report.arrivals(), &legacy_arrival);
                assert_eq!(report.critical_output(), legacy_output, "seed {seed}");
                assert_eq!(report.critical_path(), legacy_path, "seed {seed}");
            }
        }
    }
}

#[test]
fn power_reports_match_legacy_on_random_dags() {
    let lib = TechLibrary::lcbg10pv_like();
    let unit = TechLibrary::unit();
    for seed in 0..64 {
        let netlist = random_dag(seed);
        let (_, probabilities) = random_profiles(&netlist, seed);
        let default_probability = Rng(seed).unit();
        let compiled = netlist.compile().unwrap();
        for tech in [&lib, &unit] {
            let (legacy_p, legacy_cell_energy, legacy_total, legacy_activity) =
                legacy_power(&netlist, tech, &probabilities, default_probability);
            let analysis = ProbabilityAnalysis::new(tech)
                .with_input_probabilities(probabilities.clone())
                .default_probability(default_probability);
            for report in [
                analysis.run(&netlist).unwrap(),
                analysis.run_compiled(&compiled).unwrap(),
            ] {
                assert_bits_eq("probability", report.probabilities(), &legacy_p);
                let cell_energy: Vec<f64> = netlist
                    .cells()
                    .map(|(id, _)| report.cell_energy(id))
                    .collect();
                assert_bits_eq("cell_energy", &cell_energy, &legacy_cell_energy);
                assert_eq!(report.total_energy().to_bits(), legacy_total.to_bits());
                assert_eq!(report.total_activity().to_bits(), legacy_activity.to_bits());
            }
        }
    }
}

#[test]
fn synthesized_benchmark_reports_match_legacy() {
    // All ten Table-1 designs, synthesized end to end under both objectives the
    // tables use; the report figures must equal a from-scratch legacy re-analysis of
    // the emitted netlist bit for bit.
    let lib = TechLibrary::lcbg10pv_like();
    for design in dpsyn_designs::table1_designs() {
        for objective in [Objective::Timing, Objective::Power] {
            let synthesized = Synthesizer::new(design.expr(), design.spec())
                .objective(objective)
                .technology(&lib)
                .output_width(design.output_width())
                .name(design.name())
                .run()
                .expect("benchmark synthesis succeeds");
            let netlist = synthesized.netlist();
            // Reconstruct the spec-driven profiles exactly as the synthesizer does.
            let mut arrivals = BTreeMap::new();
            let mut probabilities = BTreeMap::new();
            for word in synthesized.word_map().inputs() {
                for (bit, net) in word.bits().iter().enumerate() {
                    if let Some(profile) = design.spec().bit_profile(word.name(), bit as u32) {
                        arrivals.insert(*net, profile.arrival);
                        probabilities.insert(*net, profile.probability);
                    }
                }
            }
            let (legacy_arrival, legacy_output, _) = legacy_timing(netlist, &lib, &arrivals);
            let (_, _, legacy_energy, _) = legacy_power(netlist, &lib, &probabilities, 0.5);
            let report = synthesized.report();
            let legacy_delay = legacy_output
                .map(|net| legacy_arrival[net.index()])
                .unwrap_or(0.0);
            assert_eq!(
                report.delay.to_bits(),
                legacy_delay.to_bits(),
                "{} delay",
                design.name()
            );
            assert_eq!(
                report.switching_energy.to_bits(),
                legacy_energy.to_bits(),
                "{} energy",
                design.name()
            );
            let legacy_area = lib.netlist_area(netlist);
            assert_eq!(
                report.area.to_bits(),
                legacy_area.to_bits(),
                "{}",
                design.name()
            );
            assert_eq!(
                report.logic_depth,
                legacy_logic_depth(netlist),
                "{}",
                design.name()
            );
            assert_eq!(report.cell_count, netlist.cell_count());
            assert_eq!(report.net_count, netlist.net_count());
            // The carried compiled program is exactly the netlist's.
            assert_eq!(synthesized.compiled(), &netlist.compile().unwrap());
        }
    }
}
