//! Cross-flow functional equivalence: every synthesis flow produces a netlist that
//! computes the same value as the golden expression model on every benchmark design it
//! is exercised with here.

use dpsyn_baselines::{conventional, csa_opt, fa_alp, fa_aot, fa_random, wallace_fixed};
use dpsyn_designs::Design;
use dpsyn_sim::check_equivalence;
use dpsyn_tech::TechLibrary;

fn check_all_flows(design: &Design, vectors: usize) {
    let lib = TechLibrary::lcbg10pv_like();
    let width = design.output_width();
    let flows = [
        fa_aot(design.expr(), design.spec(), width, &lib).expect("fa_aot"),
        fa_alp(design.expr(), design.spec(), width, &lib).expect("fa_alp"),
        wallace_fixed(design.expr(), design.spec(), width, &lib).expect("wallace_fixed"),
        fa_random(design.expr(), design.spec(), width, &lib, 13).expect("fa_random"),
        csa_opt(design.expr(), design.spec(), width, &lib).expect("csa_opt"),
        conventional(design.expr(), design.spec(), width, &lib).expect("conventional"),
    ];
    for flow in &flows {
        check_equivalence(
            &flow.netlist,
            &flow.word_map,
            design.expr(),
            design.spec(),
            width,
            vectors,
            97,
        )
        .unwrap_or_else(|error| panic!("{} on {}: {error}", flow.flow, design.name()));
    }
}

#[test]
fn polynomial_designs_are_equivalent_across_flows() {
    check_all_flows(&dpsyn_designs::x_squared(), 200);
    check_all_flows(&dpsyn_designs::x_cubed(), 200);
    check_all_flows(&dpsyn_designs::mixed_poly(), 60);
}

#[test]
fn quadratic_designs_are_equivalent_across_flows() {
    check_all_flows(&dpsyn_designs::x2_x_y(), 60);
    check_all_flows(&dpsyn_designs::binomial_square(), 60);
}

#[test]
fn filter_designs_are_equivalent_across_flows() {
    check_all_flows(&dpsyn_designs::iir(), 40);
    check_all_flows(&dpsyn_designs::serial_adapter(), 40);
}

#[test]
fn wide_designs_are_equivalent_across_flows() {
    check_all_flows(&dpsyn_designs::complex_mult(), 25);
    check_all_flows(&dpsyn_designs::kalman(), 20);
}
