//! Cross-flow functional equivalence: every synthesis flow produces a netlist that
//! computes the same value as the golden expression model on every benchmark design it
//! is exercised with here.

use dpsyn_baselines::{conventional, csa_opt, fa_alp, fa_aot, fa_random, wallace_fixed};
use dpsyn_designs::Design;
use dpsyn_sim::check_equivalence;
use dpsyn_tech::TechLibrary;

fn check_all_flows(design: &Design, vectors: usize) {
    let lib = TechLibrary::lcbg10pv_like();
    let width = design.output_width();
    let flows = [
        fa_aot(design.expr(), design.spec(), width, &lib).expect("fa_aot"),
        fa_alp(design.expr(), design.spec(), width, &lib).expect("fa_alp"),
        wallace_fixed(design.expr(), design.spec(), width, &lib).expect("wallace_fixed"),
        fa_random(design.expr(), design.spec(), width, &lib, 13).expect("fa_random"),
        csa_opt(design.expr(), design.spec(), width, &lib).expect("csa_opt"),
        conventional(design.expr(), design.spec(), width, &lib).expect("conventional"),
    ];
    for flow in &flows {
        check_equivalence(
            &flow.netlist,
            &flow.word_map,
            design.expr(),
            design.spec(),
            width,
            vectors,
            97,
        )
        .unwrap_or_else(|error| panic!("{} on {}: {error}", flow.flow, design.name()));
    }
}

// Vector counts below were raised 20–50× when `check_equivalence` moved to the
// 64-lane engine (PR 2). New wall-clock at these counts: the whole four-test suite
// finishes in ~2.1 s under the tier-1 profile (`cargo test -q`, debug build) on the
// development container — synthesis of the 6 flows per design, not simulation, now
// dominates.

#[test]
fn polynomial_designs_are_equivalent_across_flows() {
    // Raised from 200/200/60 vectors (x² and x³ enumerate exhaustively anyway).
    check_all_flows(&dpsyn_designs::x_squared(), 4096);
    check_all_flows(&dpsyn_designs::x_cubed(), 4096);
    check_all_flows(&dpsyn_designs::mixed_poly(), 4096);
}

#[test]
fn quadratic_designs_are_equivalent_across_flows() {
    // Raised from 60/60; both specs enumerate exhaustively at 16 input bits, so the
    // count only governs the random fallback.
    check_all_flows(&dpsyn_designs::x2_x_y(), 4096);
    check_all_flows(&dpsyn_designs::binomial_square(), 4096);
}

#[test]
fn filter_designs_are_equivalent_across_flows() {
    // Raised from 40/40 random vectors.
    check_all_flows(&dpsyn_designs::iir(), 2048);
    check_all_flows(&dpsyn_designs::serial_adapter(), 2048);
}

#[test]
fn wide_designs_are_equivalent_across_flows() {
    // Raised from 25/20 random vectors (the kalman netlists are the largest here).
    check_all_flows(&dpsyn_designs::complex_mult(), 1024);
    check_all_flows(&dpsyn_designs::kalman(), 1024);
}
