//! Figure 2 of the paper: the effect of FA input selection on delay under an uneven
//! arrival profile (Ds = 2, Dc = 1). The paper's three allocations finish at 9, 9, 8.

use dpsyn_bench::figure2;
use dpsyn_core::{Objective, SelectionStrategy, Synthesizer};
use dpsyn_ir::{parse_expr, BitProfile, InputSpec};
use dpsyn_tech::TechLibrary;

#[test]
fn reproduction_matches_the_paper_numbers() {
    let result = figure2();
    assert_eq!(result.wallace, 9.0, "fixed Wallace selection");
    assert_eq!(result.column_isolation, 9.0, "column isolation");
    assert_eq!(
        result.column_interaction, 8.0,
        "column interaction (FA_AOT)"
    );
}

#[test]
fn column_interaction_is_never_slower_under_permuted_profiles() {
    // The specific profile of Figure 2 is one instance; FA_AOT must stay at least as
    // good as the fixed selection for every permutation of the same arrival values.
    let arrivals_col0 = [7.0, 5.0, 4.0, 2.0];
    let arrivals_col1 = [7.0, 2.0, 3.0];
    let lib = TechLibrary::unit();
    let expr = parse_expr("x + y + z + w").expect("expression");
    for rotation in 0..4 {
        let col0: Vec<f64> = (0..4).map(|i| arrivals_col0[(i + rotation) % 4]).collect();
        let col1: Vec<f64> = (0..3).map(|i| arrivals_col1[(i + rotation) % 3]).collect();
        let spec = InputSpec::builder()
            .var_with_profiles(
                "x",
                vec![BitProfile::new(col0[0], 0.5), BitProfile::new(col1[0], 0.5)],
            )
            .var_with_profiles(
                "y",
                vec![BitProfile::new(col0[1], 0.5), BitProfile::new(col1[1], 0.5)],
            )
            .var_with_profiles("z", vec![BitProfile::new(col0[2], 0.5)])
            .var_with_profiles(
                "w",
                vec![BitProfile::new(col0[3], 0.5), BitProfile::new(col1[2], 0.5)],
            )
            .build()
            .expect("spec");
        let run = |strategy: Option<SelectionStrategy>| {
            let mut synthesizer = Synthesizer::new(&expr, &spec)
                .technology(&lib)
                .objective(Objective::Timing)
                .output_width(4);
            if let Some(strategy) = strategy {
                synthesizer = synthesizer.strategy(strategy);
            }
            synthesizer
                .run()
                .expect("synthesis")
                .report()
                .final_input_arrival
        };
        let ours = run(None);
        let fixed = run(Some(SelectionStrategy::RowOrder));
        assert!(
            ours <= fixed + 1e-9,
            "rotation {rotation}: {ours} vs {fixed}"
        );
    }
}
