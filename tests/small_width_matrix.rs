//! Exhaustive small-width equivalence matrix: every `dpsyn_designs` workload
//! generator, at every operand width up to four bits, synthesized under both
//! objectives, must match the golden expression model bit-for-bit.
//!
//! At these sizes `check_equivalence` enumerates every input assignment
//! (specs stay at or below 16 total input bits), so a pass here is a proof of
//! functional correctness rather than a sampled check.

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_designs::workloads::{random_sum, random_sum_of_products, single_column, SumWorkload};
use dpsyn_designs::Design;
use dpsyn_explore::{explore, BiasProfile, ExplorationSpec, Flow, SkewProfile};
use dpsyn_sim::check_equivalence;
use dpsyn_tech::TechLibrary;

/// Synthesizes `design` under `objective` and checks it against the golden model.
fn check_design(design: &Design, objective: Objective) {
    let lib = TechLibrary::lcbg10pv_like();
    let width = design.output_width();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .objective(objective)
        .technology(&lib)
        .output_width(width)
        .name(design.name())
        .run()
        .unwrap_or_else(|error| panic!("{} under {objective:?}: {error}", design.name()));
    // At these widths every spec is ≤ 16 input bits, so the check enumerates the
    // space exhaustively and the raised random-vector count (256 → 4096, cheap on
    // the 64-lane engine) only governs the fallback for any future wider entry.
    // New wall-clock: the whole suite runs in ~1.2 s (`cargo test -q`, debug).
    check_equivalence(
        synthesized.netlist(),
        synthesized.word_map(),
        design.expr(),
        design.spec(),
        width,
        4096,
        41,
    )
    .unwrap_or_else(|error| panic!("{} under {objective:?}: {error}", design.name()));
}

fn check_both_objectives(design: &Design) {
    check_design(design, Objective::Timing);
    check_design(design, Objective::Power);
}

#[test]
fn random_sums_at_small_widths_are_equivalent() {
    for width in 1..=4u32 {
        for operands in [2usize, 3, 4] {
            let workload = SumWorkload {
                operands,
                width,
                max_arrival: 2.0,
                probability_skew: 0.4,
            };
            // Two seeds per shape so the matrix is not tied to one profile draw.
            for seed in [1u64, 9] {
                check_both_objectives(&random_sum(&workload, seed));
            }
        }
    }
}

#[test]
fn random_sums_of_products_at_small_widths_are_equivalent() {
    for width in 1..=4u32 {
        // 2 * terms * width input bits must stay enumerable: cap terms by width.
        let max_terms = match width {
            1 => 3,
            2 => 3,
            _ => 2,
        };
        for terms in 1..=max_terms {
            check_both_objectives(&random_sum_of_products(terms, width, 23));
        }
    }
}

#[test]
fn single_columns_are_equivalent() {
    let profiles: [&[f64]; 4] = [
        &[0.0, 0.0],
        &[3.0, 1.0, 2.0],
        &[7.0, 2.0, 3.0, 2.0, 0.0],
        &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 4.0],
    ];
    for arrivals in profiles {
        check_both_objectives(&single_column(arrivals));
    }
}

#[test]
fn fixed_small_designs_are_equivalent_under_both_objectives() {
    // The Table-1 designs whose specs are small enough to enumerate exhaustively.
    check_both_objectives(&dpsyn_designs::x_squared());
    check_both_objectives(&dpsyn_designs::x_cubed());
}

#[test]
fn every_explorer_driven_point_at_small_widths_is_equivalent() {
    // Explorer-driven configs: the exploration engine materializes the design of every
    // point itself (workload widths, skew and bias profiles applied), so this check
    // covers the engine's job materialization as well as every flow it dispatches.
    // All operand widths stay <= 4, so every point is checked exhaustively.
    let spec = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::x_cubed())
        .sum_workload(3)
        .sum_of_products_workload(2)
        .widths([2, 4])
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .biases([BiasProfile::Uniform(0.3)])
        .flows([
            Flow::Conventional,
            Flow::CsaOpt,
            Flow::WallaceFixed,
            Flow::FaRandom(13),
            Flow::FaAot,
            Flow::FaAlp,
            Flow::FaAnneal(13),
        ])
        .seed(29)
        .threads(4)
        .retain_artifacts(true)
        .build()
        .expect("explorer spec is well-formed");
    let results = explore(&spec).expect("exploration succeeds");
    // 2 fixed designs x 2 skews x 7 flows + 2 workloads x 2 widths x 2 skews x 7 flows.
    assert_eq!(results.points().len(), 28 + 56);
    let jobs = spec.jobs();
    for point in results.points() {
        let job = &jobs[point.job.index()];
        let design = spec.materialize(job);
        assert!(
            design.spec().total_bits() <= 16,
            "{}: widen the exhaustive budget if this grows",
            point.job
        );
        let artifact = point
            .artifact
            .as_ref()
            .expect("retain_artifacts keeps every netlist");
        check_equivalence(
            &artifact.netlist,
            &artifact.word_map,
            design.expr(),
            design.spec(),
            design.output_width(),
            4096,
            41,
        )
        .unwrap_or_else(|error| panic!("{}: {error}", point.job));
    }
}
