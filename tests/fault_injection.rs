//! Deterministic fault-injection wall: crash-safety and graceful degradation,
//! pinned by *byte identity*, not by "it didn't crash".
//!
//! Every test builds a [`FaultPlan`](dpsyn_explore::faults::FaultPlan) naming the
//! exact store operation or job attempt that fails, replays it, and asserts the
//! recovered state — memo file bytes, rendered summaries, server responses — is
//! identical to a run that never saw the fault:
//!
//! * **Store**: a flush killed mid-write (torn file, or temp written but never
//!   renamed) recovers on reload — the torn tail is quarantined to a sidecar,
//!   counted, and a warm rerun restores the byte-identical memo file.
//! * **Engine**: a job whose evaluation panics is retried from clean caches and
//!   quarantined after [`JOB_ATTEMPT_LIMIT`] attempts; the sweep *completes*,
//!   reports the quarantine, and is byte-identical for every thread count.
//! * **Serve**: a server whose store is unavailable keeps answering (flagged
//!   `degraded`), sheds oversized/stalled/excess requests with typed rejects,
//!   and reports admission metrics on `{"status":{}}`.

use dpsyn_explore::faults::{FaultPlan, WriteFault};
use dpsyn_explore::{
    explore, explore_with_stats, quarantine_path, ExplorationSpec, ExplorationSpecBuilder,
    ExploreError, Flow, ResultStore, SkewProfile, JOB_ATTEMPT_LIMIT,
};
use std::path::PathBuf;

/// A fresh scratch path per test; the process id keeps parallel `cargo test`
/// processes apart.
fn scratch(test: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dpsyn-fault-injection-{}-{test}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(quarantine_path(&path));
    path
}

/// The small matrix the wall sweeps: 2 sources x 2 skews x 3 flows = 12 jobs,
/// covering both analysis stages.
fn wall_spec() -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .sum_workload(3)
        .width(4)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot])
        .seed(7)
}

/// Reference memo-file bytes of an uninterrupted cold run of the wall matrix.
fn baseline_file(test: &str) -> Vec<u8> {
    let path = scratch(&format!("{test}-baseline"));
    let spec = wall_spec()
        .store(path.clone())
        .threads(2)
        .build()
        .expect("baseline spec");
    explore_with_stats(&spec).expect("baseline run succeeds");
    let bytes = std::fs::read(&path).expect("baseline memo file exists");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn torn_flush_recovers_byte_identically_on_the_warm_rerun() {
    let baseline = baseline_file("torn");
    let path = scratch("torn");

    // Cold run whose first flush write tears mid-file: a truncated prefix lands
    // in the memo file (the kill happened after the data loss), and the flush
    // reports the injected error.
    let keep_bytes = baseline.len() * 2 / 3;
    let plan = FaultPlan::builder()
        .store_write_fault(1, WriteFault::Torn { keep_bytes })
        .build();
    let spec = wall_spec()
        .store(path.clone())
        .threads(2)
        .faults(plan)
        .build()
        .expect("faulted spec");
    let error = explore_with_stats(&spec).expect_err("the torn flush must surface");
    assert!(
        matches!(&error, ExploreError::Store { message, .. } if message.contains("torn write")),
        "unexpected error: {error}"
    );
    let torn = std::fs::read(&path).expect("the torn prefix was renamed into place");
    assert_eq!(torn.len(), keep_bytes, "exactly the torn prefix survives");
    assert_eq!(torn, &baseline[..keep_bytes], "the tear is a strict prefix");

    // Reopen: the cut line is detected as a torn tail, quarantined and counted —
    // never an error, never a wrong record.
    let reloaded = ResultStore::load(&path).expect("a torn file loads");
    let health = reloaded.health();
    assert!(
        health.torn_tail,
        "the mid-record cut is recognized as a tear"
    );
    assert_eq!(health.damaged_lines, 1, "only the cut line is damaged");
    assert_eq!(health.quarantined, 1, "the cut line is quarantined");
    assert!(
        quarantine_path(&path).exists(),
        "the quarantine sidecar holds the evidence"
    );
    assert!(
        health.records > 0 && health.records < baseline.lines_estimate(),
        "the surviving prefix records loaded ({} of ~{})",
        health.records,
        baseline.lines_estimate()
    );

    // Warm rerun without faults: recomputes the missing records and flushes the
    // memo file back to the exact bytes the uninterrupted run produces.
    let recovery = wall_spec()
        .store(path.clone())
        .threads(2)
        .build()
        .expect("recovery spec");
    let (_, stats) = explore_with_stats(&recovery).expect("recovery run succeeds");
    assert!(
        stats.total_store_hits() > 0,
        "the surviving prefix serves warm hits during recovery"
    );
    let recovered = std::fs::read(&path).expect("recovered memo file exists");
    assert_eq!(
        recovered, baseline,
        "the recovered memo file is byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(quarantine_path(&path));
}

/// `Vec<u8>` line-count helper for the assertion messages above.
trait LinesEstimate {
    fn lines_estimate(&self) -> usize;
}

impl LinesEstimate for Vec<u8> {
    fn lines_estimate(&self) -> usize {
        self.iter().filter(|&&byte| byte == b'\n').count()
    }
}

#[test]
fn crash_before_rename_preserves_prior_state_and_recovers() {
    let baseline = baseline_file("rename");
    let path = scratch("rename");

    // Phase 1: warm the store with a subset of the matrix (one flow).
    let warmup = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .sum_workload(3)
        .width(4)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .flows([Flow::Conventional])
        .seed(7)
        .store(path.clone())
        .threads(1)
        .build()
        .expect("warmup spec");
    explore_with_stats(&warmup).expect("warmup run succeeds");
    let after_warmup = std::fs::read(&path).expect("warmup memo file exists");

    // Phase 2: the full matrix, killed after the temp file is written but before
    // the atomic rename — the memo file must keep its previous bytes exactly.
    let plan = FaultPlan::builder()
        .store_write_fault(1, WriteFault::CrashBeforeRename)
        .build();
    let spec = wall_spec()
        .store(path.clone())
        .threads(2)
        .faults(plan)
        .build()
        .expect("faulted spec");
    let error = explore_with_stats(&spec).expect_err("the crash must surface");
    assert!(
        matches!(&error, ExploreError::Store { message, .. }
            if message.contains("crash before rename")),
        "unexpected error: {error}"
    );
    assert_eq!(
        std::fs::read(&path).expect("memo file still exists"),
        after_warmup,
        "a crash before the rename never touches the memo file"
    );

    // Phase 3: the rerun flushes the full matrix; byte-identical to a store that
    // never crashed.
    let recovery = wall_spec()
        .store(path.clone())
        .threads(2)
        .build()
        .expect("recovery spec");
    explore_with_stats(&recovery).expect("recovery run succeeds");
    assert_eq!(
        std::fs::read(&path).expect("recovered memo file exists"),
        baseline,
        "the recovered memo file is byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(quarantine_path(&path));
}

#[test]
fn injected_read_outage_is_a_typed_store_error() {
    let path = scratch("read-outage");
    let plan = FaultPlan::builder().store_read_outage(1, u64::MAX).build();
    let spec = wall_spec()
        .store(path.clone())
        .threads(1)
        .faults(plan)
        .build()
        .expect("faulted spec");
    let error = explore_with_stats(&spec).expect_err("the unreadable store must surface");
    assert!(
        matches!(&error, ExploreError::Store { message, .. }
            if message.contains("injected store read fault")),
        "unexpected error: {error}"
    );
}

#[test]
fn panicking_jobs_quarantine_deterministically_across_thread_counts() {
    // Jobs 2 and 7 panic on every attempt (budget >= the retry limit); the sweep
    // must complete, retry each poisoned job to the limit, quarantine both, and
    // render byte-identically for every thread count.
    let mut summaries = Vec::new();
    for threads in [1, 2, 4] {
        let plan = FaultPlan::builder()
            .panic_job(2, u64::MAX)
            .panic_job(7, u64::MAX)
            .build();
        let spec = wall_spec()
            .threads(threads)
            .faults(std::sync::Arc::clone(&plan))
            .build()
            .expect("faulted spec");
        let jobs = spec.jobs().len();
        let results = explore(&spec).expect("poisoned jobs must not fail the sweep");
        assert_eq!(
            results.points().len(),
            jobs - 2,
            "every healthy job completes ({threads} thread(s))"
        );
        let quarantined: Vec<usize> = results.quarantined().iter().map(|j| j.index).collect();
        assert_eq!(quarantined, vec![2, 7], "canonical quarantine order");
        for job in results.quarantined() {
            assert_eq!(job.attempts, JOB_ATTEMPT_LIMIT, "full retry budget spent");
            assert!(
                job.reason.contains("injected evaluation fault"),
                "the panic message survives: {:?}",
                job.reason
            );
            assert_eq!(
                plan.job_attempts(job.index),
                JOB_ATTEMPT_LIMIT as u64,
                "the plan observed exactly the retry-limit attempts"
            );
        }
        let summary = results.render_summary();
        assert!(
            summary.contains("quarantined jobs (2):"),
            "the summary reports the quarantine"
        );
        summaries.push(summary);
    }
    assert!(
        summaries.windows(2).all(|pair| pair[0] == pair[1]),
        "quarantined sweeps are byte-identical across thread counts"
    );
}

#[test]
fn transient_panics_recover_to_the_fault_free_bytes() {
    // Job 5 panics once; the supervised retry succeeds and the summary is
    // byte-identical to a run that never panicked.
    let plan = FaultPlan::builder().panic_job(5, 1).build();
    let spec = wall_spec()
        .threads(2)
        .faults(std::sync::Arc::clone(&plan))
        .build()
        .expect("faulted spec");
    let results = explore(&spec).expect("one transient panic is retried");
    assert!(results.quarantined().is_empty(), "the retry succeeded");
    assert_eq!(plan.job_attempts(5), 2, "panicking attempt plus the retry");
    let clean = explore(&wall_spec().threads(2).build().expect("clean spec"))
        .expect("fault-free run succeeds");
    assert_eq!(
        results.render_summary(),
        clean.render_summary(),
        "the recovered sweep is byte-identical to the fault-free one"
    );
}

#[test]
fn damaged_lines_quarantine_once_across_repeated_reloads() {
    let path = scratch("sidecar");
    let spec = wall_spec()
        .store(path.clone())
        .threads(1)
        .build()
        .expect("spec");
    explore_with_stats(&spec).expect("cold run succeeds");

    // Tamper one middle record line (checksums catch it); keep the trailing
    // newline so this is damage, not a tear.
    let text = std::fs::read_to_string(&path).expect("memo file reads");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() > 4, "the memo file holds several records");
    let target = lines.len() / 2;
    lines[target] = lines[target].replace(char::is_numeric, "9");
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("tampered file writes");

    for reload in 1..=3 {
        let store = ResultStore::load(&path).expect("a damaged file loads");
        assert_eq!(
            store.damaged_lines(),
            1,
            "reload {reload}: the tampered line is damaged"
        );
        assert!(!store.torn_tail(), "damage in the middle is not a tear");
        assert_eq!(
            store.quarantined(),
            1,
            "reload {reload}: the sidecar deduplicates the same evidence"
        );
    }
    let sidecar =
        std::fs::read_to_string(quarantine_path(&path)).expect("the sidecar holds the line");
    assert_eq!(sidecar.lines().count(), 1, "exactly one quarantined line");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(quarantine_path(&path));
}

// ---------------------------------------------------------------------------
// Server-layer faults (Unix domain sockets).
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod serve_faults {
    use super::*;
    use dpsyn_explore::faults::deterministic_garbage;
    use dpsyn_explore::{serve, ServeConfig, ServeResponse};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    /// A tiny request the degraded-server tests sweep (2 jobs, sub-second).
    const SWEEP: &str = concat!(
        r#"{"sources":[{"design":"x_squared"}],"flows":["conventional","fa_aot"],"#,
        r#""seed":7,"threads":1}"#,
        "\n"
    );

    fn sock(test: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "dpsyn-fault-injection-{}-{test}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn connect(socket: &PathBuf) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(socket) {
                Ok(stream) => return stream,
                Err(error) if Instant::now() >= deadline => {
                    panic!("cannot connect to serve socket: {error}")
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn read_response(stream: &mut UnixStream) -> ServeResponse {
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("response line arrives");
        ServeResponse::parse(&line).expect("response parses")
    }

    fn shutdown(socket: &PathBuf) {
        let mut closer = connect(socket);
        closer
            .write_all(b"{\"shutdown\":true}\n")
            .expect("shutdown sends");
        let ack = read_response(&mut closer);
        assert!(ack.ok && ack.shutdown, "shutdown must be acknowledged");
    }

    /// Acceptance (c): a server with an *unavailable* store keeps answering,
    /// flags itself degraded, and its status reports hit-rate / in-flight /
    /// queue-depth.
    #[test]
    fn store_outage_degrades_and_status_reports_admission_metrics() {
        let socket = sock("degraded");
        let store = scratch("degraded-store");
        let mut config = ServeConfig::new(socket.clone());
        config.store_path = Some(store.clone());
        config.faults = Some(
            FaultPlan::builder()
                .store_read_outage(1, u64::MAX)
                .store_write_outage(1, u64::MAX)
                .build(),
        );
        let server = std::thread::spawn(move || serve(&config));

        let mut stream = connect(&socket);
        stream.write_all(SWEEP.as_bytes()).expect("sweep sends");
        let first = read_response(&mut stream);
        assert!(
            first.ok,
            "the outage must not fail the sweep: {}",
            first.error
        );
        assert_eq!(first.points, 2, "the sweep computed through");
        assert_eq!(first.store, "degraded", "the response flags the outage");
        assert_eq!(first.store_hits, 0, "nothing warm behind an outage");
        // A second sweep answers too (and the in-memory records now serve hits
        // even though every flush keeps failing).
        stream.write_all(SWEEP.as_bytes()).expect("sweep sends");
        let second = read_response(&mut stream);
        assert!(second.ok && second.store == "degraded");
        assert!(
            second.store_hits > 0,
            "the in-memory store still accelerates repeat sweeps"
        );
        drop(stream);

        let mut statusline = connect(&socket);
        statusline
            .write_all(b"{\"status\":{}}\n")
            .expect("status sends");
        let status = read_response(&mut statusline)
            .status
            .expect("a degraded server answers status");
        assert_eq!(status.store, "degraded");
        assert_eq!(status.completed, 2);
        assert_eq!(status.jobs, 4);
        assert!(
            (status.hit_rate - 0.5).abs() < 1e-9,
            "2 warm of 4 jobs: hit-rate 0.5 (got {})",
            status.hit_rate
        );
        assert_eq!(status.in_flight, 0, "no sweep is executing now");
        drop(statusline);

        shutdown(&socket);
        server
            .join()
            .expect("server thread joins")
            .expect("a degraded server still exits cleanly");
        assert!(
            !store.exists(),
            "every flush failed, so the outage store file never materialized"
        );
    }

    /// Satellite: the line buffer is bounded — a garbage-spewing client (no
    /// newline, ever) is cut off with a typed `oversized` reject instead of
    /// growing the buffer without limit.
    #[test]
    fn garbage_streams_are_rejected_oversized_at_the_byte_cap() {
        let socket = sock("oversized");
        let mut config = ServeConfig::new(socket.clone());
        config.max_line_bytes = 4096;
        let server = std::thread::spawn(move || serve(&config));

        let mut stream = connect(&socket);
        let garbage = deterministic_garbage(41, 16 * 1024);
        // The server closes the connection after rejecting; a late write may
        // see EPIPE, which is exactly the cutoff working.
        let _ = stream.write_all(&garbage);
        let response = read_response(&mut stream);
        assert!(!response.ok);
        assert_eq!(response.reject, "oversized");
        assert!(
            response.error.contains("4096"),
            "the reject names the cap: {}",
            response.error
        );
        drop(stream);

        // An oversized *line* (newline present, too long) is also rejected.
        let mut stream = connect(&socket);
        let mut line = deterministic_garbage(42, 8 * 1024);
        line.push(b'\n');
        let _ = stream.write_all(&line);
        let response = read_response(&mut stream);
        assert_eq!(response.reject, "oversized");
        drop(stream);

        // The server survives both and still answers a healthy request.
        let mut stream = connect(&socket);
        stream.write_all(SWEEP.as_bytes()).expect("sweep sends");
        let healthy = read_response(&mut stream);
        assert!(
            healthy.ok,
            "the server survived the garbage: {}",
            healthy.error
        );
        drop(stream);

        let mut statusline = connect(&socket);
        statusline
            .write_all(b"{\"status\":{}}\n")
            .expect("status sends");
        let status = read_response(&mut statusline)
            .status
            .expect("status answers");
        assert_eq!(status.rejected_oversized, 2);
        drop(statusline);

        shutdown(&socket);
        server.join().expect("joins").expect("exits cleanly");
    }

    /// Satellite: a slow-loris client parking a partial line is rejected with a
    /// typed `deadline` response once the read deadline passes.
    #[test]
    fn stalled_partial_lines_are_rejected_at_the_read_deadline() {
        let socket = sock("deadline");
        let mut config = ServeConfig::new(socket.clone());
        config.read_deadline = Duration::from_millis(400);
        let server = std::thread::spawn(move || serve(&config));

        let mut stream = connect(&socket);
        stream
            .write_all(br#"{"sources":[{"design""#)
            .expect("partial line sends");
        let response = read_response(&mut stream);
        assert!(!response.ok);
        assert_eq!(response.reject, "deadline");
        drop(stream);

        shutdown(&socket);
        server.join().expect("joins").expect("exits cleanly");
    }

    /// Satellite: the admission cap sheds the excess sweep with a typed
    /// `overloaded` reject instead of queueing unbounded work, and the shed
    /// client can retry successfully afterwards.
    #[test]
    fn excess_sweeps_are_shed_with_a_typed_overloaded_reject() {
        let socket = sock("overloaded");
        let mut config = ServeConfig::new(socket.clone());
        config.max_in_flight = 1;
        // Every attempt of job 0 stalls, holding the single in-flight slot long
        // enough for the second sweep to arrive deterministically.
        config.faults = Some(
            FaultPlan::builder()
                .stall_job(0, Duration::from_millis(1500))
                .build(),
        );
        let server = std::thread::spawn(move || serve(&config));

        let mut slow = connect(&socket);
        slow.write_all(SWEEP.as_bytes()).expect("slow sweep sends");
        // Give the slow sweep time to claim the slot, then oversubscribe.
        std::thread::sleep(Duration::from_millis(400));
        let mut shed = connect(&socket);
        shed.write_all(SWEEP.as_bytes())
            .expect("second sweep sends");
        let rejected = read_response(&mut shed);
        assert!(!rejected.ok);
        assert_eq!(rejected.reject, "overloaded");
        assert!(
            rejected.error.contains("1 sweeps already in flight"),
            "the reject names the cap: {}",
            rejected.error
        );
        drop(shed);

        let slow_response = read_response(&mut slow);
        assert!(slow_response.ok, "the admitted sweep completes normally");
        drop(slow);

        // With the slot free again, a retry of the shed sweep is admitted.
        let mut retry = connect(&socket);
        retry.write_all(SWEEP.as_bytes()).expect("retry sends");
        let retried = read_response(&mut retry);
        assert!(retried.ok, "the retry is admitted: {}", retried.error);
        drop(retry);

        let mut statusline = connect(&socket);
        statusline
            .write_all(b"{\"status\":{}}\n")
            .expect("status sends");
        let status = read_response(&mut statusline)
            .status
            .expect("status answers");
        assert_eq!(status.rejected_overload, 1);
        assert_eq!(status.completed, 2);
        drop(statusline);

        shutdown(&socket);
        server.join().expect("joins").expect("exits cleanly");
    }
}
