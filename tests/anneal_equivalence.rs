//! Bit-identity wall for the `fa_anneal` local search: at every checkpoint of the
//! move loop, a from-scratch `compile()` plus full timing/power/area analysis of
//! the current netlist must agree **bit for bit** with the annealer's live
//! `DeltaState` view — the reports its `rerun_delta` scoring carries between
//! proposals.
//!
//! The observer hook fires after every *settled* proposal, so the checkpoints
//! deliberately include adversarial states: moves that were scored, rejected and
//! rolled back through the same delta path (the rollback must land the live view
//! exactly back on the pre-move bits), and long accepted/rejected interleavings.

use dpsyn_baselines::{fa_anneal, fa_anneal_observed, input_profiles};
use dpsyn_ir::{parse_expr, Expr, InputSpec};
use dpsyn_power::ProbabilityAnalysis;
use dpsyn_tech::TechLibrary;
use dpsyn_timing::TimingAnalysis;

/// Checkpoint cadence: every `CHECK_EVERY`-th settled proposal is cross-checked,
/// plus the first `CHECK_FIRST_REJECTED` rollbacks unconditionally.
const CHECK_EVERY: u64 = 16;
const CHECK_FIRST_REJECTED: u64 = 8;

/// The skewed-profile polynomial the baselines unit suite uses.
fn poly() -> (Expr, InputSpec, u32) {
    (
        parse_expr("a*b + c + 7").expect("fixed expression parses"),
        InputSpec::builder()
            .var_with_arrival("a", 4, 1.0)
            .var_with_probability("b", 4, 0.85)
            .var_with_probability("c", 4, 0.1)
            .build()
            .expect("fixed spec builds"),
        9,
    )
}

/// Runs one observed search over `(expr, spec, width, seed)` and cross-checks the
/// live view against from-scratch analyses at every checkpoint.
fn check_search(expr: &Expr, spec: &InputSpec, width: u32, seed: u64, label: &str) {
    let tech = TechLibrary::lcbg10pv_like();
    // The move loop never touches the input words, so the final word map (and
    // therefore the input profiles) equals the start's; a plain run recovers it.
    let reference = fa_anneal(expr, spec, width, &tech, seed).expect("reference run succeeds");
    let (arrivals, probabilities) = input_profiles(&reference.word_map, spec);

    let mut checked = 0u64;
    let mut checked_rejected = 0u64;
    let mut saw_rejected = 0u64;
    let (result, stats) = fa_anneal_observed(expr, spec, width, &tech, seed, |step| {
        if !step.accepted {
            saw_rejected += 1;
        }
        let due = step.stats.proposals % CHECK_EVERY == 0
            || (!step.accepted && saw_rejected <= CHECK_FIRST_REJECTED);
        if !due {
            return;
        }
        checked += 1;
        if !step.accepted {
            checked_rejected += 1;
        }
        // The carried program is exactly what compiling the carried netlist gives.
        let fresh_compiled = step
            .netlist
            .compile()
            .expect("checkpoint netlist is acyclic");
        assert_eq!(
            *step.compiled, fresh_compiled,
            "{label}: carried program diverged at proposal {}",
            step.stats.proposals
        );
        // Whole-report bit-identity against from-scratch analyses, not just the
        // headline figures: arrivals and probabilities of every net included.
        let fresh_timing = TimingAnalysis::new(&tech)
            .with_input_arrivals(arrivals.clone())
            .run_compiled(&fresh_compiled)
            .expect("from-scratch timing");
        let fresh_power = ProbabilityAnalysis::new(&tech)
            .with_input_probabilities(probabilities.clone())
            .run_compiled(&fresh_compiled)
            .expect("from-scratch power");
        assert_eq!(
            *step.timing, fresh_timing,
            "{label}: live timing diverged at proposal {} (accepted: {})",
            step.stats.proposals, step.accepted
        );
        assert_eq!(
            *step.power, fresh_power,
            "{label}: live power diverged at proposal {} (accepted: {})",
            step.stats.proposals, step.accepted
        );
        assert_eq!(
            tech.compiled_area(step.compiled).to_bits(),
            tech.compiled_area(&fresh_compiled).to_bits(),
            "{label}: area diverged at proposal {}",
            step.stats.proposals
        );
    })
    .expect("observed run succeeds");

    assert!(
        stats.proposals > 0,
        "{label}: the search never scored a move ({stats:?})"
    );
    assert!(
        checked > 0,
        "{label}: no checkpoint fired over {} proposals",
        stats.proposals
    );
    if stats.rejected > 0 {
        assert!(
            checked_rejected > 0,
            "{label}: rejected-then-rolled-back states were never cross-checked \
             ({stats:?})"
        );
    }
    // The observed run retraces the reference run move for move.
    assert_eq!(
        result.netlist.to_verilog(),
        reference.netlist.to_verilog(),
        "{label}: observer changed the trajectory"
    );
}

#[test]
fn live_view_matches_from_scratch_analysis_on_the_polynomial() {
    let (expr, spec, width) = poly();
    // Two seeds: different trajectories, different accept/reject interleavings.
    for seed in [3, 17] {
        check_search(&expr, &spec, width, seed, "poly");
    }
}

#[test]
fn live_view_matches_from_scratch_analysis_on_table_designs() {
    for design in [dpsyn_designs::iir(), dpsyn_designs::x2_x_y()] {
        check_search(
            design.expr(),
            design.spec(),
            design.output_width(),
            1,
            design.name(),
        );
    }
}

#[test]
fn rollbacks_restore_the_live_view_exactly() {
    // A rejected proposal must leave no trace: the live reports after the
    // rollback carry the same bits as before the move. Compare each rejected
    // step's view against the most recent settled (or primed) view.
    let (expr, spec, width) = poly();
    let tech = TechLibrary::lcbg10pv_like();
    let mut last_delay: Option<u64> = None;
    let mut last_energy: Option<u64> = None;
    let mut rejected_checked = 0u64;
    let (_, stats) = fa_anneal_observed(&expr, &spec, width, &tech, 3, |step| {
        let delay = step.timing.critical_delay().to_bits();
        let energy = step.power.total_energy().to_bits();
        if !step.accepted {
            if let (Some(previous_delay), Some(previous_energy)) = (last_delay, last_energy) {
                assert_eq!(delay, previous_delay, "rollback shifted the delay bits");
                assert_eq!(energy, previous_energy, "rollback shifted the energy bits");
                rejected_checked += 1;
            }
        }
        last_delay = Some(delay);
        last_energy = Some(energy);
    })
    .expect("observed run succeeds");
    assert!(
        stats.rejected == 0 || rejected_checked > 0,
        "no rollback was cross-checked ({stats:?})"
    );
}
