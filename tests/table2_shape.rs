//! Shape check for Table 2: FA_ALP consumes no more switching power than the average
//! random FA-input selection, for every design (the paper reports 5.8 % – 25.9 %
//! improvements, 11.8 % on average).

use dpsyn_bench::{format_table2, table2};
use dpsyn_tech::TechLibrary;

#[test]
fn fa_alp_never_loses_to_random_selection() {
    let lib = TechLibrary::lcbg10pv_like();
    let designs = vec![
        dpsyn_designs::iir(),
        dpsyn_designs::serial_adapter(),
        dpsyn_designs::complex_mult(),
    ];
    let rows = table2(&designs, &lib, 2026, 3);
    assert_eq!(rows.len(), designs.len());
    let mut total = 0.0;
    for row in &rows {
        assert!(
            row.fa_alp_power <= row.fa_random_power * 1.001,
            "{}: FA_ALP {} vs FA_random {}",
            row.design,
            row.fa_alp_power,
            row.fa_random_power
        );
        total += row.improvement();
    }
    let average = total / rows.len() as f64;
    assert!(
        average > 0.0,
        "average improvement {average} should be positive"
    );
    let text = format_table2(&rows);
    assert!(text.contains("average improvement"));
}
