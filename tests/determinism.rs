//! Seeded-determinism regression tests: synthesis is a pure function of its
//! inputs. Identical `Synthesizer` configurations must produce byte-identical
//! Verilog and bit-identical quality figures across independent runs — the
//! property that makes every table, figure and failure in this repository
//! reproducible.

use dpsyn_core::{Objective, SelectionStrategy, Synthesizer};
use dpsyn_designs::workloads::{random_sum, SumWorkload};
use dpsyn_designs::Design;
use dpsyn_tech::TechLibrary;

/// Runs one synthesis of `design` and returns the emitted Verilog plus the report.
fn synthesize(
    design: &Design,
    objective: Objective,
    strategy: Option<SelectionStrategy>,
) -> (String, dpsyn_core::SynthesisReport) {
    let lib = TechLibrary::lcbg10pv_like();
    let mut synthesizer = Synthesizer::new(design.expr(), design.spec())
        .objective(objective)
        .technology(&lib)
        .output_width(design.output_width())
        .name(design.name());
    if let Some(strategy) = strategy {
        synthesizer = synthesizer.strategy(strategy);
    }
    let synthesized = synthesizer.run().expect("synthesis succeeds");
    let verilog = synthesized.to_verilog();
    let (_, _, report) = synthesized.into_parts();
    (verilog, report)
}

/// Asserts two runs of the same configuration agree byte-for-byte and bit-for-bit.
fn assert_deterministic(
    design: &Design,
    objective: Objective,
    strategy: Option<SelectionStrategy>,
) {
    let (first_verilog, first_report) = synthesize(design, objective, strategy);
    let (second_verilog, second_report) = synthesize(design, objective, strategy);
    assert_eq!(
        first_verilog,
        second_verilog,
        "Verilog differs across runs for {} under {objective:?}/{strategy:?}",
        design.name()
    );
    // Exact float equality on purpose: determinism means bit-identical figures.
    assert_eq!(first_report.delay, second_report.delay, "{}", design.name());
    assert_eq!(first_report.area, second_report.area, "{}", design.name());
    assert_eq!(
        first_report.switching_energy,
        second_report.switching_energy,
        "{}",
        design.name()
    );
    assert_eq!(
        first_report.power_mw,
        second_report.power_mw,
        "{}",
        design.name()
    );
    assert_eq!(
        first_report.final_input_arrival,
        second_report.final_input_arrival,
        "{}",
        design.name()
    );
    assert_eq!(first_report, second_report, "{}", design.name());
}

#[test]
fn fixed_designs_synthesize_deterministically() {
    for design in [
        dpsyn_designs::x2_x_y(),
        dpsyn_designs::mixed_poly(),
        dpsyn_designs::serial_adapter(),
    ] {
        assert_deterministic(&design, Objective::Timing, None);
        assert_deterministic(&design, Objective::Power, None);
    }
}

#[test]
fn seeded_strategies_synthesize_deterministically() {
    let design = dpsyn_designs::x2_x_y();
    // The Random strategy must be a pure function of its embedded seed.
    assert_deterministic(
        &design,
        Objective::Timing,
        Some(SelectionStrategy::Random(1234)),
    );
    let (verilog_a, _) = synthesize(
        &design,
        Objective::Timing,
        Some(SelectionStrategy::Random(1)),
    );
    let (verilog_b, _) = synthesize(
        &design,
        Objective::Timing,
        Some(SelectionStrategy::Random(2)),
    );
    // Not an API guarantee, but for this design different seeds explore
    // different allocations; if this ever fails spuriously the seeds collide
    // and should simply be changed.
    assert_ne!(
        verilog_a, verilog_b,
        "different Random seeds unexpectedly produced identical netlists"
    );
}

#[test]
fn generated_workloads_are_deterministic_end_to_end() {
    // Workload generation (seeded RNG) composed with synthesis stays pure.
    let workload = SumWorkload {
        operands: 6,
        width: 8,
        max_arrival: 3.0,
        probability_skew: 0.3,
    };
    let first = random_sum(&workload, 77);
    let second = random_sum(&workload, 77);
    assert_eq!(first.expr(), second.expr());
    assert_deterministic(&first, Objective::Timing, None);
    let (verilog_first, report_first) = synthesize(&first, Objective::Power, None);
    let (verilog_second, report_second) = synthesize(&second, Objective::Power, None);
    assert_eq!(verilog_first, verilog_second);
    assert_eq!(report_first, report_second);
}
