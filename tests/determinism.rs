//! Seeded-determinism regression tests: synthesis is a pure function of its
//! inputs. Identical `Synthesizer` configurations must produce byte-identical
//! Verilog and bit-identical quality figures across independent runs — the
//! property that makes every table, figure and failure in this repository
//! reproducible.

use dpsyn_baselines::{fa_anneal_with_stats, Flow};
use dpsyn_core::{Objective, SelectionStrategy, Synthesizer};
use dpsyn_designs::workloads::{random_sum, SumWorkload};
use dpsyn_designs::Design;
use dpsyn_tech::TechLibrary;

/// Runs one synthesis of `design` and returns the emitted Verilog plus the report.
fn synthesize(
    design: &Design,
    objective: Objective,
    strategy: Option<SelectionStrategy>,
) -> (String, dpsyn_core::SynthesisReport) {
    let lib = TechLibrary::lcbg10pv_like();
    let mut synthesizer = Synthesizer::new(design.expr(), design.spec())
        .objective(objective)
        .technology(&lib)
        .output_width(design.output_width())
        .name(design.name());
    if let Some(strategy) = strategy {
        synthesizer = synthesizer.strategy(strategy);
    }
    let synthesized = synthesizer.run().expect("synthesis succeeds");
    let verilog = synthesized.to_verilog();
    let (_, _, report) = synthesized.into_parts();
    (verilog, report)
}

/// Asserts two runs of the same configuration agree byte-for-byte and bit-for-bit.
fn assert_deterministic(
    design: &Design,
    objective: Objective,
    strategy: Option<SelectionStrategy>,
) {
    let (first_verilog, first_report) = synthesize(design, objective, strategy);
    let (second_verilog, second_report) = synthesize(design, objective, strategy);
    assert_eq!(
        first_verilog,
        second_verilog,
        "Verilog differs across runs for {} under {objective:?}/{strategy:?}",
        design.name()
    );
    // Exact float equality on purpose: determinism means bit-identical figures.
    assert_eq!(first_report.delay, second_report.delay, "{}", design.name());
    assert_eq!(first_report.area, second_report.area, "{}", design.name());
    assert_eq!(
        first_report.switching_energy,
        second_report.switching_energy,
        "{}",
        design.name()
    );
    assert_eq!(
        first_report.power_mw,
        second_report.power_mw,
        "{}",
        design.name()
    );
    assert_eq!(
        first_report.final_input_arrival,
        second_report.final_input_arrival,
        "{}",
        design.name()
    );
    assert_eq!(first_report, second_report, "{}", design.name());
}

#[test]
fn fixed_designs_synthesize_deterministically() {
    for design in [
        dpsyn_designs::x2_x_y(),
        dpsyn_designs::mixed_poly(),
        dpsyn_designs::serial_adapter(),
    ] {
        assert_deterministic(&design, Objective::Timing, None);
        assert_deterministic(&design, Objective::Power, None);
    }
}

#[test]
fn seeded_strategies_synthesize_deterministically() {
    let design = dpsyn_designs::x2_x_y();
    // The Random strategy must be a pure function of its embedded seed.
    assert_deterministic(
        &design,
        Objective::Timing,
        Some(SelectionStrategy::Random(1234)),
    );
    let (verilog_a, _) = synthesize(
        &design,
        Objective::Timing,
        Some(SelectionStrategy::Random(1)),
    );
    let (verilog_b, _) = synthesize(
        &design,
        Objective::Timing,
        Some(SelectionStrategy::Random(2)),
    );
    // Not an API guarantee, but for this design different seeds explore
    // different allocations; if this ever fails spuriously the seeds collide
    // and should simply be changed.
    assert_ne!(
        verilog_a, verilog_b,
        "different Random seeds unexpectedly produced identical netlists"
    );
}

#[test]
fn fa_anneal_is_a_pure_function_of_its_seed() {
    // The local search composes a seeded start synthesis with a seeded move
    // trajectory; both must replay exactly. Byte-identical Verilog, bit-identical
    // metrics and identical loop counters across independent runs.
    let lib = TechLibrary::lcbg10pv_like();
    let design = dpsyn_designs::mixed_poly();
    let run = |seed: u64| {
        fa_anneal_with_stats(
            design.expr(),
            design.spec(),
            design.output_width(),
            &lib,
            seed,
        )
        .expect("fa_anneal succeeds")
    };
    let (first, first_stats) = run(9);
    let (second, second_stats) = run(9);
    assert_eq!(
        first.netlist.to_verilog(),
        second.netlist.to_verilog(),
        "fa_anneal Verilog differs across runs at the same seed"
    );
    assert_eq!(first.delay.to_bits(), second.delay.to_bits());
    assert_eq!(first.area.to_bits(), second.area.to_bits());
    assert_eq!(
        first.switching_energy.to_bits(),
        second.switching_energy.to_bits()
    );
    assert_eq!(first.power_mw.to_bits(), second.power_mw.to_bits());
    assert_eq!(
        first_stats, second_stats,
        "the move trajectory itself must replay exactly"
    );
    // Different seeds explore different trajectories (seed folds into both the
    // start allocation and the move RNG); as in the Random-strategy test above,
    // a spurious collision here just means the seeds should be changed.
    let (other, _) = run(10);
    assert_ne!(
        first.netlist.to_verilog(),
        other.netlist.to_verilog(),
        "different fa_anneal seeds unexpectedly produced identical netlists"
    );
    // The Flow wrapper is the same function: equal bits through the dispatch.
    let dispatched = Flow::FaAnneal(9)
        .run(design.expr(), design.spec(), design.output_width(), &lib)
        .expect("dispatched fa_anneal succeeds");
    assert_eq!(first.netlist.to_verilog(), dispatched.netlist.to_verilog());
    assert_eq!(
        first.switching_energy.to_bits(),
        dispatched.switching_energy.to_bits()
    );
}

#[test]
fn generated_workloads_are_deterministic_end_to_end() {
    // Workload generation (seeded RNG) composed with synthesis stays pure.
    let workload = SumWorkload {
        operands: 6,
        width: 8,
        max_arrival: 3.0,
        probability_skew: 0.3,
    };
    let first = random_sum(&workload, 77);
    let second = random_sum(&workload, 77);
    assert_eq!(first.expr(), second.expr());
    assert_deterministic(&first, Objective::Timing, None);
    let (verilog_first, report_first) = synthesize(&first, Objective::Power, None);
    let (verilog_second, report_second) = synthesize(&second, Objective::Power, None);
    assert_eq!(verilog_first, verilog_second);
    assert_eq!(report_first, report_second);
}
