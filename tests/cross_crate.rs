//! Cross-crate integration checks: the analytic power model agrees with simulation,
//! the engine's internal arrival estimates agree with static timing analysis, and the
//! Verilog emitter produces one assignment per cell output.

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_netlist::NetlistStats;
use dpsyn_power::ProbabilityAnalysis;
use dpsyn_sim::{measure_toggles, measure_toggles_blocks, BlockSim, BLOCK_SIZES, DEFAULT_BLOCK};
use dpsyn_tech::TechLibrary;
use dpsyn_timing::TimingAnalysis;
use std::collections::BTreeMap;

/// Synthesizes `expr` under the power objective and asserts the *aggregate* switching
/// activity of the analytic model stays within 15% of lane-based toggle counting
/// (analytic `p(1-p)` per vector pair is a toggle rate of `2·p·(1-p)`).
///
/// The sums are compared rather than per-net values because per-net noise is higher,
/// and partial products sharing literals are correlated, which the analytic model
/// ignores by design — the paper makes the same independence assumption — so the
/// tolerance is loose.
fn assert_analytic_tracks_simulation(
    expr: &dpsyn_ir::Expr,
    spec: &dpsyn_ir::InputSpec,
    output_width: u32,
    vectors: usize,
    seed: u64,
) {
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(expr, spec)
        .objective(Objective::Power)
        .technology(&lib)
        .output_width(output_width)
        .run()
        .expect("synthesis");
    let mut probabilities = BTreeMap::new();
    for word in synthesized.word_map().inputs() {
        for (bit, net) in word.bits().iter().enumerate() {
            probabilities.insert(
                *net,
                spec.bit_profile(word.name(), bit as u32)
                    .map(|p| p.probability)
                    .unwrap_or(0.5),
            );
        }
    }
    let analytic = ProbabilityAnalysis::new(&lib)
        .with_input_probabilities(probabilities)
        .run(synthesized.netlist())
        .expect("power analysis");
    let toggles = measure_toggles(
        synthesized.netlist(),
        synthesized.word_map(),
        spec,
        vectors,
        seed,
    )
    .expect("simulation");
    let mut analytic_total = 0.0;
    let mut simulated_total = 0.0;
    for (_, cell) in synthesized.netlist().cells() {
        for net in cell.outputs() {
            analytic_total += 2.0 * analytic.switching_activity(*net);
            simulated_total += toggles.toggle_rate(*net);
        }
    }
    let relative_gap = (analytic_total - simulated_total).abs() / simulated_total.max(1e-9);
    assert!(
        relative_gap < 0.15,
        "analytic {analytic_total} vs simulated {simulated_total} ({relative_gap})"
    );
}

#[test]
fn analytic_switching_activity_matches_simulation() {
    // The mixed polynomial with pseudo-random input probabilities (Table-2 setup).
    // Vector count raised from 3000 when toggle counting moved to the 64-lane engine.
    let design = dpsyn_designs::mixed_poly().with_random_probabilities(7);
    assert_analytic_tracks_simulation(
        design.expr(),
        design.spec(),
        design.output_width(),
        12000,
        11,
    );
}

#[test]
fn lane_toggle_counts_track_analytic_activity_on_the_low_power_example() {
    // The `low_power_datapath` example's workload: the real part of a complex
    // multiplication whose imaginary operands are strongly biased towards 0 — a much
    // sharper check of the lane-based toggle counter than the p = 0.5 case. 8192
    // vectors are cheap on the 64-lane engine (128 passes).
    let expr = dpsyn_ir::parse_expr("a*c - b*d + 32768").expect("parses");
    let spec = dpsyn_ir::InputSpec::builder()
        .var_with_probability("a", 12, 0.5)
        .var_with_probability("b", 12, 0.08)
        .var_with_probability("c", 12, 0.5)
        .var_with_probability("d", 12, 0.12)
        .build()
        .expect("valid spec");
    assert_analytic_tracks_simulation(&expr, &spec, 26, 8192, 5);
}

#[test]
fn block_engine_matches_lanes_exactly_and_analytic_power_within_divergence_budget() {
    // The same Table-2 setup as above, through the SIMD *block* engine: every block
    // size must reproduce the 64-lane toggle counts bit-for-bit, and the simulated
    // power folded from those counts must sit within the ~15% divergence the
    // explorer's `div%` column is allowed to report.
    let design = dpsyn_designs::mixed_poly().with_random_probabilities(7);
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .objective(Objective::Power)
        .technology(&lib)
        .output_width(design.output_width())
        .run()
        .expect("synthesis");
    let (netlist, map, spec) = (synthesized.netlist(), synthesized.word_map(), design.spec());
    let vectors = 12000;
    let lanes = measure_toggles(netlist, map, spec, vectors, 11).expect("lane simulation");
    for block in BLOCK_SIZES {
        let blocks = measure_toggles_blocks(netlist, map, spec, vectors, 11, block)
            .expect("block simulation");
        for (net, _) in netlist.nets() {
            assert_eq!(
                lanes.toggle_rate(net).to_bits(),
                blocks.toggle_rate(net).to_bits(),
                "block size {block} diverged from the lane oracle on net {net:?}"
            );
        }
    }

    // Fold both rate vectors — analytic `2·p·(1−p)` and block-measured — through
    // the *same* simulated-energy weights; the relative gap is exactly what the
    // explorer publishes as its divergence column.
    let simulator = BlockSim::compile(netlist, DEFAULT_BLOCK).expect("block compile");
    let resolved = lib.resolve(simulator.compiled()).expect("tech resolution");
    let mut probabilities = BTreeMap::new();
    for word in map.inputs() {
        for (bit, net) in word.bits().iter().enumerate() {
            probabilities.insert(
                *net,
                spec.bit_profile(word.name(), bit as u32)
                    .map(|p| p.probability)
                    .unwrap_or(0.5),
            );
        }
    }
    let analytic = ProbabilityAnalysis::new(&lib)
        .with_input_probabilities(probabilities)
        .run(netlist)
        .expect("power analysis");
    let mut analytic_rates = vec![0.0; simulator.net_count()];
    let mut simulated_rates = vec![0.0; simulator.net_count()];
    for (net, _) in netlist.nets() {
        analytic_rates[net.index()] = 2.0 * analytic.switching_activity(net);
        simulated_rates[net.index()] = lanes.toggle_rate(net);
    }
    let volts_squared = lib.voltage() * lib.voltage();
    let analytic_power =
        dpsyn_power::simulated_energy(simulator.compiled(), &resolved, &analytic_rates)
            * volts_squared;
    let simulated_power =
        dpsyn_power::simulated_energy(simulator.compiled(), &resolved, &simulated_rates)
            * volts_squared;
    let divergence = dpsyn_power::power_divergence(analytic_power, simulated_power);
    assert!(
        analytic_power > 0.0 && simulated_power > 0.0,
        "both power figures must be positive ({analytic_power} vs {simulated_power})"
    );
    assert!(
        divergence.abs() < 0.15,
        "analytic {analytic_power} mW vs simulated {simulated_power} mW \
         diverged by {divergence}"
    );
}

#[test]
fn engine_arrival_estimate_matches_static_timing_analysis() {
    // The allocation engine estimates the latest final-adder input arrival while it
    // builds the tree; a full STA of the finished netlist must agree for designs whose
    // partial-product AND trees are degenerate (plain additions), and must never be
    // later than the estimate otherwise.
    let design = dpsyn_designs::serial_adapter();
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .objective(Objective::Timing)
        .technology(&lib)
        .output_width(design.output_width())
        .run()
        .expect("synthesis");
    let mut arrivals = BTreeMap::new();
    for word in synthesized.word_map().inputs() {
        for (bit, net) in word.bits().iter().enumerate() {
            arrivals.insert(
                *net,
                design
                    .spec()
                    .bit_profile(word.name(), bit as u32)
                    .map(|p| p.arrival)
                    .unwrap_or(0.0),
            );
        }
    }
    let timing = TimingAnalysis::new(&lib)
        .with_input_arrivals(arrivals)
        .run(synthesized.netlist())
        .expect("sta");
    // The critical output is behind the final adder, so the full critical delay must be
    // at least the tree's estimated completion time.
    assert!(timing.critical_delay() >= synthesized.report().final_input_arrival - 1e-9);
    assert!((timing.critical_delay() - synthesized.report().delay).abs() < 1e-9);
}

#[test]
fn verilog_emission_covers_every_cell() {
    let design = dpsyn_designs::x2_x_y();
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .technology(&lib)
        .output_width(design.output_width())
        .name("x2_x_y_datapath")
        .run()
        .expect("synthesis");
    let verilog = synthesized.to_verilog();
    let stats = NetlistStats::of(synthesized.netlist());
    // One assign per single-output cell, two per adder cell.
    let expected_assigns = stats.cell_count() + stats.adder_count();
    assert_eq!(verilog.matches("assign").count(), expected_assigns);
    assert!(verilog.contains("module x2_x_y_datapath"));
    assert!(verilog.trim_end().ends_with("endmodule"));
}
