//! Cross-crate integration checks: the analytic power model agrees with simulation,
//! the engine's internal arrival estimates agree with static timing analysis, and the
//! Verilog emitter produces one assignment per cell output.

use dpsyn_core::{Objective, Synthesizer};
use dpsyn_netlist::NetlistStats;
use dpsyn_power::ProbabilityAnalysis;
use dpsyn_sim::measure_toggles;
use dpsyn_tech::TechLibrary;
use dpsyn_timing::TimingAnalysis;
use std::collections::BTreeMap;

#[test]
fn analytic_switching_activity_matches_simulation() {
    // Synthesize the mixed polynomial and compare the analytic per-net switching
    // activity (p(1-p) per vector pair is a toggle rate of 2*p*(1-p)) against toggle
    // counting over random vectors.
    let design = dpsyn_designs::mixed_poly().with_random_probabilities(7);
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .objective(Objective::Power)
        .technology(&lib)
        .output_width(design.output_width())
        .run()
        .expect("synthesis");
    let mut probabilities = BTreeMap::new();
    for word in synthesized.word_map().inputs() {
        for (bit, net) in word.bits().iter().enumerate() {
            probabilities.insert(
                *net,
                design
                    .spec()
                    .bit_profile(word.name(), bit as u32)
                    .map(|p| p.probability)
                    .unwrap_or(0.5),
            );
        }
    }
    let analytic = ProbabilityAnalysis::new(&lib)
        .with_input_probabilities(probabilities)
        .run(synthesized.netlist())
        .expect("power analysis");
    let vectors = 3000;
    let toggles = measure_toggles(
        synthesized.netlist(),
        synthesized.word_map(),
        design.spec(),
        vectors,
        11,
    )
    .expect("simulation");
    // Compare the *aggregate* activity over all output nets of cells; per-net noise is
    // higher, but the sums must agree within a few percent. (Partial products sharing
    // literals are correlated, which the analytic model ignores by design — the paper
    // makes the same independence assumption — so the tolerance is loose.)
    let mut analytic_total = 0.0;
    let mut simulated_total = 0.0;
    for (_, cell) in synthesized.netlist().cells() {
        for net in cell.outputs() {
            analytic_total += 2.0 * analytic.switching_activity(*net);
            simulated_total += toggles.toggle_rate(*net);
        }
    }
    let relative_gap = (analytic_total - simulated_total).abs() / simulated_total.max(1e-9);
    assert!(
        relative_gap < 0.15,
        "analytic {analytic_total} vs simulated {simulated_total} ({relative_gap})"
    );
}

#[test]
fn engine_arrival_estimate_matches_static_timing_analysis() {
    // The allocation engine estimates the latest final-adder input arrival while it
    // builds the tree; a full STA of the finished netlist must agree for designs whose
    // partial-product AND trees are degenerate (plain additions), and must never be
    // later than the estimate otherwise.
    let design = dpsyn_designs::serial_adapter();
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .objective(Objective::Timing)
        .technology(&lib)
        .output_width(design.output_width())
        .run()
        .expect("synthesis");
    let mut arrivals = BTreeMap::new();
    for word in synthesized.word_map().inputs() {
        for (bit, net) in word.bits().iter().enumerate() {
            arrivals.insert(
                *net,
                design
                    .spec()
                    .bit_profile(word.name(), bit as u32)
                    .map(|p| p.arrival)
                    .unwrap_or(0.0),
            );
        }
    }
    let timing = TimingAnalysis::new(&lib)
        .with_input_arrivals(arrivals)
        .run(synthesized.netlist())
        .expect("sta");
    // The critical output is behind the final adder, so the full critical delay must be
    // at least the tree's estimated completion time.
    assert!(timing.critical_delay() >= synthesized.report().final_input_arrival - 1e-9);
    assert!((timing.critical_delay() - synthesized.report().delay).abs() < 1e-9);
}

#[test]
fn verilog_emission_covers_every_cell() {
    let design = dpsyn_designs::x2_x_y();
    let lib = TechLibrary::lcbg10pv_like();
    let synthesized = Synthesizer::new(design.expr(), design.spec())
        .technology(&lib)
        .output_width(design.output_width())
        .name("x2_x_y_datapath")
        .run()
        .expect("synthesis");
    let verilog = synthesized.to_verilog();
    let stats = NetlistStats::of(synthesized.netlist());
    // One assign per single-output cell, two per adder cell.
    let expected_assigns = stats.cell_count() + stats.adder_count();
    assert_eq!(verilog.matches("assign").count(), expected_assigns);
    assert!(verilog.contains("module x2_x_y_datapath"));
    assert!(verilog.trim_end().ends_with("endmodule"));
}
