//! Pareto gate for the `fa_anneal` local search: at an equal seed budget,
//! `fa_anneal(seed)` starts from the very tree allocation `fa_random(seed)` draws
//! (same `SelectionStrategy::Random(seed)`, ripple root) and only ever accepts
//! moves that improve one of delay/energy without worsening the other, with area
//! invariant. So on every Table-1 design it must never be Pareto-dominated by
//! `fa_random` at the same seed — and across the design set the search must
//! actually earn its keep by strictly improving switching energy somewhere.

use dpsyn_baselines::{Flow, FlowResult};
use dpsyn_core::{FinalAdderKind, Objective, SelectionStrategy, Synthesizer};
use dpsyn_designs::Design;
use dpsyn_tech::TechLibrary;

/// `candidate` is dominated iff `other` is no worse on delay, area and energy
/// and strictly better on at least one.
fn dominated(candidate: &FlowResult, other: &FlowResult) -> bool {
    let no_worse = other.delay <= candidate.delay
        && other.area <= candidate.area
        && other.switching_energy <= candidate.switching_energy;
    let strictly_better = other.delay < candidate.delay
        || other.area < candidate.area
        || other.switching_energy < candidate.switching_energy;
    no_worse && strictly_better
}

fn run(flow: Flow, design: &Design, tech: &TechLibrary) -> FlowResult {
    flow.run(design.expr(), design.spec(), design.output_width(), tech)
        .unwrap_or_else(|error| panic!("{flow} on {}: {error}", design.name()))
}

/// Runs both flows at the given seed over every design and applies the gate.
fn gate(designs: &[Design], seed: u64, label: &str) {
    let tech = TechLibrary::lcbg10pv_like();
    let mut strict_energy_wins = 0usize;
    for design in designs {
        let random = run(Flow::FaRandom(seed), design, &tech);
        let anneal = run(Flow::FaAnneal(seed), design, &tech);
        assert!(
            !dominated(&anneal, &random),
            "{label}/{}: fa_anneal(seed={seed}) is Pareto-dominated by \
             fa_random(seed={seed}): anneal (delay {}, area {}, energy {}) vs \
             random (delay {}, area {}, energy {})",
            design.name(),
            anneal.delay,
            anneal.area,
            anneal.switching_energy,
            random.delay,
            random.area,
            random.switching_energy,
        );
        if anneal.switching_energy < random.switching_energy {
            strict_energy_wins += 1;
        }
    }
    assert!(
        strict_energy_wins > 0,
        "{label}: fa_anneal(seed={seed}) never strictly improved switching energy \
         over fa_random(seed={seed}) on any of the {} designs",
        designs.len()
    );
}

#[test]
fn anneal_is_never_dominated_by_random_on_table1_designs() {
    gate(&dpsyn_designs::table1_designs(), 1, "table1");
}

#[test]
fn anneal_holds_under_random_input_probabilities() {
    // The table2 conditions: random per-design input probabilities (the paper's
    // power experiments) instead of the designs' own profiles.
    let designs: Vec<Design> = dpsyn_designs::table1_designs()
        .iter()
        .map(|design| design.with_random_probabilities(2026))
        .collect();
    gate(&designs, 2, "table1+random-probabilities");
}

#[test]
fn anneal_never_regresses_its_own_start_metrics() {
    // The accept rule is a monotone Pareto descent: the end point is never worse
    // than the seed-matched start (the same random tree with a ripple root and
    // zero accepted moves) in either moving metric, and the cell set — hence the
    // area — never changes at all.
    let tech = TechLibrary::lcbg10pv_like();
    let design = dpsyn_designs::iir();
    for seed in [1, 5] {
        let start = Synthesizer::new(design.expr(), design.spec())
            .objective(Objective::Power)
            .technology(&tech)
            .output_width(design.output_width())
            .name("fa_anneal")
            .strategy(SelectionStrategy::Random(seed))
            .final_adder(FinalAdderKind::Ripple)
            .run()
            .expect("start synthesis succeeds");
        let anneal = run(Flow::FaAnneal(seed), &design, &tech);
        assert!(anneal.delay <= start.report().delay, "seed {seed}");
        assert!(
            anneal.switching_energy <= start.report().switching_energy,
            "seed {seed}"
        );
        assert_eq!(
            anneal.area.to_bits(),
            start.report().area.to_bits(),
            "seed {seed}: moves must never change the cell set"
        );
    }
}
