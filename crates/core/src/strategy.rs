//! Optimisation objectives and addend-selection strategies.

use std::fmt;

/// The synthesis objective, which determines the default addend-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimise the critical delay (the paper's FA_AOT). Default.
    #[default]
    Timing,
    /// Minimise switching power (the paper's FA_ALP).
    Power,
}

impl Objective {
    /// The selection strategy the paper associates with this objective: earliest arrival
    /// for timing (ties broken by largest `|q|`), largest `|q|` for power (ties broken
    /// by earliest arrival).
    pub fn default_strategy(self) -> SelectionStrategy {
        match self {
            Objective::Timing => SelectionStrategy::EarliestArrival,
            Objective::Power => SelectionStrategy::LargestDeviation,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Timing => write!(f, "timing"),
            Objective::Power => write!(f, "power"),
        }
    }
}

/// How the three (or two) inputs of each new FA (HA) are chosen from a column's addends.
///
/// `EarliestArrival` and `LargestDeviation` are the paper's SC_T and SC_LP selection
/// rules; `RowOrder` reproduces the fixed, arrival-blind selection of the classic
/// Wallace scheme; `Random` is the FA_random reference of the paper's power experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionStrategy {
    /// Pick the addends with the earliest arrival times (ties: largest `|q|`).
    #[default]
    EarliestArrival,
    /// Pick the addends with the largest `|p − 0.5|` (ties: earliest arrival).
    LargestDeviation,
    /// Pick addends in their original row order, ignoring arrival and probability.
    RowOrder,
    /// Pick addends pseudo-randomly (reproducible from the seed).
    Random(u64),
}

impl SelectionStrategy {
    /// A short name used in reports and benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionStrategy::EarliestArrival => "earliest-arrival",
            SelectionStrategy::LargestDeviation => "largest-deviation",
            SelectionStrategy::RowOrder => "row-order",
            SelectionStrategy::Random(_) => "random",
        }
    }
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A small deterministic xorshift generator so random selection does not require an
/// external dependency in the core crate.
#[derive(Debug, Clone)]
pub(crate) struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub(crate) fn new(seed: u64) -> Self {
        SmallRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    pub(crate) fn next_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objectives_map_to_paper_strategies() {
        assert_eq!(
            Objective::Timing.default_strategy(),
            SelectionStrategy::EarliestArrival
        );
        assert_eq!(
            Objective::Power.default_strategy(),
            SelectionStrategy::LargestDeviation
        );
        assert_eq!(Objective::default(), Objective::Timing);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            SelectionStrategy::EarliestArrival.to_string(),
            "earliest-arrival"
        );
        assert_eq!(SelectionStrategy::Random(3).to_string(), "random");
        assert_eq!(Objective::Power.to_string(), "power");
    }

    #[test]
    fn small_rng_is_deterministic_and_in_bounds() {
        let mut first = SmallRng::new(42);
        let mut second = SmallRng::new(42);
        for _ in 0..100 {
            let bound = 7;
            let a = first.next_index(bound);
            assert_eq!(a, second.next_index(bound));
            assert!(a < bound);
        }
        // Different seeds eventually diverge.
        let mut third = SmallRng::new(43);
        let diverged =
            (0..20).any(|_| third.next_index(1000) != SmallRng::new(42).next_index(1000));
        assert!(diverged);
    }
}
