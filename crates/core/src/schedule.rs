//! Pure single-column scheduling algorithms: the paper's `SC_T` and `SC_LP`.
//!
//! These functions work on plain numbers (arrival times or signal probabilities) and do
//! not build netlists; they exist so the optimality claims of the paper (Lemma 1,
//! Lemma 2, Property 3) can be stated and property-tested in isolation, and they are
//! the specification the netlist-building engine in [`crate::allocate_fa_tree`] follows.

/// Result of reducing one column of addends down to at most two.
///
/// The meaning of the values depends on the algorithm: arrival times for [`sc_t`],
/// signal probabilities for [`sc_lp`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnOutcome {
    /// Values (arrival times or probabilities) of the at most two addends left in the
    /// column, in the order they remain.
    pub remaining: Vec<f64>,
    /// Values of the carry-out signals pushed into the next column, in creation order.
    pub carries: Vec<f64>,
    /// Number of full adders allocated.
    pub fa_count: usize,
    /// Number of half adders allocated.
    pub ha_count: usize,
    /// Switching energy `Σ Ws·p_s(1−p_s) + Wc·p_c(1−p_c)` of the allocated adders
    /// (only populated by [`sc_lp`]; zero for [`sc_t`]).
    pub switching_energy: f64,
}

/// The paper's algorithm **SC_T**: FA allocation for a single column driven by arrival
/// times.
///
/// While more than three addends remain, the three earliest are combined by a full
/// adder (sum arrival = max + `ds`, carry arrival = max + `dc`); when exactly three
/// remain, the two earliest are combined by a half adder (`ha_ds`, `ha_dc`). The
/// function returns the arrival times of the remaining (≤ 2) addends and of every carry
/// produced.
///
/// # Example
/// ```
/// use dpsyn_core::sc_t;
/// // Figure 2 column 0: arrivals 7, 2, 3, 2 with Ds = 2, Dc = 1.
/// let outcome = sc_t(&[7.0, 2.0, 3.0, 2.0], 2.0, 1.0, 1.0, 1.0);
/// // One FA over {2, 2, 3}: sum at 5, carry at 4; remaining = {5, 7}.
/// assert_eq!(outcome.fa_count, 1);
/// assert_eq!(outcome.carries, vec![4.0]);
/// let mut remaining = outcome.remaining.clone();
/// remaining.sort_by(f64::total_cmp);
/// assert_eq!(remaining, vec![5.0, 7.0]);
/// ```
pub fn sc_t(arrivals: &[f64], ds: f64, dc: f64, ha_ds: f64, ha_dc: f64) -> ColumnOutcome {
    let mut working: Vec<f64> = arrivals.to_vec();
    let mut carries = Vec::new();
    let mut fa_count = 0;
    let mut ha_count = 0;
    while working.len() >= 3 {
        if working.len() > 3 {
            let picked = take_smallest(&mut working, 3);
            let latest = picked.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            working.push(latest + ds);
            carries.push(latest + dc);
            fa_count += 1;
        } else {
            let picked = take_smallest(&mut working, 2);
            let latest = picked.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            working.push(latest + ha_ds);
            carries.push(latest + ha_dc);
            ha_count += 1;
        }
    }
    ColumnOutcome {
        remaining: working,
        carries,
        fa_count,
        ha_count,
        switching_energy: 0.0,
    }
}

/// The paper's algorithm **SC_LP**: FA allocation for a single column driven by signal
/// probabilities.
///
/// While more than three addends remain, the three addends with the largest
/// `|q| = |p − 0.5|` feed a full adder; with exactly three remaining, the two with the
/// largest `|q|` feed a half adder. Sum and carry probabilities follow the closed
/// forms of Section 4.2, and the switching energy of every allocated adder is
/// accumulated with the weights `ws` and `wc`.
///
/// # Example
/// ```
/// use dpsyn_core::sc_lp;
/// // Figure 4: four addends with p = 0.1, 0.2, 0.3, 0.4, Ws = Wc = 1.
/// let outcome = sc_lp(&[0.1, 0.2, 0.3, 0.4], 1.0, 1.0, 1.0, 1.0);
/// assert_eq!(outcome.fa_count, 1);
/// // The FA consumes the three most-skewed addends (0.1, 0.2, 0.3).
/// assert!(outcome.switching_energy < 0.4);
/// ```
pub fn sc_lp(probabilities: &[f64], ws: f64, wc: f64, ha_ws: f64, ha_wc: f64) -> ColumnOutcome {
    let mut working: Vec<f64> = probabilities.to_vec();
    let mut carries = Vec::new();
    let mut fa_count = 0;
    let mut ha_count = 0;
    let mut switching_energy = 0.0;
    while working.len() >= 3 {
        if working.len() > 3 {
            let picked = take_most_skewed(&mut working, 3);
            let (qx, qy, qz) = (picked[0] - 0.5, picked[1] - 0.5, picked[2] - 0.5);
            let q_sum = dpsyn_power::q_transform::fa_sum_q(qx, qy, qz);
            let q_carry = dpsyn_power::q_transform::fa_carry_q(qx, qy, qz);
            switching_energy += ws * dpsyn_power::q_transform::switching_from_q(q_sum)
                + wc * dpsyn_power::q_transform::switching_from_q(q_carry);
            working.push(q_sum + 0.5);
            carries.push(q_carry + 0.5);
            fa_count += 1;
        } else {
            let picked = take_most_skewed(&mut working, 2);
            let (qx, qy) = (picked[0] - 0.5, picked[1] - 0.5);
            let q_sum = dpsyn_power::q_transform::ha_sum_q(qx, qy);
            let q_carry = dpsyn_power::q_transform::ha_carry_q(qx, qy);
            switching_energy += ha_ws * dpsyn_power::q_transform::switching_from_q(q_sum)
                + ha_wc * dpsyn_power::q_transform::switching_from_q(q_carry);
            working.push(q_sum + 0.5);
            carries.push(q_carry + 0.5);
            ha_count += 1;
        }
    }
    ColumnOutcome {
        remaining: working,
        carries,
        fa_count,
        ha_count,
        switching_energy,
    }
}

/// Removes and returns the `count` smallest values.
fn take_smallest(values: &mut Vec<f64>, count: usize) -> Vec<f64> {
    let mut taken = Vec::with_capacity(count);
    for _ in 0..count {
        let (index, _) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("caller guarantees enough values");
        taken.push(values.swap_remove(index));
    }
    taken
}

/// Removes and returns the `count` values with the largest `|p − 0.5|`.
fn take_most_skewed(values: &mut Vec<f64>, count: usize) -> Vec<f64> {
    let mut taken = Vec::with_capacity(count);
    for _ in 0..count {
        let (index, _) = values
            .iter()
            .enumerate()
            .max_by(|a, b| (a.1 - 0.5).abs().total_cmp(&(b.1 - 0.5).abs()))
            .expect("caller guarantees enough values");
        taken.push(values.swap_remove(index));
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every possible FA/HA allocation order of a single column, used to check Lemma 1
    /// exhaustively for small instances: returns the multiset of (sorted remaining,
    /// sorted carries) pairs reachable by *any* algorithm.
    fn enumerate_all_allocations(arrivals: &[f64], ds: f64, dc: f64) -> Vec<(Vec<f64>, Vec<f64>)> {
        fn recurse(
            working: Vec<f64>,
            carries: Vec<f64>,
            ds: f64,
            dc: f64,
            results: &mut Vec<(Vec<f64>, Vec<f64>)>,
        ) {
            if working.len() <= 2 {
                let mut remaining = working;
                remaining.sort_by(f64::total_cmp);
                let mut carries = carries;
                carries.sort_by(f64::total_cmp);
                results.push((remaining, carries));
                return;
            }
            if working.len() == 3 {
                // Any pair may feed the HA (delays equal to the FA here for simplicity).
                for a in 0..3 {
                    for b in (a + 1)..3 {
                        let mut next = working.clone();
                        let latest = next[a].max(next[b]);
                        let mut to_remove = [a, b];
                        to_remove.sort_unstable();
                        next.remove(to_remove[1]);
                        next.remove(to_remove[0]);
                        next.push(latest + ds);
                        let mut next_carries = carries.clone();
                        next_carries.push(latest + dc);
                        recurse(next, next_carries, ds, dc, results);
                    }
                }
                return;
            }
            let n = working.len();
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        let mut next = working.clone();
                        let latest = next[a].max(next[b]).max(next[c]);
                        let mut to_remove = [a, b, c];
                        to_remove.sort_unstable();
                        next.remove(to_remove[2]);
                        next.remove(to_remove[1]);
                        next.remove(to_remove[0]);
                        next.push(latest + ds);
                        let mut next_carries = carries.clone();
                        next_carries.push(latest + dc);
                        recurse(next, next_carries, ds, dc, results);
                    }
                }
            }
        }
        let mut results = Vec::new();
        recurse(arrivals.to_vec(), Vec::new(), ds, dc, &mut results);
        results
    }

    #[test]
    fn sc_t_reduces_to_at_most_two() {
        for size in 1..12 {
            let arrivals: Vec<f64> = (0..size).map(|i| (i * 7 % 5) as f64).collect();
            let outcome = sc_t(&arrivals, 2.0, 1.0, 1.0, 1.0);
            assert!(outcome.remaining.len() <= 2);
            if size >= 3 {
                assert_eq!(outcome.remaining.len(), 2);
            }
            // FA/HA counts: one HA for odd sizes ≥ 3, and every FA removes two addends.
            if size >= 3 {
                let size = size as usize;
                assert_eq!(outcome.ha_count, size % 2);
                assert_eq!(outcome.fa_count, (size - 2 - size % 2) / 2);
            }
        }
    }

    #[test]
    fn sc_t_figure3_shape() {
        // Six equal-arrival addends (Figure 3): 2 FAs then... the reduction keeps going
        // until two remain: 6 -> 4 -> 2, i.e. two FAs and no HA.
        let outcome = sc_t(&[0.0; 6], 2.0, 1.0, 1.0, 1.0);
        assert_eq!(outcome.fa_count, 2);
        assert_eq!(outcome.ha_count, 0);
        assert_eq!(outcome.carries.len(), 2);
    }

    #[test]
    fn lemma1_sc_t_dominates_every_allocation_exhaustively() {
        // For several small arrival profiles, SC_T's remaining-addend and carry arrival
        // vectors are component-wise minimal over every possible allocation (Lemma 1).
        let profiles: Vec<Vec<f64>> = vec![
            vec![7.0, 2.0, 3.0, 2.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
            vec![5.0, 0.0, 9.0, 3.0, 3.0],
            vec![4.0, 8.0, 1.0, 0.0, 2.0, 6.0],
            vec![0.5, 2.5, 2.5, 7.5],
        ];
        for arrivals in profiles {
            let ours = sc_t(&arrivals, 2.0, 1.0, 2.0, 1.0);
            let ours_latest = ours.remaining.iter().copied().fold(0.0, f64::max);
            let mut ours_carries = ours.carries.clone();
            ours_carries.sort_by(f64::total_cmp);
            for (other_remaining, other_carries) in enumerate_all_allocations(&arrivals, 2.0, 1.0) {
                // The latest remaining addend (what the final adder has to wait for)
                // is never later than under any alternative allocation.
                let other_latest = other_remaining.iter().copied().fold(0.0, f64::max);
                assert!(
                    ours_latest <= other_latest + 1e-9,
                    "latest {ours_latest} vs {other_latest} for {arrivals:?}"
                );
                // And the sorted carry arrival vector is component-wise minimal, so the
                // next column can never do better with a different allocation here.
                for (ours_value, other_value) in ours_carries.iter().zip(&other_carries) {
                    assert!(
                        ours_value <= &(other_value + 1e-9),
                        "carries {ours_carries:?} vs {other_carries:?} for {arrivals:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sc_lp_accumulates_energy_and_reduces() {
        let outcome = sc_lp(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.9], 1.0, 1.0, 1.0, 1.0);
        assert_eq!(outcome.remaining.len(), 2);
        assert!(outcome.switching_energy > 0.0);
        // Six addends reduce with two full adders and no half adder.
        assert_eq!(outcome.fa_count, 2);
        assert_eq!(outcome.ha_count, 0);
        for p in outcome.remaining.iter().chain(outcome.carries.iter()) {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn sc_lp_prefers_skewed_addends() {
        // With two strongly skewed and two unbiased addends, the skewed ones must be
        // consumed by the (only) FA.
        let outcome = sc_lp(&[0.01, 0.99, 0.5, 0.5], 1.0, 1.0, 1.0, 1.0);
        assert_eq!(outcome.fa_count, 1);
        // The remaining addends are the unbiased one that was not picked and the FA sum.
        let has_unbiased = outcome.remaining.iter().any(|p| (p - 0.5).abs() < 1e-9);
        assert!(has_unbiased);
    }

    #[test]
    fn property3_carry_probability_sum_is_invariant_for_full_reduction() {
        // Property 3: when a column is reduced until a single addend remains, the sum of
        // carry probabilities is the same whatever the selection order. We compare the
        // skew-driven order against the plain left-to-right order for an even column
        // (reduced to 1 via repeated FAs would need |M| ≡ 1 mod 2; use 5 addends and
        // reduce manually with FAs only).
        fn reduce_to_one(probabilities: &[f64], pick_skewed: bool) -> f64 {
            let mut working = probabilities.to_vec();
            let mut carry_sum = 0.0;
            while working.len() >= 3 {
                let picked = if pick_skewed {
                    take_most_skewed(&mut working, 3)
                } else {
                    vec![working.remove(0), working.remove(0), working.remove(0)]
                };
                let (qx, qy, qz) = (picked[0] - 0.5, picked[1] - 0.5, picked[2] - 0.5);
                working.push(dpsyn_power::q_transform::fa_sum_q(qx, qy, qz) + 0.5);
                carry_sum += dpsyn_power::q_transform::fa_carry_q(qx, qy, qz) + 0.5;
            }
            assert_eq!(working.len(), 1);
            carry_sum
        }
        let probabilities = [0.1, 0.35, 0.62, 0.8, 0.53];
        let skewed = reduce_to_one(&probabilities, true);
        let plain = reduce_to_one(&probabilities, false);
        assert!(
            (skewed - plain).abs() < 1e-9,
            "carry probability sums differ: {skewed} vs {plain}"
        );
    }
}
