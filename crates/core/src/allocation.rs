//! The FA-tree allocation engine: reduces an addend matrix to two rows by allocating
//! full/half adders column by column, selecting each adder's inputs according to a
//! [`SelectionStrategy`].
//!
//! This is the netlist-building counterpart of the pure algorithms in
//! [`crate::schedule`]; with [`SelectionStrategy::EarliestArrival`] it implements the
//! paper's FA_AOT, with [`SelectionStrategy::LargestDeviation`] FA_ALP, with
//! [`SelectionStrategy::RowOrder`] the fixed Wallace selection and with
//! [`SelectionStrategy::Random`] the FA_random reference.

use crate::strategy::{SelectionStrategy, SmallRng};
use dpsyn_netlist::{CellKind, NetId, Netlist, NetlistError};
use dpsyn_power::q_transform;
use dpsyn_tech::TechLibrary;

/// One leaf addend of a column: a net plus the (estimated) arrival time and signal
/// probability the selection strategies operate on.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafAddend {
    /// The net carrying the addend.
    pub net: NetId,
    /// Estimated arrival time of the addend (input arrival plus generation-gate delay).
    pub arrival: f64,
    /// Signal probability of the addend under the independence assumption.
    pub probability: f64,
}

impl LeafAddend {
    /// Creates a leaf addend.
    pub fn new(net: NetId, arrival: f64, probability: f64) -> Self {
        LeafAddend {
            net,
            arrival,
            probability,
        }
    }
}

/// The outcome of reducing the whole matrix: the two operand rows for the final adder
/// plus allocation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedRows {
    /// First operand row, one net per column (constant 0 where a column is empty).
    pub row_a: Vec<NetId>,
    /// Second operand row.
    pub row_b: Vec<NetId>,
    /// Number of full adders allocated in the tree.
    pub fa_count: usize,
    /// Number of half adders allocated in the tree.
    pub ha_count: usize,
    /// Estimated latest arrival time among the final-adder inputs — the quantity the
    /// paper's modified objective (Section 3.3) minimises.
    pub final_input_arrival: f64,
    /// Estimated switching energy of the allocated adders (the paper's
    /// `E_switching(T)` restricted to the FA-tree, before the final adder).
    pub tree_switching_energy: f64,
}

#[derive(Debug, Clone)]
struct WorkItem {
    net: NetId,
    arrival: f64,
    probability: f64,
    order: usize,
}

/// Reduces the addend columns to two rows by allocating FAs/HAs inside `netlist`.
///
/// `columns[j]` holds the leaf addends of bit weight `2^j`; carries produced while
/// reducing column `j` are inserted into column `j + 1` (and dropped past the last
/// column, i.e. the result is taken modulo `2^width`). Every column is reduced to at
/// most two addends; the remaining addends form the two operand rows returned.
///
/// # Errors
///
/// Returns an error if any addend net does not belong to `netlist`.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use dpsyn_core::{allocate_fa_tree, LeafAddend, SelectionStrategy};
/// use dpsyn_netlist::Netlist;
/// use dpsyn_tech::TechLibrary;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut netlist = Netlist::new("column");
/// let leaves: Vec<LeafAddend> = (0..4)
///     .map(|index| {
///         let net = netlist.add_input(format!("x{index}"));
///         LeafAddend::new(net, index as f64, 0.5)
///     })
///     .collect();
/// let rows = allocate_fa_tree(
///     &mut netlist,
///     vec![leaves],
///     SelectionStrategy::EarliestArrival,
///     &TechLibrary::unit(),
/// )?;
/// assert_eq!(rows.fa_count, 1);
/// assert_eq!(rows.row_a.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn allocate_fa_tree(
    netlist: &mut Netlist,
    columns: Vec<Vec<LeafAddend>>,
    strategy: SelectionStrategy,
    tech: &TechLibrary,
) -> Result<ReducedRows, NetlistError> {
    let width = columns.len();
    let fa_sum_delay = tech.fa_sum_delay();
    let fa_carry_delay = tech.fa_carry_delay();
    let ha_sum_delay = tech.output_delay(CellKind::Ha, 0);
    let ha_carry_delay = tech.output_delay(CellKind::Ha, 1);
    let fa_ws = tech.fa_sum_energy();
    let fa_wc = tech.fa_carry_energy();
    let ha_ws = tech.switch_energy(CellKind::Ha, 0);
    let ha_wc = tech.switch_energy(CellKind::Ha, 1);

    let mut rng = match strategy {
        SelectionStrategy::Random(seed) => Some(SmallRng::new(seed)),
        _ => None,
    };
    let mut order = 0usize;
    let mut working: Vec<Vec<WorkItem>> = columns
        .into_iter()
        .map(|column| {
            column
                .into_iter()
                .map(|leaf| {
                    let item = WorkItem {
                        net: leaf.net,
                        arrival: leaf.arrival,
                        probability: leaf.probability,
                        order,
                    };
                    order += 1;
                    item
                })
                .collect()
        })
        .collect();

    let mut fa_count = 0usize;
    let mut ha_count = 0usize;
    let mut tree_switching_energy = 0.0f64;

    for column in 0..width {
        while working[column].len() >= 3 {
            if working[column].len() > 3 {
                let picked = select(&mut working[column], 3, strategy, rng.as_mut());
                let latest = picked
                    .iter()
                    .map(|item| item.arrival)
                    .fold(f64::NEG_INFINITY, f64::max);
                let (qx, qy, qz) = (
                    picked[0].probability - 0.5,
                    picked[1].probability - 0.5,
                    picked[2].probability - 0.5,
                );
                let outs = netlist
                    .add_gate(CellKind::Fa, &[picked[0].net, picked[1].net, picked[2].net])?;
                let q_sum = q_transform::fa_sum_q(qx, qy, qz);
                let q_carry = q_transform::fa_carry_q(qx, qy, qz);
                tree_switching_energy += fa_ws * q_transform::switching_from_q(q_sum)
                    + fa_wc * q_transform::switching_from_q(q_carry);
                working[column].push(WorkItem {
                    net: outs[0],
                    arrival: latest + fa_sum_delay,
                    probability: q_sum + 0.5,
                    order: bump(&mut order),
                });
                if column + 1 < width {
                    working[column + 1].push(WorkItem {
                        net: outs[1],
                        arrival: latest + fa_carry_delay,
                        probability: q_carry + 0.5,
                        order: bump(&mut order),
                    });
                }
                fa_count += 1;
            } else {
                let picked = select(&mut working[column], 2, strategy, rng.as_mut());
                let latest = picked
                    .iter()
                    .map(|item| item.arrival)
                    .fold(f64::NEG_INFINITY, f64::max);
                let (qx, qy) = (picked[0].probability - 0.5, picked[1].probability - 0.5);
                let outs = netlist.add_gate(CellKind::Ha, &[picked[0].net, picked[1].net])?;
                let q_sum = q_transform::ha_sum_q(qx, qy);
                let q_carry = q_transform::ha_carry_q(qx, qy);
                tree_switching_energy += ha_ws * q_transform::switching_from_q(q_sum)
                    + ha_wc * q_transform::switching_from_q(q_carry);
                working[column].push(WorkItem {
                    net: outs[0],
                    arrival: latest + ha_sum_delay,
                    probability: q_sum + 0.5,
                    order: bump(&mut order),
                });
                if column + 1 < width {
                    working[column + 1].push(WorkItem {
                        net: outs[1],
                        arrival: latest + ha_carry_delay,
                        probability: q_carry + 0.5,
                        order: bump(&mut order),
                    });
                }
                ha_count += 1;
            }
        }
    }

    let mut row_a = Vec::with_capacity(width);
    let mut row_b = Vec::with_capacity(width);
    let mut final_input_arrival = 0.0f64;
    for column in &working {
        for item in column {
            final_input_arrival = final_input_arrival.max(item.arrival);
        }
        row_a.push(
            column
                .first()
                .map(|item| item.net)
                .unwrap_or_else(|| netlist.constant(false)),
        );
        row_b.push(
            column
                .get(1)
                .map(|item| item.net)
                .unwrap_or_else(|| netlist.constant(false)),
        );
    }
    Ok(ReducedRows {
        row_a,
        row_b,
        fa_count,
        ha_count,
        final_input_arrival,
        tree_switching_energy,
    })
}

fn bump(order: &mut usize) -> usize {
    *order += 1;
    *order
}

/// Removes and returns `count` items from `items` according to the strategy.
fn select(
    items: &mut Vec<WorkItem>,
    count: usize,
    strategy: SelectionStrategy,
    mut rng: Option<&mut SmallRng>,
) -> Vec<WorkItem> {
    let mut picked = Vec::with_capacity(count);
    for _ in 0..count {
        let index = match strategy {
            SelectionStrategy::EarliestArrival => items
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.arrival
                        .total_cmp(&b.1.arrival)
                        // Tie-break on the largest |q| (the paper's combined rule) ...
                        .then_with(|| {
                            (b.1.probability - 0.5)
                                .abs()
                                .total_cmp(&(a.1.probability - 0.5).abs())
                        })
                        // ... and finally on insertion order for determinism.
                        .then_with(|| a.1.order.cmp(&b.1.order))
                })
                .map(|(index, _)| index)
                .expect("caller guarantees enough items"),
            SelectionStrategy::LargestDeviation => items
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    (a.1.probability - 0.5)
                        .abs()
                        .total_cmp(&(b.1.probability - 0.5).abs())
                        .then_with(|| b.1.arrival.total_cmp(&a.1.arrival))
                        .then_with(|| b.1.order.cmp(&a.1.order))
                })
                .map(|(index, _)| index)
                .expect("caller guarantees enough items"),
            SelectionStrategy::RowOrder => items
                .iter()
                .enumerate()
                .min_by_key(|(_, item)| item.order)
                .map(|(index, _)| index)
                .expect("caller guarantees enough items"),
            SelectionStrategy::Random(_) => {
                let rng = rng.as_deref_mut().expect("random strategy has an rng");
                rng.next_index(items.len())
            }
        };
        picked.push(items.swap_remove(index));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_column(arrivals: &[f64], probabilities: &[f64]) -> (Netlist, Vec<LeafAddend>) {
        let mut netlist = Netlist::new("column");
        let leaves = arrivals
            .iter()
            .zip(probabilities.iter())
            .enumerate()
            .map(|(index, (arrival, probability))| {
                let net = netlist.add_input(format!("x{index}"));
                LeafAddend::new(net, *arrival, *probability)
            })
            .collect();
        (netlist, leaves)
    }

    #[test]
    fn earliest_arrival_matches_sc_t_estimate() {
        let arrivals = [7.0, 2.0, 3.0, 2.0, 9.0];
        let probabilities = [0.5; 5];
        let (mut netlist, leaves) = single_column(&arrivals, &probabilities);
        let lib = TechLibrary::unit();
        let rows = allocate_fa_tree(
            &mut netlist,
            vec![leaves],
            SelectionStrategy::EarliestArrival,
            &lib,
        )
        .unwrap();
        let expected = crate::schedule::sc_t(&arrivals, 2.0, 1.0, 1.0, 1.0);
        let expected_latest = expected.remaining.iter().copied().fold(0.0, f64::max);
        assert!((rows.final_input_arrival - expected_latest).abs() < 1e-9);
        assert_eq!(rows.fa_count, expected.fa_count);
        assert_eq!(rows.ha_count, expected.ha_count);
    }

    #[test]
    fn largest_deviation_matches_sc_lp_energy() {
        let probabilities = [0.1, 0.2, 0.3, 0.4, 0.5, 0.9];
        let arrivals = [0.0; 6];
        let (mut netlist, leaves) = single_column(&arrivals, &probabilities);
        let lib = TechLibrary::unit();
        let rows = allocate_fa_tree(
            &mut netlist,
            vec![leaves],
            SelectionStrategy::LargestDeviation,
            &lib,
        )
        .unwrap();
        let expected = crate::schedule::sc_lp(&probabilities, 1.0, 1.0, 1.0, 1.0);
        assert!((rows.tree_switching_energy - expected.switching_energy).abs() < 1e-9);
        assert_eq!(rows.fa_count, expected.fa_count);
    }

    #[test]
    fn carries_flow_into_the_next_column() {
        // Two columns of three addends each: the FA of column 0 sends a carry into
        // column 1, which then has four addends and needs reduction too.
        let mut netlist = Netlist::new("two_columns");
        let make = |netlist: &mut Netlist, name: &str| {
            let net = netlist.add_input(name.to_string());
            LeafAddend::new(net, 0.0, 0.5)
        };
        let column0 = vec![
            make(&mut netlist, "a0"),
            make(&mut netlist, "b0"),
            make(&mut netlist, "c0"),
            make(&mut netlist, "d0"),
        ];
        let column1 = vec![
            make(&mut netlist, "a1"),
            make(&mut netlist, "b1"),
            make(&mut netlist, "c1"),
        ];
        let lib = TechLibrary::unit();
        let rows = allocate_fa_tree(
            &mut netlist,
            vec![column0, column1],
            SelectionStrategy::EarliestArrival,
            &lib,
        )
        .unwrap();
        // Column 0: 4 addends -> 1 FA. Column 1: 3 addends + 1 carry = 4 -> 1 FA.
        assert_eq!(rows.fa_count, 2);
        assert_eq!(rows.ha_count, 0);
        assert_eq!(rows.row_a.len(), 2);
        assert!(netlist.validate().is_ok());
    }

    #[test]
    fn carries_out_of_the_last_column_are_dropped() {
        let mut netlist = Netlist::new("truncate");
        let leaves: Vec<LeafAddend> = (0..5)
            .map(|index| {
                let net = netlist.add_input(format!("x{index}"));
                LeafAddend::new(net, 0.0, 0.5)
            })
            .collect();
        let lib = TechLibrary::unit();
        let rows = allocate_fa_tree(
            &mut netlist,
            vec![leaves],
            SelectionStrategy::EarliestArrival,
            &lib,
        )
        .unwrap();
        assert_eq!(rows.row_a.len(), 1);
        assert_eq!(rows.row_b.len(), 1);
        // One FA and one HA for five addends, with the carries simply unconnected.
        assert_eq!(rows.fa_count, 1);
        assert_eq!(rows.ha_count, 1);
    }

    #[test]
    fn empty_columns_yield_constant_rows() {
        let mut netlist = Netlist::new("empty");
        let lib = TechLibrary::unit();
        let rows = allocate_fa_tree(
            &mut netlist,
            vec![Vec::new(), Vec::new()],
            SelectionStrategy::EarliestArrival,
            &lib,
        )
        .unwrap();
        assert_eq!(rows.fa_count, 0);
        assert_eq!(rows.row_a.len(), 2);
        assert_eq!(rows.row_a[0], rows.row_b[0]);
        assert_eq!(rows.final_input_arrival, 0.0);
    }

    #[test]
    fn all_strategies_allocate_the_same_number_of_adders() {
        // Different selections change *which* addends feed each adder, never how many
        // adders are needed — a structural invariant worth pinning down.
        let arrivals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let probabilities = [0.1, 0.9, 0.4, 0.6, 0.3, 0.7, 0.5];
        let lib = TechLibrary::unit();
        let mut counts = Vec::new();
        for strategy in [
            SelectionStrategy::EarliestArrival,
            SelectionStrategy::LargestDeviation,
            SelectionStrategy::RowOrder,
            SelectionStrategy::Random(7),
        ] {
            let (mut netlist, leaves) = single_column(&arrivals, &probabilities);
            let rows = allocate_fa_tree(&mut netlist, vec![leaves], strategy, &lib).unwrap();
            counts.push((rows.fa_count, rows.ha_count));
        }
        assert!(counts.windows(2).all(|pair| pair[0] == pair[1]));
    }

    #[test]
    fn random_strategy_is_reproducible() {
        let arrivals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let probabilities = [0.5; 6];
        let lib = TechLibrary::unit();
        let run = |seed: u64| {
            let (mut netlist, leaves) = single_column(&arrivals, &probabilities);
            let rows = allocate_fa_tree(
                &mut netlist,
                vec![leaves],
                SelectionStrategy::Random(seed),
                &lib,
            )
            .unwrap();
            rows.final_input_arrival
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn earliest_arrival_never_loses_to_row_order_on_final_arrival() {
        // Sanity version of Theorem 1: over a bundle of pseudo-random single-column
        // profiles, the timing-driven selection's estimated final arrival is never worse
        // than the fixed row-order selection's.
        let lib = TechLibrary::unit();
        for seed in 0..25u64 {
            let mut rng = SmallRng::new(seed + 1);
            let size = 4 + rng.next_index(8);
            let arrivals: Vec<f64> = (0..size).map(|_| rng.next_index(12) as f64).collect();
            let probabilities = vec![0.5; size];
            let run = |strategy: SelectionStrategy| {
                let (mut netlist, leaves) = single_column(&arrivals, &probabilities);
                allocate_fa_tree(&mut netlist, vec![leaves], strategy, &lib)
                    .unwrap()
                    .final_input_arrival
            };
            let optimal = run(SelectionStrategy::EarliestArrival);
            let fixed = run(SelectionStrategy::RowOrder);
            let random = run(SelectionStrategy::Random(seed));
            assert!(optimal <= fixed + 1e-9, "seed {seed}: {optimal} vs {fixed}");
            assert!(
                optimal <= random + 1e-9,
                "seed {seed}: {optimal} vs {random}"
            );
        }
    }
}
