//! Fine-grained carry-save FA-tree allocation for timing- and power-driven datapath
//! synthesis.
//!
//! This crate is the primary contribution of the reproduction of Um, Kim and Liu,
//! *"A Fine-Grained Arithmetic Optimization Technique for High-Performance/Low-Power
//! Data Path Synthesis"* (DAC 2000). It turns an arbitrary arithmetic expression
//! (additions, subtractions, multiplications) into a single global bit-level
//! carry-save addition structure — an *FA-tree* — plus one final carry-propagating
//! adder, choosing the inputs of every full adder according to the optimisation
//! objective:
//!
//! * **FA_AOT** (*FA-tree Allocation for Optimal Timing*): in every bit column the three
//!   addends with the **earliest arrival times** feed the next full adder ([`sc_t`]
//!   within a column, [`Objective::Timing`] end to end). Theorem 1 of the paper shows
//!   this is delay-optimal; the property tests of this crate check it against exhaustive
//!   and randomised alternatives.
//! * **FA_ALP** (*FA-tree Allocation for Low Power*): the three addends with the
//!   **largest probability deviation** `|q| = |p − 0.5|` are selected instead
//!   ([`sc_lp`], [`Objective::Power`]), minimising the total switching activity of the
//!   tree under the paper's zero-delay power model.
//!
//! The high-level entry point is [`Synthesizer`]:
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_core::{Objective, Synthesizer};
//! use dpsyn_ir::{parse_expr, InputSpec};
//! use dpsyn_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let expr = parse_expr("x*x + x + y")?;
//! let spec = InputSpec::builder()
//!     .var("x", 8)
//!     .var_with_arrival("y", 8, 0.7)
//!     .build()?;
//! let lib = TechLibrary::lcbg10pv_like();
//! let design = Synthesizer::new(&expr, &spec)
//!     .objective(Objective::Timing)
//!     .technology(&lib)
//!     .run()?;
//! println!("critical delay {:.2} ns, area {:.0} units",
//!          design.report().delay, design.report().area);
//! assert!(design.report().delay > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod error;
mod final_adder;
mod leaves;
mod report;
mod schedule;
mod strategy;
mod synthesizer;

pub use allocation::{allocate_fa_tree, LeafAddend, ReducedRows};
pub use error::SynthesisError;
pub use final_adder::FinalAdderKind;
pub use report::SynthesisReport;
pub use schedule::{sc_lp, sc_t, ColumnOutcome};
pub use strategy::{Objective, SelectionStrategy};
pub use synthesizer::{SynthesizedDesign, Synthesizer};

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::{parse_expr, InputSpec};
    use dpsyn_tech::TechLibrary;

    #[test]
    fn crate_level_example_runs() {
        let expr = parse_expr("a*b + c").unwrap();
        let spec = InputSpec::builder()
            .var("a", 4)
            .var("b", 4)
            .var("c", 4)
            .build()
            .unwrap();
        let lib = TechLibrary::unit();
        let design = Synthesizer::new(&expr, &spec)
            .objective(Objective::Timing)
            .technology(&lib)
            .run()
            .unwrap();
        assert!(design.netlist().cell_count() > 0);
        assert!(design.report().delay > 0.0);
        assert!(design.report().area > 0.0);
    }
}
