//! Error type for the synthesis engine.

use std::error::Error;
use std::fmt;

/// Errors produced while synthesizing an expression into an FA-tree netlist.
#[derive(Debug)]
pub enum SynthesisError {
    /// Lowering the expression to the addend matrix failed.
    Ir(dpsyn_ir::IrError),
    /// Building the netlist failed.
    Netlist(dpsyn_netlist::NetlistError),
    /// Static timing analysis of the result failed.
    Timing(dpsyn_timing::TimingError),
    /// Power analysis of the result failed.
    Power(dpsyn_power::PowerError),
    /// The technology library does not cover a required cell.
    Tech(dpsyn_tech::TechError),
    /// The expression lowered to an empty addend matrix and there is nothing to build.
    EmptyExpression,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Ir(error) => write!(f, "expression lowering failed: {error}"),
            SynthesisError::Netlist(error) => write!(f, "netlist construction failed: {error}"),
            SynthesisError::Timing(error) => write!(f, "timing analysis failed: {error}"),
            SynthesisError::Power(error) => write!(f, "power analysis failed: {error}"),
            SynthesisError::Tech(error) => write!(f, "technology library problem: {error}"),
            SynthesisError::EmptyExpression => {
                write!(
                    f,
                    "the expression reduces to the constant zero; nothing to synthesize"
                )
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Ir(error) => Some(error),
            SynthesisError::Netlist(error) => Some(error),
            SynthesisError::Timing(error) => Some(error),
            SynthesisError::Power(error) => Some(error),
            SynthesisError::Tech(error) => Some(error),
            SynthesisError::EmptyExpression => None,
        }
    }
}

impl From<dpsyn_ir::IrError> for SynthesisError {
    fn from(error: dpsyn_ir::IrError) -> Self {
        SynthesisError::Ir(error)
    }
}

impl From<dpsyn_netlist::NetlistError> for SynthesisError {
    fn from(error: dpsyn_netlist::NetlistError) -> Self {
        SynthesisError::Netlist(error)
    }
}

impl From<dpsyn_timing::TimingError> for SynthesisError {
    fn from(error: dpsyn_timing::TimingError) -> Self {
        SynthesisError::Timing(error)
    }
}

impl From<dpsyn_power::PowerError> for SynthesisError {
    fn from(error: dpsyn_power::PowerError) -> Self {
        SynthesisError::Power(error)
    }
}

impl From<dpsyn_tech::TechError> for SynthesisError {
    fn from(error: dpsyn_tech::TechError) -> Self {
        SynthesisError::Tech(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let error = SynthesisError::EmptyExpression;
        assert!(error.to_string().contains("constant zero"));
        assert!(error.source().is_none());
        let error = SynthesisError::Ir(dpsyn_ir::IrError::UnknownVariable("ghost".to_string()));
        assert!(error.to_string().contains("ghost"));
        assert!(error.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }
}
