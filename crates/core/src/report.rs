//! Synthesis reports: the delay / area / power summary of one synthesized design.

use crate::strategy::{Objective, SelectionStrategy};
use std::fmt;

/// Quality-of-results summary of one synthesized design.
///
/// Delay comes from static timing analysis with the design's input arrival profile,
/// area is the summed cell area, and the switching energy / power figures come from the
/// analytic probability propagation with the design's input probabilities — i.e. the
/// same three quantities the paper's Tables 1 and 2 report.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Name of the design.
    pub name: String,
    /// The objective the design was synthesized for.
    pub objective: Objective,
    /// The selection strategy actually used.
    pub strategy: SelectionStrategy,
    /// Critical delay in library time units (ns for the built-in libraries).
    pub delay: f64,
    /// Total cell area in library area units.
    pub area: f64,
    /// Weighted switching energy `Σ W·p(1−p)` over every cell output.
    pub switching_energy: f64,
    /// Power figure on the milliwatt-like scale of the paper's Table 2.
    pub power_mw: f64,
    /// Number of full adders in the carry-save tree (excluding the final adder).
    pub tree_fa_count: usize,
    /// Number of half adders in the carry-save tree (excluding the final adder).
    pub tree_ha_count: usize,
    /// Estimated latest arrival among the final-adder inputs (the paper's modified
    /// objective of Section 3.3).
    pub final_input_arrival: f64,
    /// Total cell count of the netlist.
    pub cell_count: usize,
    /// Total net count of the netlist.
    pub net_count: usize,
    /// Structural logic depth (cells on the longest path).
    pub logic_depth: usize,
    /// Output width in bits.
    pub output_width: u32,
}

impl SynthesisReport {
    /// Delay improvement of this design over `baseline`, as a fraction
    /// (`0.25` = 25 % faster). Negative when this design is slower.
    pub fn delay_improvement_over(&self, baseline: &SynthesisReport) -> f64 {
        if baseline.delay == 0.0 {
            0.0
        } else {
            (baseline.delay - self.delay) / baseline.delay
        }
    }

    /// Area improvement of this design over `baseline`, as a fraction.
    pub fn area_improvement_over(&self, baseline: &SynthesisReport) -> f64 {
        if baseline.area == 0.0 {
            0.0
        } else {
            (baseline.area - self.area) / baseline.area
        }
    }

    /// Switching-energy improvement of this design over `baseline`, as a fraction.
    pub fn power_improvement_over(&self, baseline: &SynthesisReport) -> f64 {
        if baseline.switching_energy == 0.0 {
            0.0
        } else {
            (baseline.switching_energy - self.switching_energy) / baseline.switching_energy
        }
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design `{}` ({} objective, {} selection)",
            self.name, self.objective, self.strategy
        )?;
        writeln!(f, "  delay          : {:.3} ns", self.delay)?;
        writeln!(f, "  area           : {:.1} units", self.area)?;
        writeln!(f, "  switching      : {:.4}", self.switching_energy)?;
        writeln!(f, "  power (scaled) : {:.2} mW", self.power_mw)?;
        writeln!(
            f,
            "  csa tree       : {} FAs, {} HAs, final-adder inputs ready at {:.3} ns",
            self.tree_fa_count, self.tree_ha_count, self.final_input_arrival
        )?;
        writeln!(
            f,
            "  netlist        : {} cells, {} nets, depth {}, {} output bits",
            self.cell_count, self.net_count, self.logic_depth, self.output_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(delay: f64, area: f64, energy: f64) -> SynthesisReport {
        SynthesisReport {
            name: "test".to_string(),
            objective: Objective::Timing,
            strategy: SelectionStrategy::EarliestArrival,
            delay,
            area,
            switching_energy: energy,
            power_mw: energy * 10.0,
            tree_fa_count: 4,
            tree_ha_count: 1,
            final_input_arrival: delay * 0.8,
            cell_count: 10,
            net_count: 20,
            logic_depth: 5,
            output_width: 8,
        }
    }

    #[test]
    fn improvements_are_fractions_of_the_baseline() {
        let ours = report(3.0, 80.0, 1.0);
        let baseline = report(4.0, 100.0, 2.0);
        assert!((ours.delay_improvement_over(&baseline) - 0.25).abs() < 1e-12);
        assert!((ours.area_improvement_over(&baseline) - 0.2).abs() < 1e-12);
        assert!((ours.power_improvement_over(&baseline) - 0.5).abs() < 1e-12);
        // Degradation shows up as a negative improvement.
        assert!(baseline.delay_improvement_over(&ours) < 0.0);
    }

    #[test]
    fn zero_baselines_do_not_divide_by_zero() {
        let ours = report(3.0, 80.0, 1.0);
        let degenerate = report(0.0, 0.0, 0.0);
        assert_eq!(ours.delay_improvement_over(&degenerate), 0.0);
        assert_eq!(ours.area_improvement_over(&degenerate), 0.0);
        assert_eq!(ours.power_improvement_over(&degenerate), 0.0);
    }

    #[test]
    fn display_mentions_the_key_figures() {
        let text = report(3.0, 80.0, 1.0).to_string();
        assert!(text.contains("delay"));
        assert!(text.contains("3.000"));
        assert!(text.contains("80.0"));
        assert!(text.contains("FAs"));
    }
}
