//! Leaf-addend construction: primary inputs, partial-product AND networks and constant
//! addends, annotated with the arrival times and probabilities the selection strategies
//! need.

use crate::allocation::LeafAddend;
use dpsyn_ir::{Addend, AddendMatrix, BitRef, InputSpec};
use dpsyn_netlist::{CellKind, NetId, Netlist, NetlistError, Word};
use dpsyn_tech::TechLibrary;
use std::collections::BTreeMap;

/// The leaf structures of a synthesized design: the per-column leaf addends and the
/// input words created for the primary inputs.
#[derive(Debug, Clone)]
pub(crate) struct Leaves {
    pub(crate) columns: Vec<Vec<LeafAddend>>,
    pub(crate) input_words: Vec<Word>,
}

/// Builds the primary inputs and the addend-generation logic (partial-product AND trees,
/// inverters for complemented addends, constant sources) for every addend of `matrix`.
///
/// Identical products appearing in several columns (as happens whenever a coefficient
/// has more than one set bit) share a single generation network.
pub(crate) fn build_leaves(
    netlist: &mut Netlist,
    matrix: &AddendMatrix,
    spec: &InputSpec,
    tech: &TechLibrary,
) -> Result<Leaves, NetlistError> {
    // Primary inputs: one net per bit of every declared variable.
    let mut bit_nets: BTreeMap<BitRef, NetId> = BTreeMap::new();
    let mut input_words = Vec::new();
    for var in spec.vars() {
        let bits: Vec<NetId> = (0..var.width())
            .map(|bit| {
                let net = netlist.add_input(format!("{}[{}]", var.name(), bit));
                bit_nets.insert(BitRef::new(var.name(), bit), net);
                net
            })
            .collect();
        input_words.push(Word::new(var.name(), bits));
    }

    // Shared generation networks, keyed by the (sorted) literal set and complement flag.
    let mut cache: BTreeMap<(Vec<BitRef>, bool), LeafAddend> = BTreeMap::new();
    let mut columns: Vec<Vec<LeafAddend>> = vec![Vec::new(); matrix.width() as usize];
    for (column, addends) in matrix.columns() {
        for addend in addends {
            let leaf = match addend {
                Addend::One => LeafAddend::new(netlist.constant(true), 0.0, 1.0),
                Addend::Product {
                    literals,
                    complement,
                } => {
                    let key = (literals.clone(), *complement);
                    if let Some(existing) = cache.get(&key) {
                        existing.clone()
                    } else {
                        let leaf =
                            build_product(netlist, literals, *complement, spec, tech, &bit_nets)?;
                        cache.insert(key, leaf.clone());
                        leaf
                    }
                }
            };
            columns[column as usize].push(leaf);
        }
    }
    Ok(Leaves {
        columns,
        input_words,
    })
}

/// Builds the AND tree (plus optional output inverter) of one product addend and
/// annotates it with its estimated arrival time and probability.
fn build_product(
    netlist: &mut Netlist,
    literals: &[BitRef],
    complement: bool,
    spec: &InputSpec,
    tech: &TechLibrary,
    bit_nets: &BTreeMap<BitRef, NetId>,
) -> Result<LeafAddend, NetlistError> {
    let nets: Vec<NetId> = literals
        .iter()
        .map(|literal| {
            bit_nets
                .get(literal)
                .copied()
                .expect("lowering validated every literal against the input spec")
        })
        .collect();
    let mut arrival = literals
        .iter()
        .filter_map(|literal| spec.bit_profile(&literal.var, literal.bit))
        .map(|profile| profile.arrival)
        .fold(0.0, f64::max);
    let mut probability: f64 = literals
        .iter()
        .map(|literal| {
            spec.bit_profile(&literal.var, literal.bit)
                .map(|profile| profile.probability)
                .unwrap_or(0.5)
        })
        .product();
    // Balanced AND tree over the literal nets.
    let mut level = nets;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(netlist.add_gate(CellKind::And2, &[pair[0], pair[1]])?[0]);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    arrival += tech.and_tree_delay(literals.len());
    let mut net = level[0];
    if complement {
        net = netlist.add_gate(CellKind::Not, &[net])?[0];
        arrival += tech.output_delay(CellKind::Not, 0);
        probability = 1.0 - probability;
    }
    Ok(LeafAddend::new(net, arrival, probability))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::{parse_expr, LoweringOptions};

    fn lower(source: &str, spec: &InputSpec, width: u32) -> AddendMatrix {
        parse_expr(source)
            .unwrap()
            .lower(spec, &LoweringOptions::with_width(width))
            .unwrap()
    }

    #[test]
    fn plain_addition_creates_no_generation_gates() {
        let spec = InputSpec::builder()
            .var("x", 3)
            .var("y", 3)
            .build()
            .unwrap();
        let matrix = lower("x + y", &spec, 4);
        let mut netlist = Netlist::new("leaves");
        let lib = TechLibrary::unit();
        let leaves = build_leaves(&mut netlist, &matrix, &spec, &lib).unwrap();
        assert_eq!(leaves.input_words.len(), 2);
        assert_eq!(netlist.count_kind(CellKind::And2), 0);
        assert_eq!(leaves.columns[0].len(), 2);
    }

    #[test]
    fn partial_products_share_generation_logic_across_columns() {
        // 3·x·y: the same x_i·y_j product feeds two columns (coefficient bits 0 and 1)
        // but must be generated only once.
        let spec = InputSpec::builder()
            .var("x", 2)
            .var("y", 2)
            .build()
            .unwrap();
        let matrix = lower("3*x*y", &spec, 6);
        let mut netlist = Netlist::new("leaves");
        let lib = TechLibrary::unit();
        let leaves = build_leaves(&mut netlist, &matrix, &spec, &lib).unwrap();
        // Four distinct x_i·y_j products -> exactly four AND gates despite eight
        // matrix addends.
        assert_eq!(netlist.count_kind(CellKind::And2), 4);
        let total: usize = leaves.columns.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn complemented_addends_get_an_inverter_and_flipped_probability() {
        let spec = InputSpec::builder()
            .var_with_probability("x", 2, 0.9)
            .var_with_probability("y", 2, 0.9)
            .build()
            .unwrap();
        let matrix = lower("x - y", &spec, 3);
        let mut netlist = Netlist::new("leaves");
        let lib = TechLibrary::unit();
        let leaves = build_leaves(&mut netlist, &matrix, &spec, &lib).unwrap();
        assert_eq!(netlist.count_kind(CellKind::Not), 2);
        let complemented: Vec<&LeafAddend> = leaves
            .columns
            .iter()
            .flatten()
            .filter(|leaf| (leaf.probability - 0.1).abs() < 1e-9)
            .collect();
        assert_eq!(complemented.len(), 2);
    }

    #[test]
    fn arrival_estimates_include_generation_delay() {
        let spec = InputSpec::builder()
            .var_with_arrival("x", 2, 1.0)
            .var_with_arrival("y", 2, 3.0)
            .build()
            .unwrap();
        let matrix = lower("x * y", &spec, 4);
        let mut netlist = Netlist::new("leaves");
        let lib = TechLibrary::lcbg10pv_like();
        let leaves = build_leaves(&mut netlist, &matrix, &spec, &lib).unwrap();
        let and_delay = lib.and_tree_delay(2);
        for leaf in leaves.columns.iter().flatten() {
            assert!((leaf.arrival - (3.0 + and_delay)).abs() < 1e-9);
            assert!((leaf.probability - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_addends_are_constant_one_nets() {
        let spec = InputSpec::builder().var("x", 2).build().unwrap();
        let matrix = lower("x + 5", &spec, 4);
        let mut netlist = Netlist::new("leaves");
        let lib = TechLibrary::unit();
        let leaves = build_leaves(&mut netlist, &matrix, &spec, &lib).unwrap();
        let constants: usize = leaves
            .columns
            .iter()
            .flatten()
            .filter(|leaf| leaf.probability == 1.0)
            .count();
        assert_eq!(constants, 2); // bits 0 and 2 of the constant 5
        assert_eq!(netlist.count_kind(CellKind::Const1), 1);
    }
}
