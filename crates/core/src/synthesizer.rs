//! The high-level synthesis entry point.

use crate::allocation::allocate_fa_tree;
use crate::error::SynthesisError;
use crate::final_adder::FinalAdderKind;
use crate::leaves::build_leaves;
use crate::report::SynthesisReport;
use crate::strategy::{Objective, SelectionStrategy};
use dpsyn_ir::{Expr, InputSpec, LoweringOptions};
use dpsyn_netlist::{CompiledNetlist, Netlist, Word, WordMap};
use dpsyn_power::ProbabilityAnalysis;
use dpsyn_tech::TechLibrary;
use dpsyn_timing::TimingAnalysis;
use std::collections::BTreeMap;

/// Builder-style front end for the whole synthesis flow: expression → addend matrix →
/// FA-tree → final adder → analysed netlist.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Synthesizer<'a> {
    expr: &'a Expr,
    spec: &'a InputSpec,
    tech: Option<&'a TechLibrary>,
    objective: Objective,
    strategy: Option<SelectionStrategy>,
    final_adder: FinalAdderKind,
    width: Option<u32>,
    csd: bool,
    name: String,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer for `expr` under the input characteristics of `spec`.
    pub fn new(expr: &'a Expr, spec: &'a InputSpec) -> Self {
        Synthesizer {
            expr,
            spec,
            tech: None,
            objective: Objective::Timing,
            strategy: None,
            final_adder: FinalAdderKind::default(),
            width: None,
            csd: false,
            name: "datapath".to_string(),
        }
    }

    /// Sets the optimisation objective (default: [`Objective::Timing`]).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the addend-selection strategy (default: the objective's strategy).
    ///
    /// This is how the baseline strategies (fixed row order, random selection) reuse the
    /// same engine.
    pub fn strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Sets the technology library (default: [`TechLibrary::lcbg10pv_like`]).
    pub fn technology(mut self, tech: &'a TechLibrary) -> Self {
        self.tech = Some(tech);
        self
    }

    /// Sets the final-adder architecture (default: carry-lookahead).
    pub fn final_adder(mut self, kind: FinalAdderKind) -> Self {
        self.final_adder = kind;
        self
    }

    /// Sets an explicit output width; the result is computed modulo `2^width`.
    /// Without it a width wide enough for the positive part of the expression is
    /// inferred.
    pub fn output_width(mut self, width: u32) -> Self {
        self.width = Some(width);
        self
    }

    /// Enables canonical-signed-digit recoding of constant coefficients.
    pub fn csd_constants(mut self, enable: bool) -> Self {
        self.csd = enable;
        self
    }

    /// Sets the module name of the generated netlist (default `"datapath"`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Runs the full flow and returns the synthesized, analysed design.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] when lowering fails (unknown variable, bad width),
    /// when the expression reduces to the constant zero, or when any downstream
    /// analysis fails.
    pub fn run(&self) -> Result<SynthesizedDesign, SynthesisError> {
        let default_tech;
        let tech = match self.tech {
            Some(tech) => tech,
            None => {
                default_tech = TechLibrary::lcbg10pv_like();
                &default_tech
            }
        };
        let mut options = match self.width {
            Some(width) => LoweringOptions::with_width(width),
            None => LoweringOptions::new(),
        };
        options = options.csd_constants(self.csd);
        let matrix = self.expr.lower(self.spec, &options)?;
        if matrix.total_addends() == 0 {
            return Err(SynthesisError::EmptyExpression);
        }
        let width = matrix.width();
        let strategy = self
            .strategy
            .unwrap_or_else(|| self.objective.default_strategy());

        let mut netlist = Netlist::new(self.name.clone());
        let leaves = build_leaves(&mut netlist, &matrix, self.spec, tech)?;
        let rows = allocate_fa_tree(&mut netlist, leaves.columns, strategy, tech)?;
        let outputs =
            self.final_adder
                .build(&mut netlist, &rows.row_a, &rows.row_b, width as usize)?;
        for (bit, net) in outputs.iter().enumerate() {
            netlist.set_net_name(*net, format!("out[{bit}]"));
            netlist.mark_output(*net);
        }
        let word_map = WordMap::new(leaves.input_words, Word::new("out", outputs));
        netlist.validate_structure()?;
        // Compile once: the same levelized program backs validation (acyclicity),
        // timing, power, area and the structural report fields below.
        let compiled = netlist.compile()?;

        // Static timing analysis with the spec's per-bit arrival profile.
        let mut arrivals = BTreeMap::new();
        let mut probabilities = BTreeMap::new();
        for word in word_map.inputs() {
            for (bit, net) in word.bits().iter().enumerate() {
                if let Some(profile) = self.spec.bit_profile(word.name(), bit as u32) {
                    arrivals.insert(*net, profile.arrival);
                    probabilities.insert(*net, profile.probability);
                }
            }
        }
        let timing = TimingAnalysis::new(tech)
            .with_input_arrivals(arrivals)
            .run_compiled(&compiled)?;
        let power = ProbabilityAnalysis::new(tech)
            .with_input_probabilities(probabilities)
            .run_compiled(&compiled)?;
        let area = tech.compiled_area(&compiled);
        let report = SynthesisReport {
            name: self.name.clone(),
            objective: self.objective,
            strategy,
            delay: timing.critical_delay(),
            area,
            switching_energy: power.total_energy(),
            power_mw: power.power_mw(),
            tree_fa_count: rows.fa_count,
            tree_ha_count: rows.ha_count,
            final_input_arrival: rows.final_input_arrival,
            cell_count: compiled.cell_count(),
            net_count: compiled.net_count(),
            logic_depth: compiled.level_count(),
            output_width: width,
        };
        Ok(SynthesizedDesign {
            netlist,
            word_map,
            compiled,
            report,
            width,
        })
    }
}

/// A synthesized and analysed design: the netlist, its word-level interface, its
/// compiled analysis program and its quality-of-results report.
#[derive(Debug, Clone)]
pub struct SynthesizedDesign {
    netlist: Netlist,
    word_map: WordMap,
    compiled: CompiledNetlist,
    report: SynthesisReport,
    width: u32,
}

impl SynthesizedDesign {
    /// The synthesized bit-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The word-level interface (input words and the output word).
    pub fn word_map(&self) -> &WordMap {
        &self.word_map
    }

    /// The compiled analysis program of the netlist, built once during synthesis.
    /// Hand this to `LaneSim::from_compiled`, `TimingAnalysis::run_compiled` or
    /// `ProbabilityAnalysis::run_compiled` to re-analyse without re-levelizing.
    pub fn compiled(&self) -> &CompiledNetlist {
        &self.compiled
    }

    /// The quality-of-results report.
    pub fn report(&self) -> &SynthesisReport {
        &self.report
    }

    /// The output width in bits.
    pub fn output_width(&self) -> u32 {
        self.width
    }

    /// Emits the design as structural Verilog (the paper's output format).
    pub fn to_verilog(&self) -> String {
        self.netlist.to_verilog()
    }

    /// Decomposes the design into its parts (netlist, interface, report).
    pub fn into_parts(self) -> (Netlist, WordMap, SynthesisReport) {
        (self.netlist, self.word_map, self.report)
    }

    /// Like [`SynthesizedDesign::into_parts`] but also yields the compiled program,
    /// so downstream consumers (the flow layer, the explorer) keep sharing it.
    pub fn into_analysis_parts(self) -> (Netlist, WordMap, CompiledNetlist, SynthesisReport) {
        (self.netlist, self.word_map, self.compiled, self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::parse_expr;
    use dpsyn_sim::check_equivalence;

    fn spec_xyz() -> InputSpec {
        InputSpec::builder()
            .var("x", 3)
            .var("y", 3)
            .var("z", 3)
            .build()
            .unwrap()
    }

    fn check(source: &str, spec: &InputSpec, width: u32, objective: Objective) {
        let expr = parse_expr(source).unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let design = Synthesizer::new(&expr, spec)
            .objective(objective)
            .technology(&lib)
            .output_width(width)
            .run()
            .unwrap();
        design.netlist().validate().unwrap();
        check_equivalence(
            design.netlist(),
            design.word_map(),
            &expr,
            spec,
            width,
            256,
            17,
        )
        .unwrap();
    }

    #[test]
    fn timing_designs_are_functionally_correct() {
        let spec = spec_xyz();
        check("x + y + z", &spec, 5, Objective::Timing);
        check("x*y + z", &spec, 7, Objective::Timing);
        check("x + y - z + x*y - y*z + 10", &spec, 8, Objective::Timing);
        check("x*x + 2*x + 1", &spec, 8, Objective::Timing);
    }

    #[test]
    fn power_designs_are_functionally_correct() {
        let spec = spec_xyz();
        check("x*y + y*z + x", &spec, 8, Objective::Power);
        check("x - y + 21", &spec, 6, Objective::Power);
    }

    #[test]
    fn every_final_adder_kind_preserves_function() {
        let expr = parse_expr("x*y + z").unwrap();
        let spec = spec_xyz();
        let lib = TechLibrary::unit();
        for kind in FinalAdderKind::all() {
            let design = Synthesizer::new(&expr, &spec)
                .technology(&lib)
                .final_adder(kind)
                .output_width(7)
                .run()
                .unwrap();
            check_equivalence(design.netlist(), design.word_map(), &expr, &spec, 7, 128, 3)
                .unwrap();
        }
    }

    #[test]
    fn every_strategy_preserves_function() {
        let expr = parse_expr("x*y - z + 5").unwrap();
        let spec = spec_xyz();
        let lib = TechLibrary::unit();
        for strategy in [
            SelectionStrategy::EarliestArrival,
            SelectionStrategy::LargestDeviation,
            SelectionStrategy::RowOrder,
            SelectionStrategy::Random(5),
        ] {
            let design = Synthesizer::new(&expr, &spec)
                .technology(&lib)
                .strategy(strategy)
                .output_width(7)
                .run()
                .unwrap();
            check_equivalence(design.netlist(), design.word_map(), &expr, &spec, 7, 128, 3)
                .unwrap();
        }
    }

    #[test]
    fn timing_objective_beats_fixed_selection_under_skewed_arrivals() {
        // One late-arriving input: the timing-driven tree should finish earlier than the
        // fixed row-order tree, as in Figure 2.
        let expr = parse_expr("a + b + c + d + e + f").unwrap();
        let spec = InputSpec::builder()
            .var("a", 8)
            .var("b", 8)
            .var("c", 8)
            .var("d", 8)
            .var("e", 8)
            .var_with_arrival("f", 8, 3.0)
            .build()
            .unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let timing = Synthesizer::new(&expr, &spec)
            .technology(&lib)
            .objective(Objective::Timing)
            .run()
            .unwrap();
        let fixed = Synthesizer::new(&expr, &spec)
            .technology(&lib)
            .strategy(SelectionStrategy::RowOrder)
            .run()
            .unwrap();
        assert!(
            timing.report().delay <= fixed.report().delay + 1e-9,
            "timing {} vs fixed {}",
            timing.report().delay,
            fixed.report().delay
        );
    }

    #[test]
    fn power_objective_beats_random_selection_for_skewed_probabilities() {
        let expr = parse_expr("a + b + c + d + e + f").unwrap();
        let spec = InputSpec::builder()
            .var_with_probability("a", 8, 0.05)
            .var_with_probability("b", 8, 0.9)
            .var_with_probability("c", 8, 0.5)
            .var_with_probability("d", 8, 0.2)
            .var_with_probability("e", 8, 0.8)
            .var_with_probability("f", 8, 0.35)
            .build()
            .unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let low_power = Synthesizer::new(&expr, &spec)
            .technology(&lib)
            .objective(Objective::Power)
            .run()
            .unwrap();
        // Compare against the average of several random selections (the paper's
        // FA_random reference).
        let mut random_total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let random = Synthesizer::new(&expr, &spec)
                .technology(&lib)
                .strategy(SelectionStrategy::Random(seed))
                .run()
                .unwrap();
            random_total += random.report().switching_energy;
        }
        let random_average = random_total / runs as f64;
        assert!(
            low_power.report().switching_energy <= random_average,
            "low power {} vs random average {}",
            low_power.report().switching_energy,
            random_average
        );
    }

    #[test]
    fn inferred_width_matches_matrix_width() {
        let expr = parse_expr("x * y").unwrap();
        let spec = InputSpec::builder()
            .var("x", 3)
            .var("y", 3)
            .build()
            .unwrap();
        let design = Synthesizer::new(&expr, &spec).run().unwrap();
        assert_eq!(design.output_width(), 6);
        assert_eq!(design.word_map().output().width(), 6);
    }

    #[test]
    fn zero_expression_is_rejected() {
        let expr = parse_expr("x - x").unwrap();
        let spec = InputSpec::builder().var("x", 3).build().unwrap();
        let result = Synthesizer::new(&expr, &spec).output_width(4).run();
        assert!(matches!(result, Err(SynthesisError::EmptyExpression)));
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let expr = parse_expr("x + ghost").unwrap();
        let spec = InputSpec::builder().var("x", 3).build().unwrap();
        let result = Synthesizer::new(&expr, &spec).run();
        assert!(matches!(result, Err(SynthesisError::Ir(_))));
    }

    #[test]
    fn verilog_output_names_the_module() {
        let expr = parse_expr("x + y").unwrap();
        let spec = InputSpec::builder()
            .var("x", 2)
            .var("y", 2)
            .build()
            .unwrap();
        let design = Synthesizer::new(&expr, &spec)
            .name("my_datapath")
            .run()
            .unwrap();
        let verilog = design.to_verilog();
        assert!(verilog.contains("module my_datapath"));
        let (netlist, map, report) = design.into_parts();
        assert_eq!(netlist.outputs().len(), map.output().width() as usize);
        assert_eq!(report.name, "my_datapath");
    }

    #[test]
    fn report_counts_match_the_netlist() {
        let expr = parse_expr("x*y + z").unwrap();
        let spec = spec_xyz();
        let lib = TechLibrary::unit();
        let design = Synthesizer::new(&expr, &spec)
            .technology(&lib)
            .output_width(7)
            .run()
            .unwrap();
        let report = design.report();
        assert_eq!(report.cell_count, design.netlist().cell_count());
        assert_eq!(report.net_count, design.netlist().net_count());
        let fa_in_netlist = design.netlist().count_kind(dpsyn_netlist::CellKind::Fa);
        // The netlist also contains the final adder's FAs (ripple blocks inside the
        // carry-lookahead default do not use FA cells, so tree FAs are a lower bound).
        assert!(fa_in_netlist >= report.tree_fa_count);
        assert!((report.area - lib.netlist_area(design.netlist())).abs() < 1e-9);
    }
}
