//! Final (carry-propagating) adder selection.

use dpsyn_modules::builders::AdderKind;
use dpsyn_netlist::{NetId, Netlist, NetlistError};
use std::fmt;

/// The architecture of the final adder placed at the root of the FA-tree.
///
/// The paper notes the final adder "can be implemented with any of several types of
/// modules"; the default here is the carry-lookahead adder, matching what a logic
/// optimiser would pick for the timing-critical root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FinalAdderKind {
    /// Ripple-carry chain (smallest, slowest).
    Ripple,
    /// Carry-lookahead adder with 4-bit blocks (default).
    #[default]
    CarryLookahead,
    /// Carry-select adder with 4-bit blocks.
    CarrySelect,
}

impl FinalAdderKind {
    /// All final-adder kinds.
    pub fn all() -> [FinalAdderKind; 3] {
        [
            FinalAdderKind::Ripple,
            FinalAdderKind::CarryLookahead,
            FinalAdderKind::CarrySelect,
        ]
    }

    /// Builds the final adder over the two reduced rows and returns exactly `width`
    /// result bits (the paper's modulo-`2^width` semantics).
    ///
    /// # Errors
    ///
    /// Returns an error if the row nets do not belong to `netlist`.
    pub fn build(
        self,
        netlist: &mut Netlist,
        row_a: &[NetId],
        row_b: &[NetId],
        width: usize,
    ) -> Result<Vec<NetId>, NetlistError> {
        let kind = match self {
            FinalAdderKind::Ripple => AdderKind::Ripple,
            FinalAdderKind::CarryLookahead => AdderKind::CarryLookahead,
            FinalAdderKind::CarrySelect => AdderKind::CarrySelect,
        };
        let mut sum = kind.generate(netlist, row_a, row_b, None)?;
        sum.truncate(width);
        while sum.len() < width {
            sum.push(netlist.constant(false));
        }
        Ok(sum)
    }
}

impl fmt::Display for FinalAdderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinalAdderKind::Ripple => write!(f, "ripple"),
            FinalAdderKind::CarryLookahead => write!(f, "carry-lookahead"),
            FinalAdderKind::CarrySelect => write!(f, "carry-select"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::{Word, WordMap};
    use dpsyn_sim::Simulator;
    use std::collections::BTreeMap;

    #[test]
    fn every_kind_adds_correctly_and_truncates() {
        for kind in FinalAdderKind::all() {
            let width = 4usize;
            let mut netlist = Netlist::new("final");
            let a: Vec<_> = (0..width)
                .map(|i| netlist.add_input(format!("a{i}")))
                .collect();
            let b: Vec<_> = (0..width)
                .map(|i| netlist.add_input(format!("b{i}")))
                .collect();
            let sum = kind.build(&mut netlist, &a, &b, width).unwrap();
            assert_eq!(sum.len(), width);
            for net in &sum {
                netlist.mark_output(*net);
            }
            let map = WordMap::new(
                vec![Word::new("a", a), Word::new("b", b)],
                Word::new("s", sum),
            );
            let simulator = Simulator::compile(&netlist).unwrap();
            for a in [0u64, 3, 9, 15] {
                for b in [0u64, 5, 12, 15] {
                    let mut values = BTreeMap::new();
                    values.insert("a".to_string(), a);
                    values.insert("b".to_string(), b);
                    assert_eq!(
                        simulator.evaluate_words(&map, &values),
                        (a + b) & 0xF,
                        "{kind} {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn default_is_carry_lookahead() {
        assert_eq!(FinalAdderKind::default(), FinalAdderKind::CarryLookahead);
        assert_eq!(FinalAdderKind::default().to_string(), "carry-lookahead");
    }
}
