//! Property-based tests for the FA-tree allocation engine: optimality of the
//! timing-driven selection, quality of the power-driven selection and functional
//! correctness under every strategy.

use dpsyn_core::{sc_lp, sc_t, Objective, SelectionStrategy, Synthesizer};
use dpsyn_ir::{parse_expr, BitProfile, InputSpec};
use dpsyn_sim::check_equivalence;
use dpsyn_tech::TechLibrary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1 (sampled): SC_T's latest remaining arrival never exceeds the latest
    /// remaining arrival of a random greedy allocation of the same column.
    #[test]
    fn sc_t_latest_arrival_is_minimal(arrivals in prop::collection::vec(0u32..30, 3..12), seed in 0u64..1000) {
        let arrivals: Vec<f64> = arrivals.into_iter().map(f64::from).collect();
        let ours = sc_t(&arrivals, 2.0, 1.0, 1.0, 1.0);
        let ours_latest = ours.remaining.iter().copied().fold(0.0, f64::max);

        // Random alternative allocation with the same FA/HA structure.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        let mut working = arrivals.clone();
        while working.len() >= 3 {
            let count = if working.len() > 3 { 3 } else { 2 };
            let mut picked = Vec::new();
            for _ in 0..count {
                picked.push(working.swap_remove(next(working.len())));
            }
            let latest = picked.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let delay = if count == 3 { 2.0 } else { 1.0 };
            working.push(latest + delay);
        }
        let other_latest = working.iter().copied().fold(0.0, f64::max);
        prop_assert!(ours_latest <= other_latest + 1e-9,
                     "SC_T {} vs random {}", ours_latest, other_latest);
    }

    /// SC_LP's accumulated switching energy never exceeds that of a random allocation
    /// by more than numerical noise ... and probabilities always stay legal.
    #[test]
    fn sc_lp_probabilities_stay_legal(probabilities in prop::collection::vec(0.0f64..=1.0, 3..12)) {
        let outcome = sc_lp(&probabilities, 1.0, 0.8, 0.6, 0.4);
        prop_assert!(outcome.remaining.len() <= 2);
        for p in outcome.remaining.iter().chain(outcome.carries.iter()) {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(p), "probability {} escaped", p);
        }
        prop_assert!(outcome.switching_energy >= 0.0);
    }

    /// End-to-end: every selection strategy produces a functionally correct netlist for
    /// random small expressions and random input profiles.
    #[test]
    fn every_strategy_is_functionally_correct(
        arrival_a in 0.0f64..4.0,
        arrival_b in 0.0f64..4.0,
        probability_c in 0.05f64..0.95,
        seed in 0u64..50,
        strategy_index in 0usize..4,
    ) {
        let expr = parse_expr("a*b + b*c - c + 9").expect("expression");
        let spec = InputSpec::builder()
            .var_with_profiles("a", vec![BitProfile::new(arrival_a, 0.5); 3])
            .var_with_profiles("b", vec![BitProfile::new(arrival_b, 0.7); 3])
            .var_with_profiles("c", vec![BitProfile::new(0.0, probability_c); 3])
            .build()
            .expect("spec");
        let strategy = [
            SelectionStrategy::EarliestArrival,
            SelectionStrategy::LargestDeviation,
            SelectionStrategy::RowOrder,
            SelectionStrategy::Random(seed),
        ][strategy_index];
        let lib = TechLibrary::lcbg10pv_like();
        let design = Synthesizer::new(&expr, &spec)
            .technology(&lib)
            .strategy(strategy)
            .output_width(8)
            .run()
            .expect("synthesis");
        check_equivalence(design.netlist(), design.word_map(), &expr, &spec, 8, 64, seed)
            .expect("netlist matches the golden model");
    }

    /// The timing objective never produces a slower tree (by the engine's own estimate)
    /// than the fixed row-order selection, whatever the arrival profile.
    #[test]
    fn timing_objective_dominates_row_order(
        arrivals in prop::collection::vec(0u32..12, 6),
    ) {
        let expr = parse_expr("t0 + t1 + t2 + t3 + t4 + t5").expect("expression");
        let mut builder = InputSpec::builder();
        for (index, arrival) in arrivals.iter().enumerate() {
            builder = builder.var_with_arrival(format!("t{index}"), 6, f64::from(*arrival));
        }
        let spec = builder.build().expect("spec");
        let lib = TechLibrary::unit();
        let run = |strategy: Option<SelectionStrategy>| {
            let mut synthesizer = Synthesizer::new(&expr, &spec)
                .technology(&lib)
                .objective(Objective::Timing)
                .output_width(9);
            if let Some(strategy) = strategy {
                synthesizer = synthesizer.strategy(strategy);
            }
            synthesizer.run().expect("synthesis").report().final_input_arrival
        };
        prop_assert!(run(None) <= run(Some(SelectionStrategy::RowOrder)) + 1e-9);
    }
}
