//! Baseline datapath-synthesis strategies the DAC 2000 paper compares against.
//!
//! * [`conventional`] — the conventional two-step flow: every word-level operation is
//!   bound to a closed adder / multiplier module (from `dpsyn-modules`), addition
//!   chains are balanced, and the modules are stitched together. Each operation keeps
//!   its own internal carry-propagate adder, which is exactly the inefficiency the
//!   paper's global carry-save formulation removes.
//! * [`csa_opt`] — the word-level delay-optimal carry-save allocation of the authors'
//!   earlier ICCAD'99 work (reference [8] of the paper): operands are compressed three
//!   at a time by full-width 3:2 carry-save rows, always picking the three
//!   earliest-arriving *words*; per-bit arrival skew inside a word cannot be exploited.
//! * [`wallace_fixed`] — the paper's Figure 2(a) reference: the global FA-tree engine
//!   with the fixed, arrival-blind row-order selection of the classic Wallace scheme.
//! * [`fa_random`] — the FA_random reference of the power experiment: random selection
//!   of FA inputs.
//! * [`fa_aot`] / [`fa_alp`] — thin wrappers over `dpsyn-core` so every flow can be
//!   invoked through the same [`FlowResult`]-returning interface in the benchmark
//!   harness.
//! * [`fa_anneal`] — delta-powered greedy local search: starts from the `fa_random`
//!   allocation (ripple root) and improves it with function-preserving same-column
//!   pin swaps, scoring every move through the incremental delta path.
//!
//! [`Flow`] names each of the seven flows as a dispatchable value so harnesses (the
//! tables of `dpsyn-bench`, the exploration engine of `dpsyn-explore`) can iterate
//! over flows data-driven instead of hard-coding seven call sites.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_baselines::{conventional, fa_aot};
//! use dpsyn_ir::{parse_expr, InputSpec};
//! use dpsyn_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let expr = parse_expr("a*b + c")?;
//! let spec = InputSpec::builder().var("a", 4).var("b", 4).var("c", 4).build()?;
//! let lib = TechLibrary::lcbg10pv_like();
//! let ours = fa_aot(&expr, &spec, 9, &lib)?;
//! let reference = conventional(&expr, &spec, 9, &lib)?;
//! assert!(ours.delay <= reference.delay + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod conventional;
mod csa_opt;
mod dispatch;
mod flow;
mod wrappers;

pub use anneal::{fa_anneal, fa_anneal_observed, fa_anneal_with_stats, AnnealStats, AnnealStep};
pub use conventional::{conventional, conventional_netlist};
pub use csa_opt::{csa_opt, csa_opt_netlist};
pub use dispatch::{Flow, FlowSynthesis, SynthesizedParts};
pub use flow::{input_profiles, BaselineError, FlowResult};
pub use wrappers::{fa_alp, fa_aot, fa_random, wallace_fixed};

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::{parse_expr, InputSpec};
    use dpsyn_tech::TechLibrary;

    #[test]
    fn all_flows_produce_valid_netlists() {
        let expr = parse_expr("a*b + c - 3").unwrap();
        let spec = InputSpec::builder()
            .var("a", 3)
            .var("b", 3)
            .var("c", 3)
            .build()
            .unwrap();
        let lib = TechLibrary::unit();
        for result in [
            conventional(&expr, &spec, 8, &lib).unwrap(),
            csa_opt(&expr, &spec, 8, &lib).unwrap(),
            wallace_fixed(&expr, &spec, 8, &lib).unwrap(),
            fa_random(&expr, &spec, 8, &lib, 1).unwrap(),
            fa_aot(&expr, &spec, 8, &lib).unwrap(),
            fa_alp(&expr, &spec, 8, &lib).unwrap(),
            fa_anneal(&expr, &spec, 8, &lib, 1).unwrap(),
        ] {
            assert!(result.netlist.validate().is_ok(), "{}", result.flow);
            assert!(result.delay > 0.0, "{}", result.flow);
            assert!(result.area > 0.0, "{}", result.flow);
        }
    }
}
