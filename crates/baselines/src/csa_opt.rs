//! The word-level delay-optimal carry-save allocation baseline (the authors' ICCAD'99
//! algorithm, reference [8] of the paper).
//!
//! The expression is flattened into a list of word operands (variable words, multiplier
//! partial-product rows, constant words). While more than two operands remain, the
//! three operands with the **earliest word-level arrival times** are compressed by a
//! full-width 3:2 carry-save row; the two survivors are summed by a carry-lookahead
//! adder. The essential difference to the paper's FA_AOT is granularity: a whole word
//! is characterised by a single arrival time (the latest of its bits), so per-bit
//! arrival skew cannot be exploited and the full-width compressor rows spend full
//! adders on positions that hold constant zeros.

use crate::flow::{BaselineError, FlowResult};
use dpsyn_ir::{Expr, InputSpec, Polynomial};
use dpsyn_modules::builders::AdderKind;
use dpsyn_modules::compressor::carry_save_row;
use dpsyn_modules::zero_extend;
use dpsyn_netlist::{CellKind, NetId, Netlist, Word, WordMap};
use dpsyn_tech::TechLibrary;
use std::collections::BTreeMap;

/// One word operand awaiting carry-save compression.
#[derive(Debug, Clone)]
struct Operand {
    bits: Vec<NetId>,
    arrival: f64,
}

/// Synthesizes `expr` with the word-level CSA_OPT flow and analyses the result.
///
/// # Errors
///
/// Returns an error when the expression references undeclared variables, reduces to a
/// constant zero, or when netlist construction / analysis fails.
pub fn csa_opt(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
) -> Result<FlowResult, BaselineError> {
    let (netlist, word_map) = csa_opt_netlist(expr, spec, width, tech)?;
    FlowResult::analyze("csa_opt", netlist, word_map, spec, tech)
}

/// The synthesis step of [`csa_opt`] alone: builds the netlist and its word-level
/// interface **without running the timing/power analyses**.
///
/// Unlike [`crate::conventional_netlist`], the structure here *does* depend on the
/// spec's arrival profile (operands are compressed earliest-words-first using the
/// library's delays), so profile-only re-runs may or may not reproduce the same
/// netlist — callers that cache compiled programs must verify structural identity
/// (e.g. via `Netlist::structural_hash` plus a cell-by-cell check) before reusing
/// one, and fall back to a full analysis otherwise.
///
/// # Errors
///
/// Returns an error when the expression references undeclared variables, reduces to a
/// constant zero, or when netlist construction fails.
pub fn csa_opt_netlist(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
) -> Result<(Netlist, WordMap), BaselineError> {
    for name in expr.variables() {
        if spec.var(&name).is_none() {
            return Err(BaselineError::Ir(dpsyn_ir::IrError::UnknownVariable(name)));
        }
    }
    let width_usize = width as usize;
    let mut netlist = Netlist::new("csa_opt");
    let mut input_words = Vec::new();
    let mut input_bits: BTreeMap<String, Vec<NetId>> = BTreeMap::new();
    let mut input_arrivals: BTreeMap<String, f64> = BTreeMap::new();
    for var in spec.vars() {
        let bits: Vec<NetId> = (0..var.width())
            .map(|bit| netlist.add_input(format!("{}[{}]", var.name(), bit)))
            .collect();
        input_words.push(Word::new(var.name(), bits.clone()));
        input_bits.insert(var.name().to_string(), bits);
        input_arrivals.insert(
            var.name().to_string(),
            var.bits().iter().map(|b| b.arrival).fold(0.0, f64::max),
        );
    }

    let polynomial = Polynomial::from_expr(expr);
    let and_delay = tech.output_delay(CellKind::And2, 0);
    let not_delay = tech.output_delay(CellKind::Not, 0);
    let mut operands: Vec<Operand> = Vec::new();
    let mut constant_total: i128 = 0;

    for term in polynomial.terms() {
        if term.is_constant() {
            constant_total += i128::from(term.coefficient());
            continue;
        }
        // Multiply the variable factors together row by row (the rows of a paper-and-
        // pencil long multiplication); each row stays a word operand.
        let mut factors: Vec<&str> = Vec::new();
        for (name, power) in term.factors() {
            for _ in 0..*power {
                factors.push(name.as_str());
            }
        }
        let first = factors[0];
        let mut rows: Vec<(usize, Vec<NetId>, f64)> =
            vec![(0, input_bits[first].clone(), input_arrivals[first])];
        for factor in &factors[1..] {
            let factor_bits = &input_bits[*factor];
            let factor_arrival = input_arrivals[*factor];
            let mut next_rows = Vec::with_capacity(rows.len() * factor_bits.len());
            for (shift, bits, arrival) in &rows {
                for (bit_index, factor_bit) in factor_bits.iter().enumerate() {
                    if shift + bit_index >= width_usize {
                        continue;
                    }
                    let anded: Vec<NetId> = bits
                        .iter()
                        .map(|bit| {
                            netlist
                                .add_gate(CellKind::And2, &[*bit, *factor_bit])
                                .map(|outs| outs[0])
                        })
                        .collect::<Result<_, _>>()?;
                    next_rows.push((
                        shift + bit_index,
                        anded,
                        arrival.max(factor_arrival) + and_delay,
                    ));
                }
            }
            rows = next_rows;
        }
        // Apply the coefficient: one shifted copy of every row per set bit of |c|;
        // negative coefficients complement the row and contribute a constant correction.
        let coefficient = term.coefficient();
        let magnitude = coefficient.unsigned_abs();
        for weight in 0..64 {
            if (magnitude >> weight) & 1 == 0 {
                continue;
            }
            for (shift, bits, arrival) in &rows {
                let total_shift = shift + weight as usize;
                if total_shift >= width_usize {
                    continue;
                }
                let visible = bits.len().min(width_usize - total_shift);
                let (row_bits, arrival) = if coefficient < 0 {
                    let inverted: Vec<NetId> = bits[..visible]
                        .iter()
                        .map(|bit| netlist.add_gate(CellKind::Not, &[*bit]).map(|outs| outs[0]))
                        .collect::<Result<_, _>>()?;
                    // −b·2^k = (~b)·2^k − 2^k for every visible bit position.
                    for position in 0..visible {
                        constant_total -= 1i128 << (total_shift + position);
                    }
                    (inverted, arrival + not_delay)
                } else {
                    (bits[..visible].to_vec(), *arrival)
                };
                let mut word = vec![netlist.constant(false); total_shift];
                word.extend(row_bits);
                let word = zero_extend(&mut netlist, &word, width_usize);
                operands.push(Operand {
                    bits: word,
                    arrival,
                });
            }
        }
    }

    // Fold the accumulated constant into one operand word.
    let modulus = 1i128 << width;
    let folded = constant_total.rem_euclid(modulus) as u64;
    if folded != 0 {
        let bits: Vec<NetId> = (0..width_usize)
            .map(|bit| netlist.constant((folded >> bit) & 1 == 1))
            .collect();
        operands.push(Operand { bits, arrival: 0.0 });
    }
    if operands.is_empty() {
        return Err(BaselineError::EmptyExpression);
    }

    // Word-level delay-optimal compression: always combine the three earliest words.
    let fa_sum_delay = tech.fa_sum_delay();
    let fa_carry_delay = tech.fa_carry_delay();
    while operands.len() > 2 {
        let mut picked = Vec::with_capacity(3);
        for _ in 0..3 {
            let index = operands
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.arrival.total_cmp(&b.1.arrival))
                .map(|(index, _)| index)
                .expect("loop condition guarantees three operands");
            picked.push(operands.swap_remove(index));
        }
        let latest = picked
            .iter()
            .map(|operand| operand.arrival)
            .fold(f64::NEG_INFINITY, f64::max);
        let (mut sum, mut carry) = carry_save_row(
            &mut netlist,
            &picked[0].bits,
            &picked[1].bits,
            &picked[2].bits,
        )?;
        sum.truncate(width_usize);
        carry.truncate(width_usize);
        operands.push(Operand {
            bits: zero_extend(&mut netlist, &sum, width_usize),
            arrival: latest + fa_sum_delay,
        });
        operands.push(Operand {
            bits: zero_extend(&mut netlist, &carry, width_usize),
            arrival: latest + fa_carry_delay,
        });
    }

    // Final carry-propagating adder (or a straight connection for a single operand).
    let mut result = if operands.len() == 2 {
        let mut sum = AdderKind::CarryLookahead.generate(
            &mut netlist,
            &operands[0].bits,
            &operands[1].bits,
            None,
        )?;
        sum.truncate(width_usize);
        sum
    } else {
        operands[0].bits.clone()
    };
    result = zero_extend(&mut netlist, &result, width_usize);
    for net in &result {
        netlist.mark_output(*net);
    }
    let word_map = WordMap::new(input_words, Word::new("out", result));
    Ok((netlist, word_map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::parse_expr;
    use dpsyn_sim::check_equivalence;

    fn check(source: &str, spec: &InputSpec, width: u32) -> FlowResult {
        let expr = parse_expr(source).unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let result = csa_opt(&expr, spec, width, &lib).unwrap();
        check_equivalence(
            &result.netlist,
            &result.word_map,
            &expr,
            spec,
            width,
            200,
            31,
        )
        .unwrap_or_else(|error| panic!("{source}: {error}"));
        result
    }

    #[test]
    fn additions_and_constants() {
        let spec = InputSpec::builder()
            .var("a", 4)
            .var("b", 4)
            .var("c", 4)
            .build()
            .unwrap();
        check("a + b + c", &spec, 6);
        check("a + b + c + 21", &spec, 6);
        check("a + 3", &spec, 5);
    }

    #[test]
    fn subtractions_wrap_correctly() {
        let spec = InputSpec::builder()
            .var("a", 4)
            .var("b", 4)
            .build()
            .unwrap();
        check("a - b", &spec, 5);
        check("7 - a - b", &spec, 6);
        check("a - 2*b + 40", &spec, 7);
    }

    #[test]
    fn multiplications_and_higher_order_terms() {
        let spec = InputSpec::builder()
            .var("x", 3)
            .var("y", 3)
            .var("z", 3)
            .build()
            .unwrap();
        check("x*y + z", &spec, 7);
        check("x*y - y*z + 10", &spec, 8);
        check("x*x*x", &spec, 9);
        check("5*x*y + 3*z", &spec, 9);
    }

    #[test]
    fn single_operand_needs_no_compressor() {
        let spec = InputSpec::builder().var("a", 4).build().unwrap();
        let result = check("a", &spec, 4);
        assert_eq!(result.netlist.count_kind(CellKind::Fa), 0);
    }

    #[test]
    fn empty_expression_is_rejected() {
        let spec = InputSpec::builder().var("a", 4).build().unwrap();
        let expr = parse_expr("a - a").unwrap();
        let result = csa_opt(&expr, &spec, 5, &TechLibrary::unit());
        assert!(matches!(result, Err(BaselineError::EmptyExpression)));
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let spec = InputSpec::builder().var("a", 4).build().unwrap();
        let expr = parse_expr("a + ghost").unwrap();
        let result = csa_opt(&expr, &spec, 5, &TechLibrary::unit());
        assert!(matches!(result, Err(BaselineError::Ir(_))));
    }

    #[test]
    fn word_level_rows_cost_more_area_than_the_bit_level_tree() {
        // The defining inefficiency of word-level CSA allocation: full-width compressor
        // rows spend adders on constant-zero positions, so for the same function the
        // area is at least that of the bit-level FA-tree of `dpsyn-core`.
        let spec = InputSpec::builder()
            .var("x", 6)
            .var("y", 6)
            .var("z", 6)
            .build()
            .unwrap();
        let expr = parse_expr("x*y + y*z + x + z").unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let word_level = csa_opt(&expr, &spec, 13, &lib).unwrap();
        let bit_level = crate::fa_aot(&expr, &spec, 13, &lib).unwrap();
        assert!(
            word_level.area >= bit_level.area,
            "csa_opt area {} vs fa_aot area {}",
            word_level.area,
            bit_level.area
        );
        assert!(
            bit_level.delay <= word_level.delay + 1e-9,
            "fa_aot delay {} vs csa_opt delay {}",
            bit_level.delay,
            word_level.delay
        );
    }
}
