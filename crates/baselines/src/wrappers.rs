//! Thin wrappers that run the global FA-tree engine of `dpsyn-core` under the
//! different selection strategies, so that every flow in the benchmark harness has the
//! same signature.

use crate::flow::{BaselineError, FlowResult};
use dpsyn_core::{Objective, SelectionStrategy, Synthesizer};
use dpsyn_ir::{Expr, InputSpec};
use dpsyn_tech::TechLibrary;

fn run_engine(
    flow: &str,
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
    objective: Objective,
    strategy: Option<SelectionStrategy>,
) -> Result<FlowResult, BaselineError> {
    let mut synthesizer = Synthesizer::new(expr, spec)
        .objective(objective)
        .technology(tech)
        .output_width(width)
        .name(flow);
    if let Some(strategy) = strategy {
        synthesizer = synthesizer.strategy(strategy);
    }
    Ok(FlowResult::from_synthesized(flow, synthesizer.run()?))
}

/// The paper's **FA_AOT**: the global FA-tree with earliest-arrival selection
/// (timing-optimal).
///
/// # Errors
///
/// Returns an error if lowering or any analysis fails.
pub fn fa_aot(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
) -> Result<FlowResult, BaselineError> {
    run_engine("fa_aot", expr, spec, width, tech, Objective::Timing, None)
}

/// The paper's **FA_ALP**: the global FA-tree with largest-`|q|` selection (low power).
///
/// # Errors
///
/// Returns an error if lowering or any analysis fails.
pub fn fa_alp(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
) -> Result<FlowResult, BaselineError> {
    run_engine("fa_alp", expr, spec, width, tech, Objective::Power, None)
}

/// The classic fixed Wallace selection (Figure 2(a) of the paper): same global
/// carry-save structure, but FA inputs are chosen in row order, ignoring arrival times
/// and probabilities.
///
/// # Errors
///
/// Returns an error if lowering or any analysis fails.
pub fn wallace_fixed(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
) -> Result<FlowResult, BaselineError> {
    run_engine(
        "wallace_fixed",
        expr,
        spec,
        width,
        tech,
        Objective::Timing,
        Some(SelectionStrategy::RowOrder),
    )
}

/// The paper's **FA_random** power reference: FA inputs are picked pseudo-randomly
/// (reproducible from `seed`).
///
/// # Errors
///
/// Returns an error if lowering or any analysis fails.
pub fn fa_random(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
    seed: u64,
) -> Result<FlowResult, BaselineError> {
    run_engine(
        "fa_random",
        expr,
        spec,
        width,
        tech,
        Objective::Power,
        Some(SelectionStrategy::Random(seed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::parse_expr;
    use dpsyn_sim::check_equivalence;

    fn setup() -> (Expr, InputSpec, TechLibrary) {
        (
            parse_expr("a*b + c + 7").unwrap(),
            InputSpec::builder()
                .var_with_arrival("a", 4, 1.0)
                .var("b", 4)
                .var_with_probability("c", 4, 0.2)
                .build()
                .unwrap(),
            TechLibrary::lcbg10pv_like(),
        )
    }

    #[test]
    fn wrappers_preserve_function() {
        let (expr, spec, lib) = setup();
        for result in [
            fa_aot(&expr, &spec, 9, &lib).unwrap(),
            fa_alp(&expr, &spec, 9, &lib).unwrap(),
            wallace_fixed(&expr, &spec, 9, &lib).unwrap(),
            fa_random(&expr, &spec, 9, &lib, 3).unwrap(),
        ] {
            check_equivalence(&result.netlist, &result.word_map, &expr, &spec, 9, 128, 5)
                .unwrap_or_else(|error| panic!("{}: {error}", result.flow));
        }
    }

    #[test]
    fn fa_aot_is_at_least_as_fast_as_wallace_fixed() {
        let (expr, spec, lib) = setup();
        let ours = fa_aot(&expr, &spec, 9, &lib).unwrap();
        let fixed = wallace_fixed(&expr, &spec, 9, &lib).unwrap();
        assert!(ours.delay <= fixed.delay + 1e-9);
    }

    #[test]
    fn fa_alp_is_no_worse_than_random_on_average() {
        let (expr, spec, lib) = setup();
        let low_power = fa_alp(&expr, &spec, 9, &lib).unwrap();
        let mut random_total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            random_total += fa_random(&expr, &spec, 9, &lib, seed)
                .unwrap()
                .switching_energy;
        }
        assert!(low_power.switching_energy <= random_total / runs as f64 + 1e-9);
    }
}
