//! `fa_anneal`: delta-powered greedy local search over the FA-tree allocation.
//!
//! The flow starts from the `fa_random` tree allocation (same seed, same
//! pseudo-random FA input selection, `Objective::Power`) with a **ripple-carry**
//! final adder, then descends: it proposes input-pin swaps inside the carry-save
//! adder mass, scores every candidate through the incremental delta path
//! ([`DeltaState::rebind`] + [`IncrementalTiming::rerun_delta`] /
//! [`IncrementalPower::rerun_delta`], `O(dirty cone)` per move), and keeps a move
//! only when it is a Pareto improvement (switching energy and critical delay both
//! no worse, one strictly better, compared bit-for-bit). Rejected moves are rolled
//! back through the *same* rewire → recompile → rebind → rerun path, so the live
//! delta view stays bit-identical to a from-scratch analysis after every settled
//! proposal. The one full analysis pass per channel is the initial prime; the move
//! loop never runs one (asserted by the `anneal_throughput` bench via
//! [`AnnealStats::full_passes`]).
//!
//! # Why the moves preserve the synthesized function
//!
//! Every `Fa`/`Ha` cell satisfies the exact weighted identity
//! `Σ inputs = sum + 2·cout`. Group the adder cells into connected components
//! (linked through sum edges at the same column and carry edges one column up) and
//! assign each cell a relative column. Summing the identity over a component, the
//! internally consumed nets cancel and what remains is: the weighted sum of the
//! component's *boundary* outputs equals the weighted sum of its consumed external
//! sources. Swapping the source nets of two input pins in the same column permutes
//! the consumed multiset without changing that total. The individual boundary bits
//! are then pinned down — not just their total — when the boundary weights are
//! pairwise distinct and every dangling (unread) output sits above them: the
//! boundary is the unique binary representation of the invariant total's low bits.
//! Components violating any of this (column conflicts, multiply-consumed or
//! externally observed internal nets, colliding boundary weights) are excluded
//! from the move pool entirely.
//!
//! This is also why the start netlist uses [`FinalAdderKind::Ripple`]: a ripple
//! root is made of `Fa`/`Ha` cells, so the CSA tree and the final adder fuse into
//! one component whose boundary is exactly the distinct-weight output bits. The
//! default carry-lookahead root is gate-level (`Xor2`/`And2`/`Or2`); behind it the
//! two reduced rows collide pairwise per column and no swap would be provably
//! safe. The trade is visible and tested: `fa_anneal` keeps the `fa_random` tree
//! at equal seed budget, gives up the lookahead root's delay, and wins area and
//! switching energy — it is never Pareto-dominated by `fa_random`.
//!
//! Cell kinds are never changed: no same-arity kind substitution preserves an
//! adder's function, so [`Netlist::replace_cell_kind`] stays a test-suite mutator
//! and the search uses [`Netlist::rewire_input`] only.

use crate::flow::{input_profiles, BaselineError, FlowResult};
use dpsyn_core::{FinalAdderKind, Objective, SelectionStrategy, Synthesizer};
use dpsyn_ir::{Expr, InputSpec};
use dpsyn_netlist::{CellId, CellKind, CompiledNetlist, DeltaState, InputDelta, Netlist};
use dpsyn_power::{IncrementalPower, PowerReport};
use dpsyn_tech::TechLibrary;
use dpsyn_timing::{IncrementalTiming, TimingReport};
use std::collections::{BTreeMap, VecDeque};

/// Scored proposals per run. Budget-bounded, so a run's cost is predictable; the
/// stall limit below usually ends the descent first.
const MOVE_BUDGET: u64 = 256;
/// Consecutive non-improving proposals before the descent gives up.
const STALL_LIMIT: u64 = 96;
/// Candidate draws per proposal before the proposal is abandoned as undrawable.
const DRAWS_PER_PROPOSAL: u32 = 16;

/// Counters proving how the search loop did its work. The `anneal_throughput`
/// bench and the equivalence suites assert against these: in particular
/// [`AnnealStats::full_passes`] stays at the two priming passes (one per channel)
/// no matter how many moves were scored — every in-loop metric came from
/// `rerun_delta`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnealStats {
    /// Moves scored through the delta path.
    pub proposals: u64,
    /// Scored moves kept (Pareto improvements over the current point).
    pub accepted: u64,
    /// Scored moves rolled back through the delta path.
    pub rejected: u64,
    /// Candidate draws dropped before scoring (no-op pair or cycle risk).
    pub discarded: u64,
    /// `rerun_delta` calls across both channels (scoring and rollbacks).
    pub delta_reruns: u64,
    /// `run_full` calls: exactly 2 (the timing + power prime), never more.
    pub full_passes: u64,
    /// Function-preserving swap groups found in the start netlist.
    pub swap_groups: usize,
    /// Input pins participating in those groups.
    pub swap_pins: usize,
}

/// The annealer's live view after one settled proposal (post-rollback for a
/// rejected move), handed to the observer of [`fa_anneal_observed`]. Everything a
/// caller needs to cross-check the delta view against a from-scratch analysis.
pub struct AnnealStep<'a> {
    /// The netlist after the proposal settled.
    pub netlist: &'a Netlist,
    /// The compiled program the delta state is currently bound to.
    pub compiled: &'a CompiledNetlist,
    /// The live timing report (produced by `rerun_delta`).
    pub timing: &'a TimingReport,
    /// The live power report (produced by `rerun_delta`).
    pub power: &'a PowerReport,
    /// Whether the proposal was accepted (`false`: it was rolled back).
    pub accepted: bool,
    /// Running counters as of this step.
    pub stats: AnnealStats,
}

/// The deterministic splitmix64 generator driving candidate selection.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Op-index (levelized) position of every cell — drivers always precede readers,
/// which is what makes the cheap acyclicity check below exact.
fn op_positions(compiled: &CompiledNetlist) -> Vec<u32> {
    let mut positions = vec![0u32; compiled.cell_count()];
    for (index, op) in compiled.ops().iter().enumerate() {
        positions[op.cell.index()] = index as u32;
    }
    positions
}

/// Finds the function-preserving move pool of a netlist: input pins of safe
/// carry-save components, grouped by (component, column). Swapping the source
/// nets of any two pins within one group preserves every primary output (see the
/// module docs for the weighted-mass argument). Groups are computed once per
/// start netlist — the classification is invariant under the swaps it licenses.
fn swap_groups(netlist: &Netlist, compiled: &CompiledNetlist) -> Vec<Vec<(CellId, usize)>> {
    let cell_count = netlist.cell_count();
    let mut is_adder = vec![false; cell_count];
    for (id, cell) in netlist.cells() {
        is_adder[id.index()] = matches!(cell.kind(), CellKind::Fa | CellKind::Ha);
    }
    // Undirected adder-to-adder adjacency with column deltas: a sum edge keeps the
    // column, a carry edge raises it by one.
    let mut adjacency: Vec<Vec<(usize, i64)>> = vec![Vec::new(); cell_count];
    for (id, cell) in netlist.cells() {
        if !is_adder[id.index()] {
            continue;
        }
        for (pin, net) in cell.outputs().iter().enumerate() {
            let delta = pin as i64; // output 0 = sum (same column), 1 = cout (+1)
            for (reader, _) in compiled.fanout(*net) {
                if is_adder[reader.index()] {
                    adjacency[id.index()].push((reader.index(), delta));
                    adjacency[reader.index()].push((id.index(), -delta));
                }
            }
        }
    }
    // Label relative columns per connected component; a conflicting label means
    // the component has no consistent arithmetic interpretation.
    let mut component = vec![usize::MAX; cell_count];
    let mut column = vec![0i64; cell_count];
    let mut safe: Vec<bool> = Vec::new();
    for start in 0..cell_count {
        if !is_adder[start] || component[start] != usize::MAX {
            continue;
        }
        let comp = safe.len();
        let mut ok = true;
        component[start] = comp;
        column[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(cell) = queue.pop_front() {
            for &(next, delta) in &adjacency[cell] {
                let want = column[cell] + delta;
                if component[next] == usize::MAX {
                    component[next] = comp;
                    column[next] = want;
                    queue.push_back(next);
                } else if column[next] != want {
                    ok = false;
                }
            }
        }
        safe.push(ok);
    }
    // Classify every adder-driven net: internal nets cancel in the mass identity,
    // boundary nets must be reconstructible from the invariant total, anything
    // consumed more than once or both inside and outside poisons its component.
    let mut output_mask = vec![false; netlist.net_count()];
    for net in netlist.outputs() {
        output_mask[net.index()] = true;
    }
    let mut boundary: Vec<Vec<i64>> = vec![Vec::new(); safe.len()];
    let mut dangling: Vec<Vec<i64>> = vec![Vec::new(); safe.len()];
    for (id, cell) in netlist.cells() {
        let index = id.index();
        if !is_adder[index] {
            continue;
        }
        let comp = component[index];
        for (pin, net) in cell.outputs().iter().enumerate() {
            let weight = column[index] + pin as i64;
            let readers = compiled.fanout(*net);
            let adder_pins = readers
                .iter()
                .filter(|(reader, _)| is_adder[reader.index()])
                .count();
            let others = readers.len() - adder_pins;
            let observed = others > 0 || output_mask[net.index()];
            if adder_pins == 1 && !observed {
                // Internal: produced and consumed exactly once inside the mass.
            } else if adder_pins == 0 {
                if observed {
                    boundary[comp].push(weight);
                } else {
                    dangling[comp].push(weight);
                }
            } else {
                safe[comp] = false;
            }
        }
    }
    for comp in 0..safe.len() {
        if !safe[comp] {
            continue;
        }
        let weights = &mut boundary[comp];
        weights.sort_unstable();
        if weights.windows(2).any(|pair| pair[0] == pair[1]) {
            safe[comp] = false;
            continue;
        }
        if let Some(&max_boundary) = weights.last() {
            if dangling[comp].iter().any(|&weight| weight <= max_boundary) {
                safe[comp] = false;
            }
        }
    }
    let mut groups: BTreeMap<(usize, i64), Vec<(CellId, usize)>> = BTreeMap::new();
    for (id, cell) in netlist.cells() {
        let index = id.index();
        if !is_adder[index] || !safe[component[index]] {
            continue;
        }
        for pin in 0..cell.inputs().len() {
            groups
                .entry((component[index], column[index]))
                .or_default()
                .push((id, pin));
        }
    }
    groups
        .into_values()
        .filter(|group| group.len() >= 2)
        .collect()
}

/// The paper-style `fa_anneal` flow: `fa_random(seed)` tree allocation with a
/// ripple root, improved by delta-scored greedy descent. See the module docs.
///
/// # Errors
///
/// Returns an error if lowering, synthesis or any analysis fails.
pub fn fa_anneal(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
    seed: u64,
) -> Result<FlowResult, BaselineError> {
    fa_anneal_with_stats(expr, spec, width, tech, seed).map(|(result, _)| result)
}

/// [`fa_anneal`] plus the loop counters, for callers asserting *how* the result
/// was produced (the throughput bench and the equivalence suites).
///
/// # Errors
///
/// Returns an error if lowering, synthesis or any analysis fails.
pub fn fa_anneal_with_stats(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
    seed: u64,
) -> Result<(FlowResult, AnnealStats), BaselineError> {
    fa_anneal_observed(expr, spec, width, tech, seed, |_| {})
}

/// [`fa_anneal_with_stats`] with an observer called after every settled proposal
/// (accepted, or rejected and already rolled back), exposing the live delta view
/// for bit-identity cross-checks against a from-scratch analysis.
///
/// # Errors
///
/// Returns an error if lowering, synthesis or any analysis fails.
pub fn fa_anneal_observed(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
    seed: u64,
    mut observer: impl FnMut(&AnnealStep<'_>),
) -> Result<(FlowResult, AnnealStats), BaselineError> {
    let design = Synthesizer::new(expr, spec)
        .objective(Objective::Power)
        .technology(tech)
        .output_width(width)
        .name("fa_anneal")
        .strategy(SelectionStrategy::Random(seed))
        .final_adder(FinalAdderKind::Ripple)
        .run()?;
    let (mut netlist, word_map, mut compiled, _report) = design.into_analysis_parts();

    let (arrivals, probabilities) = input_profiles(&word_map, spec);
    let mut state = DeltaState::new(&compiled);
    let mut timing_engine = IncrementalTiming::new(tech, &compiled)?;
    let mut power_engine = IncrementalPower::new(tech, &compiled)?;
    let mut timing = timing_engine.run_full(&compiled, &arrivals, &mut state)?;
    let mut power = power_engine.run_full(&compiled, &probabilities, &mut state)?;
    // Swaps never change the cell set, so area is invariant across the search.
    let area = tech.compiled_area(&compiled);

    let groups = swap_groups(&netlist, &compiled);
    let mut stats = AnnealStats {
        full_passes: 2,
        swap_groups: groups.len(),
        swap_pins: groups.iter().map(Vec::len).sum(),
        ..AnnealStats::default()
    };

    let mut rng = SplitMix(seed ^ 0xa55e_a1ed_5eed_0001);
    let mut positions = op_positions(&compiled);
    let empty_delta = InputDelta::new();
    let mut stall = 0u64;
    while !groups.is_empty() && stats.proposals < MOVE_BUDGET && stall < STALL_LIMIT {
        // Draw a candidate: two distinct same-group pins with distinct sources
        // whose exchanged edges both point forward in the current levelization
        // (drivers strictly precede their new readers, so the swap cannot close
        // a cycle).
        let mut candidate = None;
        for _ in 0..DRAWS_PER_PROPOSAL {
            let group = &groups[rng.below(groups.len())];
            let (cell_a, pin_a) = group[rng.below(group.len())];
            let (cell_b, pin_b) = group[rng.below(group.len())];
            if (cell_a, pin_a) == (cell_b, pin_b) {
                stats.discarded += 1;
                continue;
            }
            let source_a = netlist.cell(cell_a).inputs()[pin_a];
            let source_b = netlist.cell(cell_b).inputs()[pin_b];
            let forward =
                |net: dpsyn_netlist::NetId, reader: CellId| match netlist.net(net).driver() {
                    None => true,
                    Some((driver, _)) => positions[driver.index()] < positions[reader.index()],
                };
            if source_a == source_b || !forward(source_b, cell_a) || !forward(source_a, cell_b) {
                stats.discarded += 1;
                continue;
            }
            candidate = Some((cell_a, pin_a, source_a, cell_b, pin_b, source_b));
            break;
        }
        let Some((cell_a, pin_a, source_a, cell_b, pin_b, source_b)) = candidate else {
            stall += 1;
            continue;
        };

        // Apply the swap and score it through the delta path: recompile, rebind
        // the persistent state, re-resolve the (cheap) engines, rerun the dirty
        // cone of each channel with an empty input delta.
        netlist.rewire_input(cell_a, pin_a, source_b)?;
        netlist.rewire_input(cell_b, pin_b, source_a)?;
        let recompiled = netlist.compile()?;
        state.rebind(&compiled, &recompiled);
        timing_engine = IncrementalTiming::new(tech, &recompiled)?;
        power_engine = IncrementalPower::new(tech, &recompiled)?;
        let new_timing = timing_engine.rerun_delta(&recompiled, &mut state, &empty_delta)?;
        let new_power = power_engine.rerun_delta(&recompiled, &mut state, &empty_delta)?;
        stats.proposals += 1;
        stats.delta_reruns += 2;

        let energy_improves = new_power.total_energy() < power.total_energy();
        let energy_holds = new_power.total_energy() <= power.total_energy();
        let delay_improves = new_timing.critical_delay() < timing.critical_delay();
        let delay_holds = new_timing.critical_delay() <= timing.critical_delay();
        let accepted = (energy_improves && delay_holds) || (energy_holds && delay_improves);
        if accepted {
            compiled = recompiled;
            timing = new_timing;
            power = new_power;
            positions = op_positions(&compiled);
            stats.accepted += 1;
            stall = 0;
        } else {
            // Roll back through the same delta path; the restored program is
            // structurally identical to `compiled`, so the reruns land back on
            // bit-identical reports.
            netlist.rewire_input(cell_a, pin_a, source_a)?;
            netlist.rewire_input(cell_b, pin_b, source_b)?;
            let restored = netlist.compile()?;
            state.rebind(&recompiled, &restored);
            timing_engine = IncrementalTiming::new(tech, &restored)?;
            power_engine = IncrementalPower::new(tech, &restored)?;
            timing = timing_engine.rerun_delta(&restored, &mut state, &empty_delta)?;
            power = power_engine.rerun_delta(&restored, &mut state, &empty_delta)?;
            stats.delta_reruns += 2;
            compiled = restored;
            stats.rejected += 1;
            stall += 1;
        }
        observer(&AnnealStep {
            netlist: &netlist,
            compiled: &compiled,
            timing: &timing,
            power: &power,
            accepted,
            stats,
        });
    }

    let result = FlowResult {
        flow: "fa_anneal".to_string(),
        delay: timing.critical_delay(),
        area,
        switching_energy: power.total_energy(),
        power_mw: power.power_mw(),
        netlist,
        word_map,
        compiled,
    };
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::parse_expr;
    use dpsyn_sim::check_equivalence;

    fn setup() -> (Expr, InputSpec, TechLibrary) {
        (
            parse_expr("a*b + c + 7").unwrap(),
            InputSpec::builder()
                .var_with_arrival("a", 4, 1.0)
                .var_with_probability("b", 4, 0.85)
                .var_with_probability("c", 4, 0.1)
                .build()
                .unwrap(),
            TechLibrary::lcbg10pv_like(),
        )
    }

    #[test]
    fn anneal_preserves_function() {
        let (expr, spec, lib) = setup();
        let result = fa_anneal(&expr, &spec, 9, &lib, 3).unwrap();
        check_equivalence(&result.netlist, &result.word_map, &expr, &spec, 9, 128, 5).unwrap();
    }

    #[test]
    fn anneal_finds_moves_and_keeps_the_loop_incremental() {
        let (expr, spec, lib) = setup();
        let (result, stats) = fa_anneal_with_stats(&expr, &spec, 9, &lib, 3).unwrap();
        assert!(stats.swap_groups > 0, "no safe swap groups: {stats:?}");
        assert!(stats.proposals > 0, "no proposals scored: {stats:?}");
        assert_eq!(stats.full_passes, 2, "{stats:?}");
        assert_eq!(stats.proposals, stats.accepted + stats.rejected);
        assert_eq!(
            stats.delta_reruns,
            2 * stats.proposals + 2 * stats.rejected,
            "{stats:?}"
        );
        // The carried compiled program matches the carried netlist, and the
        // metrics are what a from-scratch analysis of it reports.
        let fresh = FlowResult::analyze(
            "fa_anneal",
            result.netlist.clone(),
            result.word_map.clone(),
            &spec,
            &lib,
        )
        .unwrap();
        assert_eq!(result.compiled, fresh.compiled);
        assert_eq!(result.delay.to_bits(), fresh.delay.to_bits());
        assert_eq!(result.area.to_bits(), fresh.area.to_bits());
        assert_eq!(
            result.switching_energy.to_bits(),
            fresh.switching_energy.to_bits()
        );
        assert_eq!(result.power_mw.to_bits(), fresh.power_mw.to_bits());
    }

    #[test]
    fn anneal_never_regresses_its_own_start() {
        let (expr, spec, lib) = setup();
        // Seed 3's start point: the same synthesis without any accepted moves.
        let start = Synthesizer::new(&expr, &spec)
            .objective(Objective::Power)
            .technology(&lib)
            .output_width(9)
            .name("fa_anneal")
            .strategy(SelectionStrategy::Random(3))
            .final_adder(FinalAdderKind::Ripple)
            .run()
            .unwrap();
        let result = fa_anneal(&expr, &spec, 9, &lib, 3).unwrap();
        assert!(result.switching_energy <= start.report().switching_energy);
        assert!(result.delay <= start.report().delay);
        assert_eq!(result.area.to_bits(), start.report().area.to_bits());
    }

    #[test]
    fn anneal_is_deterministic() {
        let (expr, spec, lib) = setup();
        let (first, first_stats) = fa_anneal_with_stats(&expr, &spec, 9, &lib, 11).unwrap();
        let (second, second_stats) = fa_anneal_with_stats(&expr, &spec, 9, &lib, 11).unwrap();
        assert_eq!(first_stats, second_stats);
        assert_eq!(first.netlist, second.netlist);
        assert_eq!(first.delay.to_bits(), second.delay.to_bits());
        assert_eq!(
            first.switching_energy.to_bits(),
            second.switching_energy.to_bits()
        );
        // A different seed explores a different trajectory.
        let (other, _) = fa_anneal_with_stats(&expr, &spec, 9, &lib, 12).unwrap();
        assert_ne!(first.netlist, other.netlist);
    }

    #[test]
    fn swap_groups_reject_observed_internal_nets() {
        // Two chained HAs whose intermediate sum is also a primary output: the
        // component's internal net is externally observed, so no swap is safe.
        let mut netlist = Netlist::new("observed");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let first = netlist.add_gate(CellKind::Ha, &[a, b]).unwrap();
        let second = netlist.add_gate(CellKind::Ha, &[first[0], c]).unwrap();
        netlist.mark_output(first[0]);
        netlist.mark_output(second[0]);
        netlist.mark_output(second[1]);
        netlist.mark_output(first[1]);
        let compiled = netlist.compile().unwrap();
        assert!(swap_groups(&netlist, &compiled).is_empty());
    }

    #[test]
    fn swap_groups_reject_colliding_boundary_weights() {
        // Two independent HAs over the same column whose sums are both outputs:
        // one component? No — they are disconnected, hence two components, each
        // with a sum (weight 0) and cout (weight 1) boundary — distinct weights,
        // so both are safe and each contributes a 2-pin group.
        let mut netlist = Netlist::new("pair");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let first = netlist.add_gate(CellKind::Ha, &[a, b]).unwrap();
        netlist.mark_output(first[0]);
        netlist.mark_output(first[1]);
        // A second adder consuming the first's *both* outputs at one column:
        // sum (w=0) and cout (w=1) feed the same Fa — column conflict.
        let clash = netlist
            .add_gate(CellKind::Fa, &[first[0], first[1], a])
            .unwrap();
        netlist.mark_output(clash[0]);
        netlist.mark_output(clash[1]);
        let compiled = netlist.compile().unwrap();
        assert!(swap_groups(&netlist, &compiled).is_empty());
    }

    #[test]
    fn swap_groups_accept_a_clean_ripple_chain() {
        // a+b+c as Ha -> Fa ripple: one component, boundary = the three output
        // bits at distinct weights; the column-0 pins form one swappable group.
        let mut netlist = Netlist::new("ripple");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let d = netlist.add_input("d");
        let low = netlist.add_gate(CellKind::Ha, &[a, b]).unwrap();
        let high = netlist.add_gate(CellKind::Fa, &[c, d, low[1]]).unwrap();
        netlist.mark_output(low[0]);
        netlist.mark_output(high[0]);
        netlist.mark_output(high[1]);
        let compiled = netlist.compile().unwrap();
        let groups = swap_groups(&netlist, &compiled);
        // Column 0: the Ha's two pins. Column 1: the Fa's three pins.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 3);
    }
}
