//! Common result type and analysis helper shared by every synthesis flow.

use dpsyn_ir::InputSpec;
use dpsyn_netlist::{CompiledNetlist, NetId, Netlist, NetlistError, WordMap};
use dpsyn_power::{PowerError, ProbabilityAnalysis};
use dpsyn_tech::TechLibrary;
use dpsyn_timing::{TimingAnalysis, TimingError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced by the baseline synthesis flows.
#[derive(Debug)]
pub enum BaselineError {
    /// Lowering or golden-model evaluation failed.
    Ir(dpsyn_ir::IrError),
    /// Netlist construction failed.
    Netlist(NetlistError),
    /// Timing analysis failed.
    Timing(TimingError),
    /// Power analysis failed.
    Power(PowerError),
    /// The FA-tree engine (used by the wrapper flows) failed.
    Core(dpsyn_core::SynthesisError),
    /// The expression has no addends / operands to implement.
    EmptyExpression,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Ir(error) => write!(f, "expression lowering failed: {error}"),
            BaselineError::Netlist(error) => write!(f, "netlist construction failed: {error}"),
            BaselineError::Timing(error) => write!(f, "timing analysis failed: {error}"),
            BaselineError::Power(error) => write!(f, "power analysis failed: {error}"),
            BaselineError::Core(error) => write!(f, "fa-tree synthesis failed: {error}"),
            BaselineError::EmptyExpression => {
                write!(
                    f,
                    "the expression reduces to the constant zero; nothing to synthesize"
                )
            }
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Ir(error) => Some(error),
            BaselineError::Netlist(error) => Some(error),
            BaselineError::Timing(error) => Some(error),
            BaselineError::Power(error) => Some(error),
            BaselineError::Core(error) => Some(error),
            BaselineError::EmptyExpression => None,
        }
    }
}

impl From<dpsyn_ir::IrError> for BaselineError {
    fn from(error: dpsyn_ir::IrError) -> Self {
        BaselineError::Ir(error)
    }
}

impl From<NetlistError> for BaselineError {
    fn from(error: NetlistError) -> Self {
        BaselineError::Netlist(error)
    }
}

impl From<TimingError> for BaselineError {
    fn from(error: TimingError) -> Self {
        BaselineError::Timing(error)
    }
}

impl From<PowerError> for BaselineError {
    fn from(error: PowerError) -> Self {
        BaselineError::Power(error)
    }
}

impl From<dpsyn_core::SynthesisError> for BaselineError {
    fn from(error: dpsyn_core::SynthesisError) -> Self {
        BaselineError::Core(error)
    }
}

/// Collects the per-net input profiles of a synthesized design: the arrival times and
/// signal probabilities of every primary-input net that the input specification
/// profiles, keyed by net.
///
/// This is the exact profile-extraction loop of [`FlowResult::analyze`], shared with
/// the exploration engine's delta path so both paths feed analyses **the same values
/// for the same nets** — a precondition for bit-identical reports.
pub fn input_profiles(
    word_map: &WordMap,
    spec: &InputSpec,
) -> (BTreeMap<NetId, f64>, BTreeMap<NetId, f64>) {
    let mut arrivals = BTreeMap::new();
    let mut probabilities = BTreeMap::new();
    for word in word_map.inputs() {
        for (bit, net) in word.bits().iter().enumerate() {
            if let Some(profile) = spec.bit_profile(word.name(), bit as u32) {
                arrivals.insert(*net, profile.arrival);
                probabilities.insert(*net, profile.probability);
            }
        }
    }
    (arrivals, probabilities)
}

/// The analysed outcome of one synthesis flow over one design, carrying the same three
/// quality metrics the paper's tables report.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Which flow produced the result (`"conventional"`, `"csa_opt"`, `"fa_aot"`, ...).
    pub flow: String,
    /// The synthesized netlist.
    pub netlist: Netlist,
    /// The word-level interface of the netlist.
    pub word_map: WordMap,
    /// The compiled analysis program the metrics were computed over — compiled once
    /// per netlist and shared by timing, power, area and any later re-analysis
    /// (simulation, exploration statistics).
    pub compiled: CompiledNetlist,
    /// Critical delay under the design's arrival profile (library time units).
    pub delay: f64,
    /// Total cell area (library area units).
    pub area: f64,
    /// Weighted switching energy `Σ W·p(1−p)` under the design's probability profile.
    pub switching_energy: f64,
    /// Power on the milliwatt-like scale of Table 2.
    pub power_mw: f64,
}

impl FlowResult {
    /// Analyses a freshly built netlist (timing, power, area) under the design's input
    /// characteristics and wraps everything into a `FlowResult`.
    ///
    /// The netlist is compiled **once**; every analysis runs over the shared program.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist is invalid or an analysis fails.
    pub fn analyze(
        flow: impl Into<String>,
        netlist: Netlist,
        word_map: WordMap,
        spec: &InputSpec,
        tech: &TechLibrary,
    ) -> Result<Self, BaselineError> {
        netlist.validate_structure()?;
        let compiled = netlist.compile()?;
        let (arrivals, probabilities) = input_profiles(&word_map, spec);
        let timing = TimingAnalysis::new(tech)
            .with_input_arrivals(arrivals)
            .run_compiled(&compiled)?;
        let power = ProbabilityAnalysis::new(tech)
            .with_input_probabilities(probabilities)
            .run_compiled(&compiled)?;
        let area = tech.compiled_area(&compiled);
        Ok(FlowResult {
            flow: flow.into(),
            delay: timing.critical_delay(),
            area,
            switching_energy: power.total_energy(),
            power_mw: power.power_mw(),
            netlist,
            word_map,
            compiled,
        })
    }

    /// Wraps an already-analysed design from the core synthesizer, inheriting its
    /// compiled program.
    pub fn from_synthesized(
        flow: impl Into<String>,
        design: dpsyn_core::SynthesizedDesign,
    ) -> Self {
        let (netlist, word_map, compiled, report) = design.into_analysis_parts();
        FlowResult {
            flow: flow.into(),
            netlist,
            word_map,
            compiled,
            delay: report.delay,
            area: report.area,
            switching_energy: report.switching_energy,
            power_mw: report.power_mw,
        }
    }

    /// Delay improvement of `self` over `other` as a fraction (positive = faster).
    pub fn delay_improvement_over(&self, other: &FlowResult) -> f64 {
        if other.delay == 0.0 {
            0.0
        } else {
            (other.delay - self.delay) / other.delay
        }
    }

    /// Area improvement of `self` over `other` as a fraction (positive = smaller).
    pub fn area_improvement_over(&self, other: &FlowResult) -> f64 {
        if other.area == 0.0 {
            0.0
        } else {
            (other.area - self.area) / other.area
        }
    }

    /// Switching-energy improvement of `self` over `other` as a fraction.
    pub fn power_improvement_over(&self, other: &FlowResult) -> f64 {
        if other.switching_energy == 0.0 {
            0.0
        } else {
            (other.switching_energy - self.switching_energy) / other.switching_energy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::{CellKind, Word};

    #[test]
    fn analyze_fills_all_metrics() {
        let mut netlist = Netlist::new("tiny");
        let a = netlist.add_input("a[0]");
        let b = netlist.add_input("b[0]");
        let outs = netlist.add_gate(CellKind::Ha, &[a, b]).unwrap();
        netlist.mark_output(outs[0]);
        netlist.mark_output(outs[1]);
        let map = WordMap::new(
            vec![Word::new("a", vec![a]), Word::new("b", vec![b])],
            Word::new("out", vec![outs[0], outs[1]]),
        );
        let spec = InputSpec::builder()
            .var("a", 1)
            .var("b", 1)
            .build()
            .unwrap();
        let lib = TechLibrary::unit();
        let result = FlowResult::analyze("test", netlist, map, &spec, &lib).unwrap();
        assert_eq!(result.flow, "test");
        assert!(result.delay > 0.0);
        assert!(result.area > 0.0);
        assert!(result.switching_energy > 0.0);
        assert!(result.power_mw > 0.0);
        // The carried compiled program is the one of the carried netlist.
        assert_eq!(result.compiled, result.netlist.compile().unwrap());
        assert_eq!(result.compiled.cell_count(), result.netlist.cell_count());
    }

    #[test]
    fn improvement_helpers() {
        let mut fast = FlowResult {
            flow: "fast".to_string(),
            netlist: Netlist::new("a"),
            word_map: WordMap::new(vec![], Word::new("out", vec![])),
            compiled: Netlist::new("a").compile().unwrap(),
            delay: 2.0,
            area: 50.0,
            switching_energy: 1.0,
            power_mw: 10.0,
        };
        let slow = FlowResult {
            flow: "slow".to_string(),
            netlist: Netlist::new("b"),
            word_map: WordMap::new(vec![], Word::new("out", vec![])),
            compiled: Netlist::new("b").compile().unwrap(),
            delay: 4.0,
            area: 100.0,
            switching_energy: 2.0,
            power_mw: 20.0,
        };
        assert!((fast.delay_improvement_over(&slow) - 0.5).abs() < 1e-12);
        assert!((fast.area_improvement_over(&slow) - 0.5).abs() < 1e-12);
        assert!((fast.power_improvement_over(&slow) - 0.5).abs() < 1e-12);
        fast.delay = 0.0;
        assert_eq!(slow.delay_improvement_over(&fast), 0.0);
    }
}
