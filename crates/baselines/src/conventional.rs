//! The conventional two-step RTL + logic synthesis baseline: operation-level module
//! binding with balanced addition trees.
//!
//! Every word-level operation of the expression tree is implemented by a closed module
//! from `dpsyn-modules` (carry-lookahead or ripple adder, Wallace or array multiplier),
//! so every intermediate result goes through its own carry-propagate adder — the
//! behaviour the paper's global carry-save formulation avoids. Chains of additions are
//! flattened and rebuilt as balanced binary trees, which is the standard "tree height
//! reduction" a conventional RTL optimiser performs.

use crate::flow::{BaselineError, FlowResult};
use dpsyn_ir::{Expr, InputSpec, IrError};
use dpsyn_modules::builders::{AdderKind, MultiplierKind};
use dpsyn_modules::{adder, zero_extend};
use dpsyn_netlist::{NetId, Netlist, Word, WordMap};
use dpsyn_tech::TechLibrary;
use std::collections::BTreeMap;

/// Synthesizes `expr` with the conventional operation-level flow and analyses the
/// result under the design's input characteristics.
///
/// # Errors
///
/// Returns an error when the expression references undeclared variables, when netlist
/// construction fails, or when an analysis fails.
pub fn conventional(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    tech: &TechLibrary,
) -> Result<FlowResult, BaselineError> {
    let (netlist, word_map) = conventional_netlist(expr, spec, width)?;
    FlowResult::analyze("conventional", netlist, word_map, spec, tech)
}

/// The synthesis step of [`conventional`] alone: builds the netlist and its
/// word-level interface **without running any analysis**.
///
/// Module binding never looks at the spec's arrival or probability profiles — only at
/// variable names and widths — so two design points that differ solely in their input
/// profiles synthesize structurally identical netlists. The exploration engine relies
/// on this to re-analyse profile-only re-runs through the incremental delta path
/// instead of a full timing + power bundle.
///
/// # Errors
///
/// Returns an error when the expression references undeclared variables or netlist
/// construction fails.
pub fn conventional_netlist(
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
) -> Result<(Netlist, WordMap), BaselineError> {
    let mut netlist = Netlist::new("conventional");
    let mut inputs: BTreeMap<String, Vec<NetId>> = BTreeMap::new();
    let mut input_words = Vec::new();
    for var in spec.vars() {
        let bits: Vec<NetId> = (0..var.width())
            .map(|bit| netlist.add_input(format!("{}[{}]", var.name(), bit)))
            .collect();
        input_words.push(Word::new(var.name(), bits.clone()));
        inputs.insert(var.name().to_string(), bits);
    }
    let mut builder = OperationBinder {
        netlist: &mut netlist,
        inputs: &inputs,
        width: width as usize,
    };
    let mut result = builder.generate(expr)?;
    result.truncate(width as usize);
    let padded = zero_extend(&mut netlist, &result, width as usize);
    for net in &padded {
        netlist.mark_output(*net);
    }
    let word_map = WordMap::new(input_words, Word::new("out", padded));
    Ok((netlist, word_map))
}

/// Recursive operation-to-module binder.
struct OperationBinder<'a> {
    netlist: &'a mut Netlist,
    inputs: &'a BTreeMap<String, Vec<NetId>>,
    width: usize,
}

impl OperationBinder<'_> {
    /// Picks the adder architecture a conventional flow would bind an addition of this
    /// width to: ripple for narrow words, carry-lookahead otherwise.
    fn adder_kind(width: usize) -> AdderKind {
        if width <= 4 {
            AdderKind::Ripple
        } else {
            AdderKind::CarryLookahead
        }
    }

    /// Picks the multiplier architecture: array for narrow operands, Wallace otherwise.
    fn multiplier_kind(width: usize) -> MultiplierKind {
        if width <= 4 {
            MultiplierKind::Array
        } else {
            MultiplierKind::Wallace
        }
    }

    fn generate(&mut self, expr: &Expr) -> Result<Vec<NetId>, BaselineError> {
        match expr {
            Expr::Var(name) => self
                .inputs
                .get(name)
                .cloned()
                .ok_or_else(|| BaselineError::Ir(IrError::UnknownVariable(name.clone()))),
            Expr::Const(value) => {
                let modulus = 1i128 << self.width;
                let folded = i128::from(*value).rem_euclid(modulus) as u64;
                Ok((0..self.width)
                    .map(|bit| self.netlist.constant((folded >> bit) & 1 == 1))
                    .collect())
            }
            Expr::Add(_, _) => {
                // Flatten the addition chain and rebuild it as a balanced binary tree.
                let mut terms = Vec::new();
                flatten_additions(expr, &mut terms);
                let mut words: Vec<Vec<NetId>> = terms
                    .iter()
                    .map(|term| self.generate(term))
                    .collect::<Result<_, _>>()?;
                while words.len() > 1 {
                    let mut next = Vec::with_capacity(words.len().div_ceil(2));
                    let mut iter = words.into_iter();
                    while let Some(first) = iter.next() {
                        match iter.next() {
                            Some(second) => next.push(self.add(&first, &second)?),
                            None => next.push(first),
                        }
                    }
                    words = next;
                }
                Ok(words.pop().expect("at least one addition term"))
            }
            Expr::Sub(lhs, rhs) => {
                let left = self.generate(lhs)?;
                let right = self.generate(rhs)?;
                Ok(adder::subtract(self.netlist, &left, &right, self.width)?)
            }
            Expr::Neg(inner) => {
                let word = self.generate(inner)?;
                Ok(adder::negate(self.netlist, &word, self.width)?)
            }
            Expr::Mul(lhs, rhs) => {
                let left = self.generate(lhs)?;
                let right = self.generate(rhs)?;
                let kind = Self::multiplier_kind(left.len().max(right.len()));
                let mut product = kind.generate(self.netlist, &left, &right)?;
                product.truncate(self.width);
                Ok(product)
            }
            Expr::Shl(inner, amount) => {
                let word = self.generate(inner)?;
                let mut shifted: Vec<NetId> = vec![self.netlist.constant(false); *amount as usize];
                shifted.extend(word);
                shifted.truncate(self.width);
                Ok(shifted)
            }
        }
    }

    fn add(&mut self, a: &[NetId], b: &[NetId]) -> Result<Vec<NetId>, BaselineError> {
        let kind = Self::adder_kind(a.len().max(b.len()));
        let mut sum = kind.generate(self.netlist, a, b, None)?;
        sum.truncate(self.width);
        Ok(sum)
    }
}

/// Flattens nested additions into a term list (stops at any non-addition node).
fn flatten_additions<'e>(expr: &'e Expr, terms: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Add(lhs, rhs) => {
            flatten_additions(lhs, terms);
            flatten_additions(rhs, terms);
        }
        other => terms.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::parse_expr;
    use dpsyn_sim::check_equivalence;

    fn check(source: &str, spec: &InputSpec, width: u32) -> FlowResult {
        let expr = parse_expr(source).unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let result = conventional(&expr, spec, width, &lib).unwrap();
        check_equivalence(
            &result.netlist,
            &result.word_map,
            &expr,
            spec,
            width,
            200,
            23,
        )
        .unwrap_or_else(|error| panic!("{source}: {error}"));
        result
    }

    #[test]
    fn additions_subtractions_and_constants() {
        let spec = InputSpec::builder()
            .var("a", 4)
            .var("b", 4)
            .var("c", 4)
            .build()
            .unwrap();
        check("a + b + c", &spec, 6);
        check("a - b + 9", &spec, 6);
        check("a - b - c", &spec, 6);
        check("-a + 30", &spec, 6);
    }

    #[test]
    fn multiplications_and_shifts() {
        let spec = InputSpec::builder()
            .var("a", 3)
            .var("b", 3)
            .var("c", 3)
            .build()
            .unwrap();
        check("a*b + c", &spec, 7);
        check("a*b - b*c", &spec, 8);
        check("(a << 2) + b", &spec, 6);
        check("a*a*a", &spec, 9);
    }

    #[test]
    fn long_addition_chains_are_balanced() {
        let spec = InputSpec::builder()
            .var("a", 6)
            .var("b", 6)
            .var("c", 6)
            .var("d", 6)
            .var("e", 6)
            .var("f", 6)
            .var("g", 6)
            .var("h", 6)
            .build()
            .unwrap();
        let result = check("a + b + c + d + e + f + g + h", &spec, 9);
        // A balanced 8-leaf tree has three adder levels; a left-leaning chain would have
        // seven. The structural depth must therefore stay well below the chain depth.
        let serial_depth_estimate = 7 * 6; // 7 ripple adders of 6+ bits
        assert!(result.netlist.logic_depth() < serial_depth_estimate);
    }

    #[test]
    fn unknown_variable_is_reported() {
        let spec = InputSpec::builder().var("a", 3).build().unwrap();
        let expr = parse_expr("a + ghost").unwrap();
        let result = conventional(&expr, &spec, 5, &TechLibrary::unit());
        assert!(matches!(result, Err(BaselineError::Ir(_))));
    }

    #[test]
    fn paper_style_polynomial_matches_golden_model() {
        let spec = InputSpec::builder()
            .var("x", 4)
            .var("y", 4)
            .var("z", 4)
            .build()
            .unwrap();
        check("x + y - z + x*y - y*z + 10", &spec, 9);
        check("x*x + 2*x*y + y*y + 2*x + 2*y + 1", &spec, 10);
    }
}
