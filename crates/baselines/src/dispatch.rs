//! Uniform dispatch over every synthesis flow of the evaluation.
//!
//! The table/figure harness and the design-space exploration engine both need to run
//! "one of the six flows" data-driven rather than calling six differently-shaped
//! functions. [`Flow`] names each flow as a value (the `FaRandom` variant carries its
//! seed so a run is reproducible from the value alone) and [`Flow::run`] dispatches to
//! the corresponding free function with the shared
//! `(expr, spec, width, tech) -> FlowResult` signature.

use crate::flow::{BaselineError, FlowResult};
use crate::{
    conventional, conventional_netlist, csa_opt, csa_opt_netlist, fa_alp, fa_anneal, fa_aot,
    fa_random, wallace_fixed,
};
use dpsyn_core::Objective;
use dpsyn_ir::{Expr, InputSpec};
use dpsyn_netlist::{Netlist, WordMap};
use dpsyn_tech::TechLibrary;
use std::fmt;

/// The outcome of [`Flow::synthesize`]: the synthesis step of a flow, decoupled from
/// its analyses where the flow permits it.
///
/// The two module-binding flows (`conventional`, `csa_opt`) build their netlists
/// without ever running timing or power, so they can hand back an
/// [`FlowSynthesis::Unanalyzed`] netlist for the caller to analyse — possibly through
/// the incremental delta path when a structurally identical program is already
/// cached. The FA-tree flows analyse *during* construction (arrival-ordered and
/// probability-ordered selection need live analysis values), so splitting would only
/// run the analyses twice; they return the finished [`FlowSynthesis::Analyzed`]
/// result instead.
#[derive(Debug, Clone)]
pub enum FlowSynthesis {
    /// A bare synthesized netlist; no analysis has run yet.
    Unanalyzed(Box<SynthesizedParts>),
    /// A fully analysed result (flows whose engines analyse during construction).
    Analyzed(Box<FlowResult>),
}

/// The payload of [`FlowSynthesis::Unanalyzed`]: everything a later (full or delta)
/// analysis needs from the synthesis step.
#[derive(Debug, Clone)]
pub struct SynthesizedParts {
    /// The flow name, as [`FlowResult::flow`] would carry it.
    pub flow: &'static str,
    /// The synthesized netlist.
    pub netlist: Netlist,
    /// Its word-level interface.
    pub word_map: WordMap,
}

/// One of the seven synthesis flows of the evaluation (the six DAC 2000 flows plus
/// the delta-powered `fa_anneal` local search), as a dispatchable value.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use dpsyn_baselines::Flow;
/// use dpsyn_ir::{parse_expr, InputSpec};
/// use dpsyn_tech::TechLibrary;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let expr = parse_expr("a*b + c")?;
/// let spec = InputSpec::builder().var("a", 4).var("b", 4).var("c", 4).build()?;
/// let lib = TechLibrary::lcbg10pv_like();
/// let ours = Flow::FaAot.run(&expr, &spec, 9, &lib)?;
/// let rival = Flow::Conventional.run(&expr, &spec, 9, &lib)?;
/// assert!(ours.delay <= rival.delay + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Conventional two-step flow: closed adder/multiplier modules, balanced chains.
    Conventional,
    /// Word-level delay-optimal carry-save allocation (ICCAD'99 reference flow).
    CsaOpt,
    /// Global FA-tree with the fixed, arrival-blind Wallace row-order selection.
    WallaceFixed,
    /// Global FA-tree with pseudo-random FA input selection (the paper's FA_random);
    /// the embedded seed makes the flow a pure function of its inputs.
    FaRandom(u64),
    /// The paper's FA_AOT: earliest-arrival selection, timing-optimal.
    FaAot,
    /// The paper's FA_ALP: largest-|q| selection, low-power.
    FaAlp,
    /// Delta-powered greedy local search seeded from the `fa_random` allocation;
    /// the embedded seed fixes both the start netlist and the move trajectory, so
    /// the flow is a pure function of its inputs.
    FaAnneal(u64),
}

impl Flow {
    /// The three rival flows the paper's FA_AOT is compared against in Table 1.
    pub const TIMING_RIVALS: [Flow; 2] = [Flow::Conventional, Flow::CsaOpt];

    /// Every flow with a fixed identity (excludes `FaRandom`, which needs a seed).
    pub const NAMED: [Flow; 5] = [
        Flow::Conventional,
        Flow::CsaOpt,
        Flow::WallaceFixed,
        Flow::FaAot,
        Flow::FaAlp,
    ];

    /// Short identifier used in tables and summaries (seed-independent).
    pub fn name(&self) -> &'static str {
        match self {
            Flow::Conventional => "conventional",
            Flow::CsaOpt => "csa_opt",
            Flow::WallaceFixed => "wallace_fixed",
            Flow::FaRandom(_) => "fa_random",
            Flow::FaAot => "fa_aot",
            Flow::FaAlp => "fa_alp",
            Flow::FaAnneal(_) => "fa_anneal",
        }
    }

    /// The optimisation objective this flow targets: `Power` for the two
    /// probability-driven selections, `Timing` for everything else.
    pub fn objective(&self) -> Objective {
        match self {
            Flow::FaRandom(_) | Flow::FaAlp | Flow::FaAnneal(_) => Objective::Power,
            Flow::Conventional | Flow::CsaOpt | Flow::WallaceFixed | Flow::FaAot => {
                Objective::Timing
            }
        }
    }

    /// Runs the flow on one design point.
    ///
    /// # Errors
    ///
    /// Returns an error if lowering, synthesis or any analysis fails.
    pub fn run(
        &self,
        expr: &Expr,
        spec: &InputSpec,
        width: u32,
        tech: &TechLibrary,
    ) -> Result<FlowResult, BaselineError> {
        match self {
            Flow::Conventional => conventional(expr, spec, width, tech),
            Flow::CsaOpt => csa_opt(expr, spec, width, tech),
            Flow::WallaceFixed => wallace_fixed(expr, spec, width, tech),
            Flow::FaRandom(seed) => fa_random(expr, spec, width, tech, *seed),
            Flow::FaAot => fa_aot(expr, spec, width, tech),
            Flow::FaAlp => fa_alp(expr, spec, width, tech),
            Flow::FaAnneal(seed) => fa_anneal(expr, spec, width, tech, *seed),
        }
    }

    /// Runs only the synthesis step of the flow where that is cheaper than the full
    /// [`Flow::run`], for callers that analyse (or delta-re-analyse) separately.
    ///
    /// For `Conventional` and `CsaOpt` this skips the whole timing + power + area
    /// bundle; for every other flow it is equivalent to [`Flow::run`] and returns the
    /// finished result. In both cases, following an `Unanalyzed` outcome with
    /// [`FlowResult::analyze`] reproduces [`Flow::run`] bit for bit.
    ///
    /// # Errors
    ///
    /// Returns an error if lowering, synthesis — or, for the `Analyzed` flows, any
    /// analysis — fails.
    pub fn synthesize(
        &self,
        expr: &Expr,
        spec: &InputSpec,
        width: u32,
        tech: &TechLibrary,
    ) -> Result<FlowSynthesis, BaselineError> {
        match self {
            Flow::Conventional => {
                let (netlist, word_map) = conventional_netlist(expr, spec, width)?;
                Ok(FlowSynthesis::Unanalyzed(Box::new(SynthesizedParts {
                    flow: "conventional",
                    netlist,
                    word_map,
                })))
            }
            Flow::CsaOpt => {
                let (netlist, word_map) = csa_opt_netlist(expr, spec, width, tech)?;
                Ok(FlowSynthesis::Unanalyzed(Box::new(SynthesizedParts {
                    flow: "csa_opt",
                    netlist,
                    word_map,
                })))
            }
            _ => self
                .run(expr, spec, width, tech)
                .map(|result| FlowSynthesis::Analyzed(Box::new(result))),
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Flow::FaRandom(seed) => write!(f, "fa_random(seed={seed})"),
            Flow::FaAnneal(seed) => write!(f, "fa_anneal(seed={seed})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_ir::parse_expr;

    #[test]
    fn dispatch_matches_the_free_functions() {
        let expr = parse_expr("a*b + c - 1").unwrap();
        let spec = InputSpec::builder()
            .var_with_arrival("a", 3, 1.0)
            .var("b", 3)
            .var_with_probability("c", 3, 0.2)
            .build()
            .unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let direct = [
            conventional(&expr, &spec, 8, &lib).unwrap(),
            csa_opt(&expr, &spec, 8, &lib).unwrap(),
            wallace_fixed(&expr, &spec, 8, &lib).unwrap(),
            fa_random(&expr, &spec, 8, &lib, 11).unwrap(),
            fa_aot(&expr, &spec, 8, &lib).unwrap(),
            fa_alp(&expr, &spec, 8, &lib).unwrap(),
            fa_anneal(&expr, &spec, 8, &lib, 11).unwrap(),
        ];
        let flows = [
            Flow::Conventional,
            Flow::CsaOpt,
            Flow::WallaceFixed,
            Flow::FaRandom(11),
            Flow::FaAot,
            Flow::FaAlp,
            Flow::FaAnneal(11),
        ];
        for (flow, reference) in flows.iter().zip(&direct) {
            let dispatched = flow.run(&expr, &spec, 8, &lib).unwrap();
            assert_eq!(dispatched.flow, reference.flow, "{flow}");
            // Dispatch must be bit-identical to the direct call, not merely close.
            assert_eq!(dispatched.delay, reference.delay, "{flow}");
            assert_eq!(dispatched.area, reference.area, "{flow}");
            assert_eq!(
                dispatched.switching_energy, reference.switching_energy,
                "{flow}"
            );
            assert_eq!(dispatched.power_mw, reference.power_mw, "{flow}");
        }
    }

    #[test]
    fn synthesize_then_analyze_matches_run_bit_for_bit() {
        let expr = parse_expr("a*b + c - 1").unwrap();
        let spec = InputSpec::builder()
            .var_with_arrival("a", 3, 1.0)
            .var("b", 3)
            .var_with_probability("c", 3, 0.2)
            .build()
            .unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        for flow in [
            Flow::Conventional,
            Flow::CsaOpt,
            Flow::WallaceFixed,
            Flow::FaRandom(11),
            Flow::FaAot,
            Flow::FaAlp,
            Flow::FaAnneal(11),
        ] {
            let reference = flow.run(&expr, &spec, 8, &lib).unwrap();
            let result = match flow.synthesize(&expr, &spec, 8, &lib).unwrap() {
                FlowSynthesis::Unanalyzed(parts) => {
                    // Only the two module-binding flows may skip analysis.
                    assert!(matches!(flow, Flow::Conventional | Flow::CsaOpt), "{flow}");
                    FlowResult::analyze(parts.flow, parts.netlist, parts.word_map, &spec, &lib)
                        .unwrap()
                }
                FlowSynthesis::Analyzed(result) => *result,
            };
            assert_eq!(result.flow, reference.flow, "{flow}");
            assert_eq!(result.delay.to_bits(), reference.delay.to_bits(), "{flow}");
            assert_eq!(result.area.to_bits(), reference.area.to_bits(), "{flow}");
            assert_eq!(
                result.switching_energy.to_bits(),
                reference.switching_energy.to_bits(),
                "{flow}"
            );
            assert_eq!(
                result.power_mw.to_bits(),
                reference.power_mw.to_bits(),
                "{flow}"
            );
            assert_eq!(result.netlist, reference.netlist, "{flow}");
            assert_eq!(result.word_map, reference.word_map, "{flow}");
            assert_eq!(result.compiled, reference.compiled, "{flow}");
        }
    }

    #[test]
    fn names_objectives_and_display_are_stable() {
        assert_eq!(Flow::Conventional.name(), "conventional");
        assert_eq!(Flow::FaRandom(7).name(), "fa_random");
        assert_eq!(Flow::FaRandom(7).to_string(), "fa_random(seed=7)");
        assert_eq!(Flow::FaAnneal(7).name(), "fa_anneal");
        assert_eq!(Flow::FaAnneal(7).to_string(), "fa_anneal(seed=7)");
        assert_eq!(Flow::FaAot.to_string(), "fa_aot");
        assert_eq!(Flow::FaAot.objective(), Objective::Timing);
        assert_eq!(Flow::WallaceFixed.objective(), Objective::Timing);
        assert_eq!(Flow::FaAlp.objective(), Objective::Power);
        assert_eq!(Flow::FaRandom(7).objective(), Objective::Power);
        assert_eq!(Flow::FaAnneal(7).objective(), Objective::Power);
        assert_eq!(Flow::NAMED.len(), 5);
        assert_eq!(Flow::TIMING_RIVALS.len(), 2);
    }
}
