//! Facade crate for the dpsyn workspace.
//!
//! This crate re-exports every layer of the datapath-synthesis stack so that the
//! repository-level integration tests (`tests/`) and examples (`examples/`) have a
//! single dependency root, and so that downstream users can depend on one crate:
//!
//! ```
//! use dpsyn::core::{Objective, Synthesizer};
//! use dpsyn::ir::{parse_expr, InputSpec};
//!
//! let expr = parse_expr("a + b").expect("parse");
//! let spec = dpsyn::ir::InputSpec::builder()
//!     .var("a", 4)
//!     .var("b", 4)
//!     .build()
//!     .expect("spec");
//! let design = Synthesizer::new(&expr, &spec)
//!     .objective(Objective::Timing)
//!     .output_width(5)
//!     .run()
//!     .expect("synthesis");
//! assert!(design.netlist().cell_count() > 0);
//! ```
//!
//! The layering (each crate only depends on crates above it):
//!
//! | Layer | Crate | Role |
//! |---|---|---|
//! | IR | [`ir`] | expressions, polynomials, addend matrices |
//! | Structure | [`netlist`] | gate-level netlist graph + Verilog emission |
//! | Technology | [`tech`] | cell delay/energy libraries |
//! | Validation | [`sim`] | logic simulation + equivalence checking |
//! | Generators | [`modules`] | word-level adder/multiplier builders |
//! | Analysis | [`power`], [`timing`] | probability & static timing analysis |
//! | Engine | [`core`] | the FA-tree allocation synthesizer |
//! | Evaluation | [`designs`], [`baselines`], [`bench`] | workloads, rival flows, tables |
//! | Exploration | [`explore`] | multi-threaded design-space sweeps + Pareto reduction |

pub use dpsyn_baselines as baselines;
pub use dpsyn_bench as bench;
pub use dpsyn_core as core;
pub use dpsyn_designs as designs;
pub use dpsyn_explore as explore;
pub use dpsyn_ir as ir;
pub use dpsyn_modules as modules;
pub use dpsyn_netlist as netlist;
pub use dpsyn_power as power;
pub use dpsyn_sim as sim;
pub use dpsyn_tech as tech;
pub use dpsyn_timing as timing;
