//! Property-based structural tests for the netlist graph.

use dpsyn_netlist::{CellKind, Netlist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomly grown DAGs of gates always validate, topologically sort, and emit one
    /// assign per cell output in Verilog.
    #[test]
    fn random_dags_are_valid(choices in prop::collection::vec((0usize..10, 0usize..64, 0usize..64, 0usize..64), 1..60)) {
        let palette = [
            CellKind::Fa, CellKind::Ha, CellKind::And2, CellKind::And3, CellKind::Or2,
            CellKind::Xor2, CellKind::Xor3, CellKind::Not, CellKind::Buf, CellKind::Mux2,
        ];
        let mut netlist = Netlist::new("random_dag");
        let mut nets = vec![netlist.add_input("a"), netlist.add_input("b"), netlist.add_input("c")];
        for (kind_index, i0, i1, i2) in choices {
            let kind = palette[kind_index];
            let pick = |index: usize| nets[index % nets.len()];
            let inputs: Vec<_> = [i0, i1, i2][..kind.input_count()]
                .iter()
                .map(|index| pick(*index))
                .collect();
            let outputs = netlist.add_gate(kind, &inputs).expect("gate");
            nets.extend(outputs);
        }
        let last = *nets.last().expect("at least the inputs");
        netlist.mark_output(last);
        prop_assert!(netlist.validate().is_ok());
        let order = netlist.topological_order().expect("acyclic by construction");
        prop_assert_eq!(order.len(), netlist.cell_count());
        // Every cell appears after the drivers of its inputs.
        let mut position = vec![usize::MAX; netlist.cell_count()];
        for (rank, cell) in order.iter().enumerate() {
            position[cell.index()] = rank;
        }
        for (id, cell) in netlist.cells() {
            for input in cell.inputs() {
                if let Some((driver, _)) = netlist.net(*input).driver() {
                    prop_assert!(position[driver.index()] < position[id.index()]);
                }
            }
        }
        let verilog = netlist.to_verilog();
        let adders = netlist.count_kind(CellKind::Fa) + netlist.count_kind(CellKind::Ha);
        prop_assert_eq!(verilog.matches("assign").count(), netlist.cell_count() + adders);
    }
}
