//! Property-based structural tests for the netlist graph.

use dpsyn_netlist::{CellId, CellKind, NetId, Netlist};
use proptest::prelude::*;

/// Grows the deterministic gate DAG the mutation properties start from.
fn seed_dag(choices: &[(usize, usize, usize, usize)]) -> Netlist {
    let palette = [
        CellKind::Fa,
        CellKind::Ha,
        CellKind::And2,
        CellKind::And3,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xor3,
        CellKind::Not,
        CellKind::Buf,
        CellKind::Mux2,
    ];
    let mut netlist = Netlist::new("random_dag");
    let mut nets = vec![
        netlist.add_input("a"),
        netlist.add_input("b"),
        netlist.add_input("c"),
    ];
    for (kind_index, i0, i1, i2) in choices {
        let kind = palette[kind_index % palette.len()];
        let pick = |index: usize| nets[index % nets.len()];
        let inputs: Vec<_> = [*i0, *i1, *i2][..kind.input_count()]
            .iter()
            .map(|index| pick(*index))
            .collect();
        let outputs = netlist.add_gate(kind, &inputs).expect("gate");
        nets.extend(outputs);
    }
    let last = *nets.last().expect("at least the inputs");
    netlist.mark_output(last);
    netlist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomly grown DAGs of gates always validate, topologically sort, and emit one
    /// assign per cell output in Verilog.
    #[test]
    fn random_dags_are_valid(choices in prop::collection::vec((0usize..10, 0usize..64, 0usize..64, 0usize..64), 1..60)) {
        let netlist = seed_dag(&choices);
        prop_assert!(netlist.validate().is_ok());
        let order = netlist.topological_order().expect("acyclic by construction");
        prop_assert_eq!(order.len(), netlist.cell_count());
        // Every cell appears after the drivers of its inputs.
        let mut position = vec![usize::MAX; netlist.cell_count()];
        for (rank, cell) in order.iter().enumerate() {
            position[cell.index()] = rank;
        }
        for (id, cell) in netlist.cells() {
            for input in cell.inputs() {
                if let Some((driver, _)) = netlist.net(*input).driver() {
                    prop_assert!(position[driver.index()] < position[id.index()]);
                }
            }
        }
        let verilog = netlist.to_verilog();
        let adders = netlist.count_kind(CellKind::Fa) + netlist.count_kind(CellKind::Ha);
        prop_assert_eq!(verilog.matches("assign").count(), netlist.cell_count() + adders);
    }

    /// Random mutation sequences through the local-search mutators — `rewire_input`
    /// guarded by `rewire_would_cycle`, plus arity-preserving `replace_cell_kind` —
    /// never create a combinational cycle, never orphan a primary output, and move
    /// `structural_hash` exactly when the structure moved.
    #[test]
    fn guarded_mutation_sequences_preserve_graph_invariants(
        choices in prop::collection::vec((0usize..10, 0usize..64, 0usize..64, 0usize..64), 5..40),
        moves in prop::collection::vec((any::<bool>(), 0usize..256, 0usize..4, 0usize..256), 1..40),
    ) {
        let mut netlist = seed_dag(&choices);
        let cell_ids: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();
        let net_ids: Vec<NetId> = netlist.nets().map(|(id, _)| id).collect();
        let outputs = netlist.outputs().to_vec();
        // Same input/output arity, different gate: the only legal replacements.
        let replacement = |kind: CellKind| match kind {
            CellKind::And2 => Some(CellKind::Or2),
            CellKind::Or2 => Some(CellKind::Xor2),
            CellKind::Xor2 => Some(CellKind::And2),
            CellKind::And3 => Some(CellKind::Xor3),
            CellKind::Xor3 => Some(CellKind::Mux2),
            CellKind::Mux2 => Some(CellKind::And3),
            CellKind::Not => Some(CellKind::Buf),
            CellKind::Buf => Some(CellKind::Not),
            _ => None,
        };
        for (is_rewire, cell_raw, pin_raw, net_raw) in moves {
            let cell = cell_ids[cell_raw % cell_ids.len()];
            let hash_before = netlist.structural_hash();
            let mutated = if is_rewire {
                let pin = pin_raw % netlist.cell(cell).inputs().len();
                let old = netlist.cell(cell).inputs()[pin];
                let new = net_ids[net_raw % net_ids.len()];
                if new != old && !netlist.rewire_would_cycle(cell, new) {
                    netlist.rewire_input(cell, pin, new).expect("guarded rewire succeeds");
                    true
                } else {
                    false
                }
            } else if let Some(kind) = replacement(netlist.cell(cell).kind()) {
                netlist.replace_cell_kind(cell, kind).expect("arity-preserving replace succeeds");
                true
            } else {
                // Re-stamping the current kind is legal and a structural no-op.
                let kind = netlist.cell(cell).kind();
                netlist.replace_cell_kind(cell, kind).expect("identity replace succeeds");
                false
            };
            // The hash moves exactly when the structure moved.
            prop_assert_eq!(netlist.structural_hash() != hash_before, mutated);
            // Guarded sequences keep the graph valid and acyclic at every step...
            prop_assert!(netlist.validate().is_ok());
            let compiled = netlist.compile().expect("guarded mutations never close a cycle");
            prop_assert_eq!(compiled.structural_hash(), netlist.structural_hash());
            // ...and never orphan a primary output: the output list is untouched
            // and every listed net still has a driver or is a primary input.
            prop_assert_eq!(netlist.outputs(), outputs.as_slice());
            for output in &outputs {
                prop_assert!(
                    netlist.net(*output).driver().is_some()
                        || netlist.inputs().contains(output),
                    "primary output {} lost its driver", output
                );
            }
        }
    }
}
