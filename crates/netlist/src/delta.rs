//! Incremental (delta) re-analysis state over a compiled program.
//!
//! The compiled-analysis layer made every analysis a single pass over one shared
//! [`CompiledNetlist`]. This module adds the state that makes *re*-analysis cheaper
//! than a full pass when only a small part of the design changed:
//!
//! * [`InputDelta`] names the primary-input profile values to (re)apply — changed
//!   arrival times and/or signal probabilities;
//! * [`DirtyWorklist`] is a levelized dirty-cone worklist over the fanout CSR: it is
//!   seeded from changed primary inputs (or a changed cell set after a local rewire),
//!   advanced level by level, and **terminates early** along any branch where a
//!   recomputed net value is bit-identical to the stored one;
//! * [`DeltaState`] bundles the persistent per-net value arrays of the two analysis
//!   channels — arrival times ([`TimingChannel`]) and signal probabilities /
//!   per-cell energies ([`PowerChannel`]) — each with its own worklist, so a
//!   timing-only delta never touches the power cone and vice versa.
//!
//! The propagation semantics (how a cell's outputs are recomputed from its inputs)
//! live in `dpsyn-timing` and `dpsyn-power`, which drive the worklist through
//! [`DirtyWorklist::drain`] with a recompute closure; this crate only owns the
//! structural machinery. The invariant every consumer relies on: as long as a dirty
//! cell always rewrites *all* of its outputs (values **and** auxiliary per-net data)
//! and reports exactly the output pins whose stored value changed bits, the arrays
//! after a drain are bit-identical to the arrays a fresh full pass would produce.

use crate::cell::CellId;
use crate::compiled::{CompiledNetlist, CompiledOp};
use crate::graph::NetId;

/// A set of primary-input profile values to apply before a delta re-analysis.
///
/// Entries are "set this input's value to `v`" assignments; inputs that are not
/// mentioned keep their current value in the [`DeltaState`]. Callers may freely
/// include unchanged values — the delta entry points compare bits and skip them — so
/// the cheapest correct usage is to push the full profile of the new design point.
/// The buffers are reusable across points via [`InputDelta::clear`].
#[derive(Debug, Clone, Default)]
pub struct InputDelta {
    arrivals: Vec<(NetId, f64)>,
    probabilities: Vec<(NetId, f64)>,
}

impl InputDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        InputDelta::default()
    }

    /// Empties both value lists, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.arrivals.clear();
        self.probabilities.clear();
    }

    /// Whether the delta carries no assignments at all.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty() && self.probabilities.is_empty()
    }

    /// Adds an arrival-time assignment for a primary input net.
    pub fn set_arrival(&mut self, net: NetId, arrival: f64) {
        self.arrivals.push((net, arrival));
    }

    /// Adds a signal-probability assignment for a primary input net.
    pub fn set_probability(&mut self, net: NetId, probability: f64) {
        self.probabilities.push((net, probability));
    }

    /// The arrival-time assignments, in insertion order.
    pub fn arrivals(&self) -> &[(NetId, f64)] {
        &self.arrivals
    }

    /// The signal-probability assignments, in insertion order.
    pub fn probabilities(&self) -> &[(NetId, f64)] {
        &self.probabilities
    }
}

/// A levelized dirty-cone worklist over a compiled program.
///
/// Cells are enqueued by their op index into per-level buckets and drained in level
/// order, so a cell is recomputed at most once per delta even when several of its
/// inputs changed. Enqueueing is idempotent. The fanout CSR of the program provides
/// the readers to wake when a recomputed output actually changed.
#[derive(Debug, Clone)]
pub struct DirtyWorklist {
    /// Op index of every cell, indexed by [`CellId::index`].
    op_of_cell: Vec<u32>,
    /// Level of every op, indexed by op index.
    op_level: Vec<u32>,
    /// Whether an op is currently enqueued, indexed by op index.
    queued: Vec<bool>,
    /// Per-level queues of op indices.
    levels: Vec<Vec<u32>>,
    /// Total number of queued ops (fast emptiness check).
    pending: usize,
}

impl DirtyWorklist {
    /// Creates an empty worklist sized for `compiled`.
    pub fn new(compiled: &CompiledNetlist) -> Self {
        let mut worklist = DirtyWorklist {
            op_of_cell: Vec::new(),
            op_level: Vec::new(),
            queued: Vec::new(),
            levels: Vec::new(),
            pending: 0,
        };
        worklist.rebuild(compiled);
        worklist
    }

    /// Re-derives the level tables from a (re)compiled program and empties the
    /// queues. Used by [`DeltaState::rebind`] after a structural edit.
    pub fn rebuild(&mut self, compiled: &CompiledNetlist) {
        let cell_count = compiled.cell_count();
        self.op_of_cell.clear();
        self.op_of_cell.resize(cell_count, 0);
        self.op_level.clear();
        self.op_level.resize(cell_count, 0);
        self.queued.clear();
        self.queued.resize(cell_count, false);
        self.levels.resize_with(compiled.level_count(), Vec::new);
        for queue in &mut self.levels {
            queue.clear();
        }
        self.pending = 0;
        let mut index = 0u32;
        for level in 0..compiled.level_count() {
            for op in compiled.level(level) {
                self.op_of_cell[op.cell.index()] = index;
                self.op_level[index as usize] = level as u32;
                index += 1;
            }
        }
    }

    /// Whether no cell is queued.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Empties the queues (used before a full re-prime of the value arrays).
    pub fn reset(&mut self) {
        if self.pending == 0 {
            return;
        }
        for queue in &mut self.levels {
            for &op in queue.iter() {
                self.queued[op as usize] = false;
            }
            queue.clear();
        }
        self.pending = 0;
    }

    fn enqueue(&mut self, op_index: u32) {
        let slot = &mut self.queued[op_index as usize];
        if !*slot {
            *slot = true;
            self.levels[self.op_level[op_index as usize] as usize].push(op_index);
            self.pending += 1;
        }
    }

    /// Enqueues every cell reading `net` (the seed step for a changed input value).
    pub fn seed_readers(&mut self, compiled: &CompiledNetlist, net: NetId) {
        for (reader, _) in compiled.fanout(net) {
            self.enqueue(self.op_of_cell[reader.index()]);
        }
    }

    /// Enqueues a single cell (the seed step for a changed cell after a rewire).
    pub fn seed_cell(&mut self, cell: CellId) {
        self.enqueue(self.op_of_cell[cell.index()]);
    }

    /// Drains the worklist level by level, calling `recompute` on every dirty op.
    ///
    /// `recompute` must rewrite the op's outputs in the caller's value arrays and
    /// return a bitmask of the output *pins* whose stored value changed bits; the
    /// worklist then wakes the readers of exactly those nets. Returning `0`
    /// terminates the cone early along that branch. Returns the number of ops
    /// recomputed.
    pub fn drain(
        &mut self,
        compiled: &CompiledNetlist,
        mut recompute: impl FnMut(&CompiledOp) -> u8,
    ) -> usize {
        let mut processed = 0;
        if self.pending == 0 {
            return processed;
        }
        for level in 0..self.levels.len() {
            if self.pending == 0 {
                break;
            }
            // Take the bucket out so enqueueing into deeper levels (every reader of a
            // changed net sits at a strictly greater level) never aliases it.
            let queue = std::mem::take(&mut self.levels[level]);
            for &op_index in &queue {
                self.queued[op_index as usize] = false;
                self.pending -= 1;
                processed += 1;
                let op = &compiled.ops()[op_index as usize];
                let changed = recompute(op);
                if changed == 0 {
                    continue;
                }
                for (pin, net) in op.output_nets().iter().enumerate() {
                    if changed & (1 << pin) != 0 {
                        self.seed_readers(compiled, *net);
                    }
                }
            }
            // Put the emptied bucket back to keep its capacity for the next delta.
            let mut queue = queue;
            queue.clear();
            self.levels[level] = queue;
        }
        processed
    }
}

/// The persistent timing channel: per-net arrival times plus the critical-path
/// predecessor links, and the dirty worklist that re-propagates them.
///
/// Owned by [`DeltaState`]; filled by `dpsyn-timing`'s full prime and mutated by its
/// `rerun_delta`. The arrays are indexed by [`NetId::index`].
#[derive(Debug, Clone)]
pub struct TimingChannel {
    /// Per-net arrival times (the array a fresh timing pass would produce).
    pub arrival: Vec<f64>,
    /// Per-net worst-path predecessor links for critical-path reconstruction.
    pub worst_predecessor: Vec<Option<NetId>>,
    /// The channel's dirty-cone worklist.
    pub worklist: DirtyWorklist,
    /// Whether a full pass has primed the arrays (deltas require a primed channel).
    pub primed: bool,
}

/// The persistent power channel: per-net signal probabilities, per-cell energies and
/// the running totals, plus the dirty worklist that re-propagates them.
///
/// Owned by [`DeltaState`]; filled by `dpsyn-power`'s full prime and mutated by its
/// `rerun_delta`.
#[derive(Debug, Clone)]
pub struct PowerChannel {
    /// Per-net signal probabilities, indexed by [`NetId::index`].
    pub probability: Vec<f64>,
    /// Per-cell switching energies, indexed by [`CellId::index`].
    pub cell_energy: Vec<f64>,
    /// The weighted total switching energy of the last (re)run.
    pub total_energy: f64,
    /// The unweighted total switching activity of the last (re)run.
    pub total_activity: f64,
    /// The channel's dirty-cone worklist.
    pub worklist: DirtyWorklist,
    /// Whether a full pass has primed the arrays (deltas require a primed channel).
    pub primed: bool,
}

/// Persistent per-program re-analysis state: the companion of a [`CompiledNetlist`]
/// that carries analysis values *across* runs so the next run only pays for the
/// affected cone.
///
/// A `DeltaState` is bound to one compiled program: every array is sized for its net
/// and cell counts, and the worklists encode its levelization. The timing and power
/// channels are independent — an arrival-only delta leaves the power channel (and its
/// totals) untouched, which is what makes skew sweeps cheap.
///
/// # Example
///
/// ```
/// use dpsyn_netlist::{CellKind, DeltaState, Netlist};
///
/// let mut netlist = Netlist::new("chain");
/// let a = netlist.add_input("a");
/// let b = netlist.add_input("b");
/// let x = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
/// netlist.mark_output(x);
/// let compiled = netlist.compile().unwrap();
/// let state = DeltaState::new(&compiled);
/// assert!(!state.timing.primed && !state.power.primed);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaState {
    /// The arrival-time channel.
    pub timing: TimingChannel,
    /// The probability/energy channel.
    pub power: PowerChannel,
    /// Whether each net (by [`NetId::index`]) is a primary input of the bound
    /// program. The delta entry points use this to **ignore** assignments to
    /// non-input (or unknown) nets — mirroring how the full passes ignore profile
    /// map keys that are not primary inputs — so a stray key can never corrupt the
    /// primed arrays. Maintained by [`DeltaState::new`] / [`DeltaState::rebind`];
    /// treat as read-only.
    pub input_mask: Vec<bool>,
    /// [`CompiledNetlist::structural_hash`] of the bound program. The incremental
    /// analyses assert this against the program they are handed on every call, so
    /// pairing a state with the wrong program panics immediately instead of
    /// silently producing wrong results. Maintained by [`DeltaState::new`] /
    /// [`DeltaState::rebind`]; treat as read-only.
    pub bound_hash: u64,
}

impl DeltaState {
    /// Creates unprimed state sized for — and bound to — `compiled`.
    pub fn new(compiled: &CompiledNetlist) -> Self {
        DeltaState {
            timing: TimingChannel {
                arrival: Vec::new(),
                worst_predecessor: Vec::new(),
                worklist: DirtyWorklist::new(compiled),
                primed: false,
            },
            power: PowerChannel {
                probability: Vec::new(),
                cell_energy: Vec::new(),
                total_energy: 0.0,
                total_activity: 0.0,
                worklist: DirtyWorklist::new(compiled),
                primed: false,
            },
            input_mask: input_mask(compiled),
            bound_hash: compiled.structural_hash(),
        }
    }

    /// Rebinds primed state to a recompile of the *same* netlist after a local,
    /// shape-preserving edit (an input-pin rewire or a same-arity kind change): the
    /// worklists are rebuilt against the new levelization and every cell whose
    /// compiled op differs between `old` and `new` is seeded dirty in **both**
    /// channels, so the next `rerun_delta` of each analysis re-propagates exactly
    /// the affected cone.
    ///
    /// Callers must also re-resolve their technology tables against `new` (a kind
    /// change can introduce a kind the old resolution never filled in) — the
    /// incremental analyses in `dpsyn-timing` / `dpsyn-power` are cheap to rebuild.
    ///
    /// # Panics
    ///
    /// Panics when the programs disagree on net count, cell count, primary inputs or
    /// the driven-net set — such edits change the value universe and need a fresh
    /// [`DeltaState`] plus a full prime instead.
    pub fn rebind(&mut self, old: &CompiledNetlist, new: &CompiledNetlist) {
        assert_eq!(
            old.net_count(),
            new.net_count(),
            "rebind requires an unchanged net universe"
        );
        assert_eq!(
            old.cell_count(),
            new.cell_count(),
            "rebind requires an unchanged cell set"
        );
        assert_eq!(
            old.inputs(),
            new.inputs(),
            "rebind requires unchanged primary inputs"
        );
        let driven = |compiled: &CompiledNetlist| {
            let mut driven = vec![false; compiled.net_count()];
            for op in compiled.ops() {
                for net in op.output_nets() {
                    driven[net.index()] = true;
                }
            }
            driven
        };
        assert_eq!(
            driven(old),
            driven(new),
            "rebind requires an unchanged driven-net set (undriven nets keep \
             analysis defaults that only a full prime restores)"
        );
        self.timing.worklist.rebuild(new);
        self.power.worklist.rebuild(new);
        let old_by_cell = old.cell_ops();
        let new_by_cell = new.cell_ops();
        for (old_op, new_op) in old_by_cell.iter().zip(new_by_cell.iter()) {
            if old_op != new_op {
                self.timing.worklist.seed_cell(new_op.cell);
                self.power.worklist.seed_cell(new_op.cell);
            }
        }
        self.input_mask = input_mask(new);
        self.bound_hash = new.structural_hash();
    }
}

/// The per-net primary-input mask of a program.
fn input_mask(compiled: &CompiledNetlist) -> Vec<bool> {
    let mut mask = vec![false; compiled.net_count()];
    for net in compiled.inputs() {
        mask[net.index()] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::graph::Netlist;

    /// a -> AND(a, b) -> NOT -> NOT -> output, plus an independent XOR(a, b).
    fn chain() -> (Netlist, Vec<NetId>) {
        let mut netlist = Netlist::new("chain");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let and = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
        let not1 = netlist.add_gate(CellKind::Not, &[and]).unwrap()[0];
        let not2 = netlist.add_gate(CellKind::Not, &[not1]).unwrap()[0];
        let xor = netlist.add_gate(CellKind::Xor2, &[a, b]).unwrap()[0];
        netlist.mark_output(not2);
        netlist.mark_output(xor);
        (netlist, vec![a, b, and, not1, not2, xor])
    }

    #[test]
    fn drain_visits_the_whole_cone_when_everything_changes() {
        let (netlist, nets) = chain();
        let compiled = netlist.compile().unwrap();
        let mut worklist = DirtyWorklist::new(&compiled);
        worklist.seed_readers(&compiled, nets[0]);
        assert!(!worklist.is_empty());
        let mut visited = Vec::new();
        let processed = worklist.drain(&compiled, |op| {
            visited.push(op.kind);
            // Claim every output changed: the full downstream cone must run.
            0b11
        });
        // AND + XOR (readers of `a`) plus the two NOTs downstream of the AND.
        assert_eq!(processed, 4);
        assert_eq!(visited.len(), 4);
        assert!(worklist.is_empty());
    }

    #[test]
    fn drain_terminates_early_when_values_do_not_change() {
        let (netlist, nets) = chain();
        let compiled = netlist.compile().unwrap();
        let mut worklist = DirtyWorklist::new(&compiled);
        worklist.seed_readers(&compiled, nets[0]);
        // Claim nothing changed: only the directly seeded readers run.
        let processed = worklist.drain(&compiled, |_| 0);
        assert_eq!(processed, 2);
        assert!(worklist.is_empty());
    }

    #[test]
    fn enqueue_is_idempotent_across_both_inputs() {
        let (netlist, nets) = chain();
        let compiled = netlist.compile().unwrap();
        let mut worklist = DirtyWorklist::new(&compiled);
        // Both inputs feed the AND and the XOR; each cell must still run once.
        worklist.seed_readers(&compiled, nets[0]);
        worklist.seed_readers(&compiled, nets[1]);
        let processed = worklist.drain(&compiled, |_| 0);
        assert_eq!(processed, 2);
    }

    #[test]
    fn reset_clears_pending_work() {
        let (netlist, nets) = chain();
        let compiled = netlist.compile().unwrap();
        let mut worklist = DirtyWorklist::new(&compiled);
        worklist.seed_readers(&compiled, nets[0]);
        worklist.reset();
        assert!(worklist.is_empty());
        assert_eq!(worklist.drain(&compiled, |_| 0b11), 0);
        // The worklist stays usable after a reset.
        worklist.seed_cell(compiled.ops()[0].cell);
        assert_eq!(worklist.drain(&compiled, |_| 0), 1);
    }

    #[test]
    fn rebind_seeds_exactly_the_edited_cells() {
        let (mut netlist, nets) = chain();
        let old = netlist.compile().unwrap();
        let mut state = DeltaState::new(&old);
        netlist.replace_cell_kind(CellId(3), CellKind::Or2).unwrap(); // XOR -> OR
        let new = netlist.compile().unwrap();
        state.rebind(&old, &new);
        let mut seeded = Vec::new();
        state.timing.worklist.drain(&new, |op| {
            seeded.push(op.cell);
            0
        });
        assert_eq!(seeded, vec![CellId(3)]);
        // The power channel got the same seed set.
        let mut power_seeded = Vec::new();
        state.power.worklist.drain(&new, |op| {
            power_seeded.push(op.cell);
            0
        });
        assert_eq!(power_seeded, vec![CellId(3)]);
        let _ = nets;
    }

    #[test]
    #[should_panic(expected = "unchanged net universe")]
    fn rebind_rejects_grown_netlists() {
        let (mut netlist, _) = chain();
        let old = netlist.compile().unwrap();
        let mut state = DeltaState::new(&old);
        let a = netlist.inputs()[0];
        netlist.add_gate(CellKind::Not, &[a]).unwrap();
        let new = netlist.compile().unwrap();
        state.rebind(&old, &new);
    }
}
