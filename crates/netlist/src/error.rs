//! Error type for netlist construction and validation.

use crate::{CellId, CellKind, NetId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell was instantiated with the wrong number of input connections.
    InputArityMismatch {
        /// Kind of the offending cell.
        kind: CellKind,
        /// Number of input nets supplied.
        supplied: usize,
        /// Number of input pins the kind requires.
        expected: usize,
    },
    /// A cell was instantiated with the wrong number of output connections.
    OutputArityMismatch {
        /// Kind of the offending cell.
        kind: CellKind,
        /// Number of output nets supplied.
        supplied: usize,
        /// Number of output pins the kind requires.
        expected: usize,
    },
    /// A net identifier does not belong to this netlist.
    UnknownNet(NetId),
    /// A net is driven by more than one cell output (or by a cell and a primary input).
    MultipleDrivers {
        /// The multiply-driven net.
        net: NetId,
        /// The second driver that attempted to claim the net.
        cell: CellId,
    },
    /// A net has no driver and is neither a primary input nor a constant.
    UndrivenNet {
        /// The floating net.
        net: NetId,
        /// The name of the floating net.
        name: String,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle {
        /// A cell that participates in the cycle.
        cell: CellId,
    },
    /// A primary output was marked on a net that does not exist.
    UnknownOutput(NetId),
    /// A cell identifier does not belong to this netlist.
    UnknownCell(CellId),
    /// An input-pin index is out of range for a cell's kind.
    PinOutOfRange {
        /// The cell whose pin was addressed.
        cell: CellId,
        /// The out-of-range pin index.
        pin: usize,
        /// Number of input pins the cell actually has.
        arity: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InputArityMismatch {
                kind,
                supplied,
                expected,
            } => write!(
                f,
                "cell kind `{kind}` expects {expected} inputs but {supplied} were connected"
            ),
            NetlistError::OutputArityMismatch {
                kind,
                supplied,
                expected,
            } => write!(
                f,
                "cell kind `{kind}` expects {expected} outputs but {supplied} were connected"
            ),
            NetlistError::UnknownNet(net) => write!(f, "net {net} does not belong to this netlist"),
            NetlistError::MultipleDrivers { net, cell } => {
                write!(
                    f,
                    "net {net} already has a driver; cell {cell} cannot drive it too"
                )
            }
            NetlistError::UndrivenNet { net, name } => {
                write!(
                    f,
                    "net {net} (`{name}`) has no driver and is not a primary input"
                )
            }
            NetlistError::CombinationalCycle { cell } => {
                write!(f, "combinational cycle detected through cell {cell}")
            }
            NetlistError::UnknownOutput(net) => {
                write!(f, "primary output marks unknown net {net}")
            }
            NetlistError::UnknownCell(cell) => {
                write!(f, "cell {cell} does not belong to this netlist")
            }
            NetlistError::PinOutOfRange { cell, pin, arity } => {
                write!(
                    f,
                    "cell {cell} has {arity} input pins; pin {pin} is out of range"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let error = NetlistError::InputArityMismatch {
            kind: CellKind::Fa,
            supplied: 2,
            expected: 3,
        };
        let text = error.to_string();
        assert!(text.contains("fa"));
        assert!(text.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
