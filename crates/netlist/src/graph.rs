//! The netlist graph: nets, cells, connectivity and validation.

use crate::cell::{Cell, CellId, CellKind};
use crate::compiled::CompiledNetlist;
use crate::error::NetlistError;
use std::fmt;

/// Identifier of a net inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Index of the net in the netlist's net table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single-bit wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: Option<(CellId, usize)>,
    pub(crate) is_input: bool,
}

impl Net {
    /// Human-readable name of the net.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell and output pin driving this net, if any.
    pub fn driver(&self) -> Option<(CellId, usize)> {
        self.driver
    }

    /// Whether the net is a primary input.
    pub fn is_input(&self) -> bool {
        self.is_input
    }
}

/// A bit-level combinational netlist.
///
/// See the [crate-level documentation](crate) for an overview and an example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    const_nets: [Option<NetId>; 2],
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an internal net and returns its identifier.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            is_input: false,
        });
        id
    }

    /// Adds a primary input net and returns its identifier.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].is_input = true;
        self.inputs.push(id);
        id
    }

    /// Renames an existing net (used to give primary outputs friendly port names).
    ///
    /// # Panics
    ///
    /// Panics when the identifier does not belong to this netlist.
    pub fn set_net_name(&mut self, net: NetId, name: impl Into<String>) {
        self.nets[net.index()].name = name.into();
    }

    /// Marks an existing net as a primary output. A net may be marked at most once;
    /// marking it again is a no-op.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Returns a net that carries the constant `value`, creating the constant cell on
    /// first use.
    ///
    /// # Example
    /// ```
    /// use dpsyn_netlist::Netlist;
    /// let mut netlist = Netlist::new("demo");
    /// let one_a = netlist.constant(true);
    /// let one_b = netlist.constant(true);
    /// assert_eq!(one_a, one_b); // constants are shared
    /// ```
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = usize::from(value);
        if let Some(net) = self.const_nets[slot] {
            return net;
        }
        let kind = if value {
            CellKind::Const1
        } else {
            CellKind::Const0
        };
        let net = self.add_net(if value { "const1" } else { "const0" });
        let name = format!("{}_src", if value { "const1" } else { "const0" });
        self.add_cell(kind, name, vec![], vec![net])
            .expect("constant cells have fixed arity");
        self.const_nets[slot] = Some(net);
        net
    }

    /// Instantiates a cell, connecting the given nets to its pins in order.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of connections does not match the cell kind's pin
    /// counts, if any net does not belong to this netlist, or if an output net already
    /// has a driver (or is a primary input).
    pub fn add_cell(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
    ) -> Result<CellId, NetlistError> {
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::InputArityMismatch {
                kind,
                supplied: inputs.len(),
                expected: kind.input_count(),
            });
        }
        if outputs.len() != kind.output_count() {
            return Err(NetlistError::OutputArityMismatch {
                kind,
                supplied: outputs.len(),
                expected: kind.output_count(),
            });
        }
        for net in inputs.iter().chain(outputs.iter()) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(*net));
            }
        }
        let id = CellId(self.cells.len() as u32);
        for (pin, net) in outputs.iter().enumerate() {
            let slot = &mut self.nets[net.index()];
            if slot.driver.is_some() || slot.is_input {
                return Err(NetlistError::MultipleDrivers {
                    net: *net,
                    cell: id,
                });
            }
            slot.driver = Some((id, pin));
        }
        self.cells.push(Cell {
            kind,
            name: name.into(),
            inputs,
            outputs,
        });
        Ok(id)
    }

    /// Instantiates a cell with automatically created output nets and an automatically
    /// generated instance name, returning the new output nets in pin order.
    ///
    /// This is the work-horse used by the synthesis engines.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of inputs does not match the kind's arity.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        let index = self.cells.len();
        let outputs: Vec<NetId> = (0..kind.output_count())
            .map(|pin| self.add_net(format!("{}_{}_o{}", kind.mnemonic(), index, pin)))
            .collect();
        self.add_cell(
            kind,
            format!("{}_{}", kind.mnemonic(), index),
            inputs.to_vec(),
            outputs.clone(),
        )?;
        Ok(outputs)
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics when the identifier does not belong to this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics when the identifier does not belong to this netlist.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Iterates over all nets with their identifiers.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(index, net)| (NetId(index as u32), net))
    }

    /// Iterates over all cells with their identifiers.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(index, cell)| (CellId(index as u32), cell))
    }

    /// Primary input nets in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of cells of a particular kind.
    ///
    /// # Example
    /// ```
    /// use dpsyn_netlist::{CellKind, Netlist};
    /// let mut netlist = Netlist::new("demo");
    /// netlist.constant(true);
    /// assert_eq!(netlist.count_kind(CellKind::Const1), 1);
    /// ```
    pub fn count_kind(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|cell| cell.kind == kind).count()
    }

    /// Compiles the netlist into the shared analysis program: a levelized flat op
    /// array with the fanout CSR and kind tables every analysis consumes.
    ///
    /// Compile **once** per netlist and hand the result to the lane simulator,
    /// timing analysis, power analysis and the report path; see
    /// [`CompiledNetlist`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the netlist is cyclic.
    pub fn compile(&self) -> Result<CompiledNetlist, NetlistError> {
        CompiledNetlist::compile(self)
    }

    /// Computes a topological order of the cells (inputs before the cells that read
    /// them).
    ///
    /// The order is the concatenation of the levels of [`Netlist::levelize`], which is
    /// exactly what a FIFO worklist would emit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the netlist is cyclic.
    pub fn topological_order(&self) -> Result<Vec<CellId>, NetlistError> {
        Ok(self.compile()?.ops().iter().map(|op| op.cell).collect())
    }

    /// Groups the cells into topological levels: level 0 holds the cells all of whose
    /// inputs are primary inputs (or undriven nets), and every cell sits one level
    /// above the deepest cell driving one of its inputs.
    ///
    /// Concatenating the levels yields a valid topological order; the grouping is what
    /// levelized simulators (and, later, parallel evaluation) consume, because all
    /// cells within a level are mutually independent.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the netlist is cyclic.
    ///
    /// # Example
    /// ```
    /// use dpsyn_netlist::{CellKind, Netlist};
    /// let mut netlist = Netlist::new("chain");
    /// let a = netlist.add_input("a");
    /// let b = netlist.add_input("b");
    /// let x = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
    /// netlist.add_gate(CellKind::Not, &[x]).unwrap();
    /// netlist.add_gate(CellKind::Xor2, &[a, b]).unwrap();
    /// let levels = netlist.levelize().unwrap();
    /// assert_eq!(levels.len(), 2);
    /// assert_eq!(levels[0].len(), 2); // the AND and the XOR are independent
    /// assert_eq!(levels[1].len(), 1); // the NOT reads the AND
    /// ```
    pub fn levelize(&self) -> Result<Vec<Vec<CellId>>, NetlistError> {
        Ok(self.compile()?.levels())
    }

    /// Validates the invariants that do not require a traversal: every net is driven
    /// by exactly one source (a cell output or a primary input) and every marked
    /// output exists. Callers that also compile the netlist get the remaining
    /// acyclicity check from [`Netlist::compile`] for free.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_structure(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            if net.driver.is_none() && !net.is_input {
                return Err(NetlistError::UndrivenNet {
                    net: id,
                    name: net.name.clone(),
                });
            }
        }
        for net in &self.outputs {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::UnknownOutput(*net));
            }
        }
        Ok(())
    }

    /// Validates structural invariants: every net is driven by exactly one source
    /// (a cell output or a primary input) and the netlist is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.validate_structure()?;
        self.compile()?;
        Ok(())
    }

    /// Reconnects one input pin of an existing cell to another net (a local rewire).
    ///
    /// Only the reader side changes: no net gains or loses its driver, so a
    /// [`crate::DeltaState`] bound to the old compiled program can be migrated to the
    /// recompile with [`crate::DeltaState::rebind`]. The caller is responsible for
    /// keeping the graph acyclic (rewiring to a net whose driver precedes the cell in
    /// the current topological order always is — [`Netlist::rewire_would_cycle`]
    /// checks an arbitrary candidate); [`Netlist::compile`] reports a
    /// [`NetlistError::CombinationalCycle`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] when `net` does not belong to this
    /// netlist, [`NetlistError::UnknownCell`] when `cell` does not, and
    /// [`NetlistError::PinOutOfRange`] when `pin` is not one of the cell's input
    /// pins. A failed call leaves the netlist untouched.
    pub fn rewire_input(
        &mut self,
        cell: CellId,
        pin: usize,
        net: NetId,
    ) -> Result<(), NetlistError> {
        if net.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet(net));
        }
        if cell.index() >= self.cells.len() {
            return Err(NetlistError::UnknownCell(cell));
        }
        let arity = self.cells[cell.index()].inputs.len();
        if pin >= arity {
            return Err(NetlistError::PinOutOfRange { cell, pin, arity });
        }
        self.cells[cell.index()].inputs[pin] = net;
        Ok(())
    }

    /// Whether reconnecting an input pin of `cell` to `net` would close a
    /// combinational cycle — i.e. whether `net`'s value (transitively, through
    /// drivers) depends on an output of `cell`.
    ///
    /// This is the acyclicity guard for [`Netlist::rewire_input`] when the caller
    /// cannot prove the candidate safe from a topological order: a rewire whose
    /// source passes this check always recompiles cleanly, one that fails it always
    /// ends in [`NetlistError::CombinationalCycle`]. Runs a backward DFS over the
    /// driver edges, `O(nets + pins)` worst case, no allocation proportional to the
    /// move count.
    ///
    /// # Panics
    ///
    /// Panics when `cell` or `net` does not belong to this netlist.
    pub fn rewire_would_cycle(&self, cell: CellId, net: NetId) -> bool {
        assert!(
            cell.index() < self.cells.len(),
            "cell {cell} does not belong to this netlist"
        );
        assert!(
            net.index() < self.nets.len(),
            "net {net} does not belong to this netlist"
        );
        let mut visited = vec![false; self.cells.len()];
        let mut stack = vec![net];
        while let Some(current) = stack.pop() {
            let Some((driver, _)) = self.nets[current.index()].driver() else {
                continue;
            };
            if driver == cell {
                return true;
            }
            if visited[driver.index()] {
                continue;
            }
            visited[driver.index()] = true;
            stack.extend(self.cells[driver.index()].inputs.iter().copied());
        }
        false
    }

    /// Replaces the kind of an existing cell with another kind of identical arity
    /// (e.g. `And2` → `Or2`), keeping every pin connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] when `cell` does not belong to this
    /// netlist, and an arity-mismatch error when `kind` does not have the same pin
    /// counts as the cell's current kind. A failed call leaves the netlist untouched.
    pub fn replace_cell_kind(&mut self, cell: CellId, kind: CellKind) -> Result<(), NetlistError> {
        if cell.index() >= self.cells.len() {
            return Err(NetlistError::UnknownCell(cell));
        }
        let slot = &mut self.cells[cell.index()];
        if slot.inputs.len() != kind.input_count() {
            return Err(NetlistError::InputArityMismatch {
                kind,
                supplied: slot.inputs.len(),
                expected: kind.input_count(),
            });
        }
        if slot.outputs.len() != kind.output_count() {
            return Err(NetlistError::OutputArityMismatch {
                kind,
                supplied: slot.outputs.len(),
                expected: kind.output_count(),
            });
        }
        slot.kind = kind;
        Ok(())
    }

    /// A 64-bit hash of the netlist's structural identity: net count, primary
    /// input/output lists, and every cell's kind and pin connectivity in cell order.
    /// Net and instance **names are excluded** — renaming never changes the hash.
    ///
    /// Guaranteed equal to [`CompiledNetlist::structural_hash`] of this netlist's
    /// compiled program, which is what lets a caller holding a freshly synthesized
    /// netlist probe a cache of compiled programs without levelizing first. Equal
    /// hashes are a *probe*, not a proof: verify candidates cell-by-cell (e.g.
    /// against [`CompiledNetlist::cell_ops`]) before trusting a match.
    ///
    /// # Example
    /// ```
    /// use dpsyn_netlist::{CellKind, Netlist};
    /// let mut netlist = Netlist::new("demo");
    /// let a = netlist.add_input("a");
    /// let b = netlist.add_input("b");
    /// netlist.add_gate(CellKind::And2, &[a, b]).unwrap();
    /// let hash = netlist.structural_hash();
    /// assert_eq!(hash, netlist.compile().unwrap().structural_hash());
    /// netlist.set_net_name(a, "renamed");
    /// assert_eq!(hash, netlist.structural_hash()); // names are structural no-ops
    /// ```
    pub fn structural_hash(&self) -> u64 {
        crate::compiled::hash_structure(
            self.nets.len(),
            &self.inputs,
            &self.outputs,
            self.cells
                .iter()
                .map(|cell| (cell.kind, cell.inputs.as_slice(), cell.outputs.as_slice())),
        )
    }

    /// The netlist's structural identity as a canonical, **versioned** word stream:
    /// a stable serialization of exactly what [`Netlist::structural_hash`] folds —
    /// net count, primary input/output lists, and every cell's kind and pin
    /// connectivity in cell-index order. Net and instance **names are excluded**, so
    /// renaming never changes the stream.
    ///
    /// Unlike the folded 64-bit hash, the stream is **lossless** up to names: every
    /// list is length-prefixed (the encoding is prefix-free), so two netlists
    /// produce the same words **iff** they are structurally identical. Persistent
    /// evaluation keys (the explorer's cross-run result store) fingerprint this
    /// stream instead of trusting the one-word hash; the leading version word guards
    /// the layout itself, so a future change to the serialization invalidates every
    /// stored fingerprint instead of silently colliding with old ones.
    ///
    /// # Example
    /// ```
    /// use dpsyn_netlist::{CellKind, Netlist};
    /// let mut netlist = Netlist::new("demo");
    /// let a = netlist.add_input("a");
    /// let b = netlist.add_input("b");
    /// netlist.add_gate(CellKind::And2, &[a, b]).unwrap();
    /// let words = netlist.structural_words();
    /// netlist.set_net_name(a, "renamed");
    /// assert_eq!(words, netlist.structural_words()); // names are structural no-ops
    /// ```
    pub fn structural_words(&self) -> Vec<u64> {
        /// Bump when the stream layout changes; stored fingerprints become stale.
        const STRUCTURAL_WORDS_VERSION: u64 = 1;
        let mut words = Vec::with_capacity(8 + self.cells.len() * 8);
        words.push(STRUCTURAL_WORDS_VERSION);
        words.push(self.nets.len() as u64);
        let push_nets = |words: &mut Vec<u64>, nets: &[NetId]| {
            words.push(nets.len() as u64);
            words.extend(nets.iter().map(|net| net.index() as u64));
        };
        push_nets(&mut words, &self.inputs);
        push_nets(&mut words, &self.outputs);
        words.push(self.cells.len() as u64);
        for cell in &self.cells {
            words.push(cell.kind.table_index() as u64);
            push_nets(&mut words, &cell.inputs);
            push_nets(&mut words, &cell.outputs);
        }
        words
    }

    /// Longest path length (in cells) from any primary input or constant to any net.
    ///
    /// This is a purely structural depth (every cell counts as one level) used in
    /// reports and tests; the technology-aware delay lives in the timing crate. It
    /// equals [`CompiledNetlist::level_count`] — callers holding a compiled program
    /// should read that instead of re-traversing here.
    pub fn logic_depth(&self) -> usize {
        self.compile().map(|c| c.level_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder_netlist() -> Netlist {
        let mut netlist = Netlist::new("fa_test");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let outs = netlist.add_gate(CellKind::Fa, &[a, b, c]).unwrap();
        netlist.mark_output(outs[0]);
        netlist.mark_output(outs[1]);
        netlist
    }

    #[test]
    fn build_and_validate_full_adder() {
        let netlist = full_adder_netlist();
        assert!(netlist.validate().is_ok());
        assert_eq!(netlist.cell_count(), 1);
        assert_eq!(netlist.net_count(), 5);
        assert_eq!(netlist.inputs().len(), 3);
        assert_eq!(netlist.outputs().len(), 2);
        assert_eq!(netlist.logic_depth(), 1);
    }

    #[test]
    fn structural_words_are_name_blind_and_structure_exact() {
        let reference = full_adder_netlist();
        let words = reference.structural_words();
        // Version word leads the stream.
        assert_eq!(words[0], 1);
        // Renaming is invisible.
        let mut renamed = full_adder_netlist();
        renamed.set_net_name(NetId(0), "zz");
        assert_eq!(renamed.structural_words(), words);
        // A structural clone serializes identically...
        assert_eq!(full_adder_netlist().structural_words(), words);
        // ... while any connectivity change perturbs the stream.
        let mut rewired = full_adder_netlist();
        rewired.rewire_input(CellId(0), 1, NetId(0)).unwrap();
        assert_ne!(rewired.structural_words(), words);
        // An extra output changes only the output list, which the stream covers.
        let mut extra_output = full_adder_netlist();
        extra_output.mark_output(NetId(0));
        assert_ne!(extra_output.structural_words(), words);
    }

    #[test]
    fn seeded_hasher_chains_diverge() {
        let words = full_adder_netlist().structural_words();
        let digest = |seed: u64| {
            let mut hasher = crate::compiled::StructuralHasher::with_seed(seed);
            for word in &words {
                hasher.write(*word);
            }
            hasher.finish()
        };
        assert_ne!(
            digest(1),
            digest(2),
            "seeds must produce independent chains"
        );
        assert_eq!(digest(7), digest(7), "chains are deterministic");
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut netlist = Netlist::new("bad");
        let a = netlist.add_input("a");
        let out = netlist.add_net("out");
        let result = netlist.add_cell(CellKind::Fa, "fa0", vec![a], vec![out]);
        assert!(matches!(
            result,
            Err(NetlistError::InputArityMismatch { .. })
        ));
        let result = netlist.add_cell(CellKind::Not, "n0", vec![a], vec![]);
        assert!(matches!(
            result,
            Err(NetlistError::OutputArityMismatch { .. })
        ));
    }

    #[test]
    fn double_driving_is_rejected() {
        let mut netlist = Netlist::new("bad");
        let a = netlist.add_input("a");
        let out = netlist.add_net("out");
        netlist
            .add_cell(CellKind::Buf, "b0", vec![a], vec![out])
            .unwrap();
        let result = netlist.add_cell(CellKind::Not, "n0", vec![a], vec![out]);
        assert!(matches!(result, Err(NetlistError::MultipleDrivers { .. })));
        // Driving a primary input is also rejected.
        let result = netlist.add_cell(CellKind::Not, "n1", vec![out], vec![a]);
        assert!(matches!(result, Err(NetlistError::MultipleDrivers { .. })));
    }

    #[test]
    fn undriven_net_is_reported() {
        let mut netlist = Netlist::new("floating");
        let a = netlist.add_input("a");
        let floating = netlist.add_net("floating");
        let out = netlist.add_net("out");
        netlist
            .add_cell(CellKind::And2, "g0", vec![a, floating], vec![out])
            .unwrap();
        assert!(matches!(
            netlist.validate(),
            Err(NetlistError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn unknown_net_is_rejected() {
        let mut netlist = Netlist::new("unknown");
        let a = netlist.add_input("a");
        let bogus = NetId(17);
        let out = netlist.add_net("out");
        let result = netlist.add_cell(CellKind::And2, "g0", vec![a, bogus], vec![out]);
        assert!(matches!(result, Err(NetlistError::UnknownNet(_))));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut netlist = Netlist::new("chain");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let stage1 = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
        let stage2 = netlist.add_gate(CellKind::Not, &[stage1]).unwrap()[0];
        let stage3 = netlist.add_gate(CellKind::Xor2, &[stage2, a]).unwrap()[0];
        netlist.mark_output(stage3);
        let order = netlist.topological_order().unwrap();
        let positions: Vec<usize> = (0..netlist.cell_count())
            .map(|cell| order.iter().position(|c| c.index() == cell).unwrap())
            .collect();
        assert!(positions[0] < positions[1]);
        assert!(positions[1] < positions[2]);
        assert_eq!(netlist.logic_depth(), 3);
    }

    #[test]
    fn levelize_groups_independent_cells() {
        let mut netlist = Netlist::new("levels");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let and = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
        let or = netlist.add_gate(CellKind::Or2, &[b, c]).unwrap()[0];
        let xor = netlist.add_gate(CellKind::Xor2, &[and, or]).unwrap()[0];
        let not = netlist.add_gate(CellKind::Not, &[xor]).unwrap()[0];
        netlist.mark_output(not);
        let levels = netlist.levelize().unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 2);
        assert_eq!(levels[1].len(), 1);
        assert_eq!(levels[2].len(), 1);
        // Concatenating the levels yields a topological order: every cell's placement
        // is one level above its deepest driver.
        let flat: Vec<CellId> = levels.iter().flatten().copied().collect();
        assert_eq!(flat.len(), netlist.cell_count());
        let mut rank = vec![usize::MAX; netlist.cell_count()];
        for (position, cell) in flat.iter().enumerate() {
            rank[cell.index()] = position;
        }
        for (id, cell) in netlist.cells() {
            for input in cell.inputs() {
                if let Some((driver, _)) = netlist.net(*input).driver() {
                    assert!(rank[driver.index()] < rank[id.index()]);
                }
            }
        }
    }

    #[test]
    fn levelize_matches_logic_depth() {
        let netlist = full_adder_netlist();
        let levels = netlist.levelize().unwrap();
        assert_eq!(levels.len(), netlist.logic_depth());
        assert!(netlist.levelize().unwrap().concat().len() == netlist.cell_count());
        let empty = Netlist::new("empty");
        assert!(empty.levelize().unwrap().is_empty());
    }

    #[test]
    fn constants_are_shared_and_drive_nets() {
        let mut netlist = Netlist::new("consts");
        let one = netlist.constant(true);
        let zero = netlist.constant(false);
        assert_ne!(one, zero);
        assert_eq!(netlist.constant(true), one);
        assert_eq!(netlist.cell_count(), 2);
        assert!(netlist.net(one).driver().is_some());
        assert!(netlist.validate().is_ok());
    }

    #[test]
    fn compiled_fanout_lists_readers() {
        let netlist = full_adder_netlist();
        let compiled = netlist.compile().unwrap();
        // Every input feeds the single FA on its corresponding pin; the outputs
        // have no readers. (This test rode on the removed allocating
        // `Netlist::fanout_map`; the CSR is now the only fanout source.)
        for (pin, net) in netlist.inputs().iter().enumerate() {
            assert_eq!(compiled.fanout(*net), &[(CellId(0), pin as u32)]);
        }
        for net in netlist.outputs() {
            assert!(compiled.fanout(*net).is_empty());
        }
        // And the CSR agrees with a straight walk over the cell table.
        let mut expected = vec![Vec::new(); netlist.net_count()];
        for (id, cell) in netlist.cells() {
            for (pin, net) in cell.inputs().iter().enumerate() {
                expected[net.index()].push((id, pin as u32));
            }
        }
        for (net, _) in netlist.nets() {
            assert_eq!(compiled.fanout(net), expected[net.index()].as_slice());
        }
    }

    #[test]
    fn structural_hash_tracks_structure_not_names() {
        let mut netlist = full_adder_netlist();
        let baseline = netlist.structural_hash();
        assert_eq!(baseline, netlist.compile().unwrap().structural_hash());
        // Renames are invisible.
        netlist.set_net_name(netlist.inputs()[0], "renamed");
        assert_eq!(baseline, netlist.structural_hash());
        // A kind flip of identical arity changes the hash (and stays compilable).
        let mut flipped = full_adder_netlist();
        let (a, b) = (flipped.inputs()[0], flipped.inputs()[1]);
        flipped.add_gate(CellKind::And2, &[a, b]).unwrap();
        let and_cell = CellId(1); // the FA is cell 0
        let with_and = flipped.structural_hash();
        assert_ne!(baseline, with_and);
        flipped.replace_cell_kind(and_cell, CellKind::Or2).unwrap();
        assert_ne!(with_and, flipped.structural_hash());
        assert_eq!(
            flipped.structural_hash(),
            flipped.compile().unwrap().structural_hash()
        );
    }

    #[test]
    fn rewire_input_moves_a_reader() {
        let mut netlist = Netlist::new("rewire");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let and = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
        netlist.mark_output(and);
        let cell = CellId(0);
        netlist.rewire_input(cell, 1, c).unwrap();
        assert_eq!(netlist.cell(cell).inputs(), &[a, c]);
        assert!(netlist.validate().is_ok());
        assert!(matches!(
            netlist.rewire_input(cell, 0, NetId(99)),
            Err(NetlistError::UnknownNet(_))
        ));
        // Arity-mismatched kind replacement is rejected.
        assert!(matches!(
            netlist.replace_cell_kind(cell, CellKind::Not),
            Err(NetlistError::InputArityMismatch { .. })
        ));
    }

    #[test]
    fn compiled_program_matches_levelize() {
        let mut netlist = Netlist::new("levels");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let and = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
        let or = netlist.add_gate(CellKind::Or2, &[b, c]).unwrap()[0];
        let xor = netlist.add_gate(CellKind::Xor2, &[and, or]).unwrap()[0];
        netlist.mark_output(xor);
        let compiled = netlist.compile().unwrap();
        assert_eq!(compiled.levels(), netlist.levelize().unwrap());
        assert_eq!(compiled.level_count(), netlist.logic_depth());
        assert_eq!(compiled.cell_count(), netlist.cell_count());
        assert_eq!(compiled.net_count(), netlist.net_count());
        assert_eq!(compiled.inputs(), netlist.inputs());
        assert_eq!(compiled.outputs(), netlist.outputs());
        // Ops are the levelized concatenation, and pins mirror the cells.
        let order = netlist.topological_order().unwrap();
        let op_cells: Vec<CellId> = compiled.ops().iter().map(|op| op.cell).collect();
        assert_eq!(op_cells, order);
        for op in compiled.ops() {
            let cell = netlist.cell(op.cell);
            assert_eq!(op.kind, cell.kind());
            assert_eq!(op.input_nets(), cell.inputs());
            assert_eq!(op.output_nets(), cell.outputs());
        }
        // Kind tables: per-cell kinds in cell order, histogram in first-appearance order.
        assert_eq!(compiled.cell_kinds().len(), netlist.cell_count());
        assert_eq!(
            compiled.kind_counts(),
            &[(CellKind::And2, 1), (CellKind::Or2, 1), (CellKind::Xor2, 1)]
        );
        let total: usize = compiled.kind_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, netlist.cell_count());
    }

    #[test]
    fn compiled_cycle_reports_the_same_culprit() {
        let mut netlist = Netlist::new("cyclic");
        let a = netlist.add_input("a");
        let loop_net = netlist.add_net("loop");
        let out = netlist.add_net("out");
        netlist
            .add_cell(CellKind::And2, "g0", vec![a, loop_net], vec![out])
            .unwrap();
        netlist
            .add_cell(CellKind::Buf, "g1", vec![out], vec![loop_net])
            .unwrap();
        let compiled_err = netlist.compile().unwrap_err();
        let levelize_err = netlist.levelize().unwrap_err();
        assert_eq!(compiled_err, levelize_err);
        assert!(matches!(
            compiled_err,
            NetlistError::CombinationalCycle { cell } if cell == CellId(0)
        ));
        assert_eq!(netlist.logic_depth(), 0);
    }

    #[test]
    fn compiled_empty_netlist() {
        let compiled = Netlist::new("empty").compile().unwrap();
        assert_eq!(compiled.op_count(), 0);
        assert_eq!(compiled.level_count(), 0);
        assert!(compiled.levels().is_empty());
        assert!(compiled.kind_counts().is_empty());
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut netlist = full_adder_netlist();
        let out = netlist.outputs()[0];
        netlist.mark_output(out);
        assert_eq!(netlist.outputs().len(), 2);
    }

    #[test]
    fn display_ids() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(CellId(4).to_string(), "c4");
    }

    #[test]
    fn rewire_input_rejects_bad_ids_without_mutating() {
        let mut netlist = full_adder_netlist();
        let before = netlist.structural_hash();
        let a = netlist.inputs()[0];
        let bad_net = NetId(netlist.net_count() as u32);
        let bad_cell = CellId(netlist.cell_count() as u32);
        assert_eq!(
            netlist.rewire_input(CellId(0), 0, bad_net),
            Err(NetlistError::UnknownNet(bad_net))
        );
        assert_eq!(
            netlist.rewire_input(bad_cell, 0, a),
            Err(NetlistError::UnknownCell(bad_cell))
        );
        let arity = netlist.cell(CellId(0)).inputs().len();
        assert_eq!(
            netlist.rewire_input(CellId(0), arity, a),
            Err(NetlistError::PinOutOfRange {
                cell: CellId(0),
                pin: arity,
                arity,
            })
        );
        assert_eq!(netlist.structural_hash(), before);
    }

    #[test]
    fn replace_cell_kind_rejects_unknown_cells() {
        let mut netlist = full_adder_netlist();
        let bad_cell = CellId(netlist.cell_count() as u32);
        assert_eq!(
            netlist.replace_cell_kind(bad_cell, CellKind::And2),
            Err(NetlistError::UnknownCell(bad_cell))
        );
    }

    #[test]
    fn rewire_would_cycle_agrees_with_compile() {
        // a -> NOT -> AND(.., b) -> BUF -> output
        let mut netlist = Netlist::new("chain");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let not = netlist.add_gate(CellKind::Not, &[a]).unwrap()[0];
        let and = netlist.add_gate(CellKind::And2, &[not, b]).unwrap()[0];
        let buf = netlist.add_gate(CellKind::Buf, &[and]).unwrap()[0];
        netlist.mark_output(buf);
        let not_cell = netlist.net(not).driver().unwrap().0;
        // Feeding the NOT from its own transitive fanout closes a cycle; the
        // guard and the compiler must agree on every candidate source.
        assert!(netlist.rewire_would_cycle(not_cell, not));
        assert!(netlist.rewire_would_cycle(not_cell, and));
        assert!(netlist.rewire_would_cycle(not_cell, buf));
        assert!(!netlist.rewire_would_cycle(not_cell, a));
        assert!(!netlist.rewire_would_cycle(not_cell, b));
        netlist.rewire_input(not_cell, 0, buf).unwrap();
        assert!(matches!(
            netlist.compile(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
        netlist.rewire_input(not_cell, 0, b).unwrap();
        assert!(netlist.compile().is_ok());
    }
}
