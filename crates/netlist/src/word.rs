//! Word-level views over bit-level netlists.

use crate::NetId;
use std::collections::BTreeMap;

/// A named multi-bit word whose bits are individual nets (LSB first).
///
/// # Example
/// ```
/// use dpsyn_netlist::{Netlist, Word};
/// let mut netlist = Netlist::new("demo");
/// let bits: Vec<_> = (0..4).map(|i| netlist.add_input(format!("x_{i}"))).collect();
/// let word = Word::new("x", bits);
/// assert_eq!(word.width(), 4);
/// assert_eq!(Word::value_to_bits(0b1010, 4), vec![false, true, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    name: String,
    bits: Vec<NetId>,
}

impl Word {
    /// Creates a word from its name and its bit nets (least-significant bit first).
    pub fn new(name: impl Into<String>, bits: Vec<NetId>) -> Self {
        Word {
            name: name.into(),
            bits,
        }
    }

    /// Name of the word.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bit width of the word.
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// The bit nets, least-significant bit first.
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// The net of bit `index`, if within range.
    pub fn bit(&self, index: u32) -> Option<NetId> {
        self.bits.get(index as usize).copied()
    }

    /// Splits an integer value into `width` boolean bits, LSB first.
    pub fn value_to_bits(value: u64, width: u32) -> Vec<bool> {
        (0..width).map(|bit| (value >> bit) & 1 == 1).collect()
    }

    /// Packs boolean bits (LSB first) into an integer value.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 bits are supplied.
    pub fn bits_to_value(bits: &[bool]) -> u64 {
        assert!(bits.len() <= 64, "at most 64 bits fit into a u64");
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (index, bit)| acc | ((*bit as u64) << index))
    }
}

/// The word-level interface of a synthesized netlist: named input words and one output
/// word. Simulation and equivalence checking use this to translate between word values
/// and per-net bit values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordMap {
    inputs: Vec<Word>,
    output: Word,
}

impl WordMap {
    /// Creates a word map from the input words and the output word.
    pub fn new(inputs: Vec<Word>, output: Word) -> Self {
        WordMap { inputs, output }
    }

    /// The input words in declaration order.
    pub fn inputs(&self) -> &[Word] {
        &self.inputs
    }

    /// The output word.
    pub fn output(&self) -> &Word {
        &self.output
    }

    /// Looks up an input word by name.
    pub fn input(&self, name: &str) -> Option<&Word> {
        self.inputs.iter().find(|word| word.name() == name)
    }

    /// Expands a word-level assignment into per-net boolean values for every input bit.
    ///
    /// Missing words default to zero. Values wider than a word are truncated to its
    /// width, mirroring hardware behaviour.
    pub fn assignment_to_bits(&self, values: &BTreeMap<String, u64>) -> BTreeMap<NetId, bool> {
        let mut bits = BTreeMap::new();
        for word in &self.inputs {
            let value = values.get(word.name()).copied().unwrap_or(0);
            for (index, net) in word.bits().iter().enumerate() {
                bits.insert(*net, (value >> index) & 1 == 1);
            }
        }
        bits
    }

    /// Packs per-net boolean values of the output word into an integer.
    ///
    /// Output bits missing from `values` are treated as zero.
    pub fn output_value(&self, values: &BTreeMap<NetId, bool>) -> u64 {
        let bits: Vec<bool> = self
            .output
            .bits()
            .iter()
            .map(|net| values.get(net).copied().unwrap_or(false))
            .collect();
        Word::bits_to_value(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn demo_map() -> (Netlist, WordMap) {
        let mut netlist = Netlist::new("demo");
        let a_bits: Vec<_> = (0..3)
            .map(|i| netlist.add_input(format!("a_{i}")))
            .collect();
        let b_bits: Vec<_> = (0..2)
            .map(|i| netlist.add_input(format!("b_{i}")))
            .collect();
        let out_bits: Vec<_> = (0..4).map(|i| netlist.add_net(format!("y_{i}"))).collect();
        let map = WordMap::new(
            vec![Word::new("a", a_bits), Word::new("b", b_bits)],
            Word::new("y", out_bits),
        );
        (netlist, map)
    }

    #[test]
    fn value_bit_round_trip() {
        for value in 0..16u64 {
            let bits = Word::value_to_bits(value, 4);
            assert_eq!(Word::bits_to_value(&bits), value);
        }
    }

    #[test]
    fn truncation_matches_hardware() {
        let bits = Word::value_to_bits(0b10110, 3);
        assert_eq!(Word::bits_to_value(&bits), 0b110);
    }

    #[test]
    fn assignment_expansion_and_lookup() {
        let (_netlist, map) = demo_map();
        let mut values = BTreeMap::new();
        values.insert("a".to_string(), 0b101u64);
        values.insert("b".to_string(), 0b11u64);
        let bits = map.assignment_to_bits(&values);
        assert_eq!(bits.len(), 5);
        let a = map.input("a").unwrap();
        assert!(bits[&a.bit(0).unwrap()]);
        assert!(!bits[&a.bit(1).unwrap()]);
        assert!(bits[&a.bit(2).unwrap()]);
        assert!(map.input("zzz").is_none());
    }

    #[test]
    fn missing_words_default_to_zero() {
        let (_netlist, map) = demo_map();
        let bits = map.assignment_to_bits(&BTreeMap::new());
        assert!(bits.values().all(|bit| !bit));
    }

    #[test]
    fn output_packing_defaults_missing_bits_to_zero() {
        let (_netlist, map) = demo_map();
        let mut values = BTreeMap::new();
        values.insert(map.output().bit(1).unwrap(), true);
        values.insert(map.output().bit(3).unwrap(), true);
        assert_eq!(map.output_value(&values), 0b1010);
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn bits_to_value_panics_on_overflow() {
        Word::bits_to_value(&[false; 65]);
    }
}
