//! Primitive cell kinds and cell instances.

use crate::graph::NetId;
use std::fmt;

/// Identifier of a cell inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Index of the cell in the netlist's cell table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The primitive cell kinds supported by the synthesis flow.
///
/// Pin conventions (inputs / outputs, in order):
///
/// | Kind    | Inputs            | Outputs          |
/// |---------|-------------------|------------------|
/// | `Fa`    | `a, b, cin`       | `sum, cout`      |
/// | `Ha`    | `a, b`            | `sum, cout`      |
/// | `And2`  | `a, b`            | `y`              |
/// | `And3`  | `a, b, c`         | `y`              |
/// | `Or2`   | `a, b`            | `y`              |
/// | `Xor2`  | `a, b`            | `y`              |
/// | `Xor3`  | `a, b, c`         | `y`              |
/// | `Not`   | `a`               | `y`              |
/// | `Buf`   | `a`               | `y`              |
/// | `Mux2`  | `a, b, sel`       | `y` (= sel ? b : a) |
/// | `Const0`| —                 | `y`              |
/// | `Const1`| —                 | `y`              |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Full adder: three input bits of the same weight, sum and carry-out outputs.
    Fa,
    /// Half adder: two input bits, sum and carry-out outputs.
    Ha,
    /// Two-input AND gate.
    And2,
    /// Three-input AND gate.
    And3,
    /// Two-input OR gate.
    Or2,
    /// Two-input XOR gate.
    Xor2,
    /// Three-input XOR gate.
    Xor3,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// Two-input multiplexer with a select pin.
    Mux2,
    /// Constant logic 0 source.
    Const0,
    /// Constant logic 1 source.
    Const1,
}

impl CellKind {
    /// Number of distinct cell kinds; with [`CellKind::table_index`] this sizes the
    /// dense per-kind parameter tables the compiled analyses index in their inner
    /// loops instead of map lookups.
    pub const COUNT: usize = 12;

    /// A dense index in `0..CellKind::COUNT`, stable across runs (declaration order).
    #[inline]
    pub fn table_index(self) -> usize {
        match self {
            CellKind::Fa => 0,
            CellKind::Ha => 1,
            CellKind::And2 => 2,
            CellKind::And3 => 3,
            CellKind::Or2 => 4,
            CellKind::Xor2 => 5,
            CellKind::Xor3 => 6,
            CellKind::Not => 7,
            CellKind::Buf => 8,
            CellKind::Mux2 => 9,
            CellKind::Const0 => 10,
            CellKind::Const1 => 11,
        }
    }

    /// Number of input pins of the cell kind.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Fa | CellKind::And3 | CellKind::Xor3 | CellKind::Mux2 => 3,
            CellKind::Ha | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Not | CellKind::Buf => 1,
            CellKind::Const0 | CellKind::Const1 => 0,
        }
    }

    /// Number of output pins of the cell kind.
    pub fn output_count(self) -> usize {
        match self {
            CellKind::Fa | CellKind::Ha => 2,
            _ => 1,
        }
    }

    /// All cell kinds, useful for building technology libraries and for property tests.
    pub fn all() -> [CellKind; 12] {
        [
            CellKind::Fa,
            CellKind::Ha,
            CellKind::And2,
            CellKind::And3,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xor3,
            CellKind::Not,
            CellKind::Buf,
            CellKind::Mux2,
            CellKind::Const0,
            CellKind::Const1,
        ]
    }

    /// Evaluates the cell function over boolean inputs, returning one value per output
    /// pin (in pin order).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not have exactly [`CellKind::input_count`] elements; the
    /// netlist constructor enforces this invariant.
    pub fn evaluate(self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            CellKind::Fa => {
                let (a, b, c) = (inputs[0], inputs[1], inputs[2]);
                vec![a ^ b ^ c, (a & b) | (a & c) | (b & c)]
            }
            CellKind::Ha => {
                let (a, b) = (inputs[0], inputs[1]);
                vec![a ^ b, a & b]
            }
            CellKind::And2 => vec![inputs[0] & inputs[1]],
            CellKind::And3 => vec![inputs[0] & inputs[1] & inputs[2]],
            CellKind::Or2 => vec![inputs[0] | inputs[1]],
            CellKind::Xor2 => vec![inputs[0] ^ inputs[1]],
            CellKind::Xor3 => vec![inputs[0] ^ inputs[1] ^ inputs[2]],
            CellKind::Not => vec![!inputs[0]],
            CellKind::Buf => vec![inputs[0]],
            CellKind::Mux2 => vec![if inputs[2] { inputs[1] } else { inputs[0] }],
            CellKind::Const0 => vec![false],
            CellKind::Const1 => vec![true],
        }
    }

    /// Short lower-case mnemonic used in instance names and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Fa => "fa",
            CellKind::Ha => "ha",
            CellKind::And2 => "and2",
            CellKind::And3 => "and3",
            CellKind::Or2 => "or2",
            CellKind::Xor2 => "xor2",
            CellKind::Xor3 => "xor3",
            CellKind::Not => "not",
            CellKind::Buf => "buf",
            CellKind::Mux2 => "mux2",
            CellKind::Const0 => "const0",
            CellKind::Const1 => "const1",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// An instantiated cell: a kind plus its input and output net connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    pub(crate) kind: CellKind,
    pub(crate) name: String,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
}

impl Cell {
    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nets connected to the input pins, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The nets connected to the output pins, in pin order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts_are_consistent() {
        for kind in CellKind::all() {
            assert!(kind.input_count() <= 3);
            assert!(kind.output_count() >= 1);
            assert_eq!(
                kind.evaluate(&vec![false; kind.input_count()]).len(),
                kind.output_count()
            );
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = CellKind::Fa.evaluate(&[a, b, c]);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(out[0], total & 1 == 1, "sum of {a},{b},{c}");
                    assert_eq!(out[1], total >= 2, "carry of {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn half_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let out = CellKind::Ha.evaluate(&[a, b]);
                assert_eq!(out[0], a ^ b);
                assert_eq!(out[1], a & b);
            }
        }
    }

    #[test]
    fn simple_gate_functions() {
        assert_eq!(CellKind::And2.evaluate(&[true, false]), vec![false]);
        assert_eq!(CellKind::Or2.evaluate(&[true, false]), vec![true]);
        assert_eq!(CellKind::Xor2.evaluate(&[true, true]), vec![false]);
        assert_eq!(CellKind::Xor3.evaluate(&[true, true, true]), vec![true]);
        assert_eq!(CellKind::And3.evaluate(&[true, true, false]), vec![false]);
        assert_eq!(CellKind::Not.evaluate(&[false]), vec![true]);
        assert_eq!(CellKind::Buf.evaluate(&[true]), vec![true]);
        assert_eq!(CellKind::Mux2.evaluate(&[true, false, false]), vec![true]);
        assert_eq!(CellKind::Mux2.evaluate(&[true, false, true]), vec![false]);
        assert_eq!(CellKind::Const0.evaluate(&[]), vec![false]);
        assert_eq!(CellKind::Const1.evaluate(&[]), vec![true]);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn evaluate_panics_on_arity_mismatch() {
        CellKind::Fa.evaluate(&[true, false]);
    }

    #[test]
    fn table_indices_are_a_bijection() {
        assert_eq!(CellKind::all().len(), CellKind::COUNT);
        let mut seen = [false; CellKind::COUNT];
        for kind in CellKind::all() {
            let index = kind.table_index();
            assert!(index < CellKind::COUNT);
            assert!(!seen[index], "duplicate table index {index}");
            seen[index] = true;
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = CellKind::all().iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::all().len());
    }
}
