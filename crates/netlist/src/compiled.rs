//! The compiled-analysis layer: a netlist flattened into a levelized three-address
//! program shared by every analysis.
//!
//! [`CompiledNetlist`] is built **once** per netlist ([`Netlist::compile`]) and then
//! reused by every downstream consumer — the 64-lane simulator, static timing
//! analysis, probability/power propagation and the design-space explorer — so the
//! Kahn levelization, the fanout map and the per-cell bookkeeping are computed a
//! single time instead of once per analysis:
//!
//! * **flat op array** ([`CompiledOp`]): one fixed-stride record per cell, holding the
//!   kind and the net indices of its pins, in levelized order (concatenating the
//!   levels yields a valid topological order);
//! * **level offsets**: `ops[level_offset(i)..level_offset(i + 1)]` are the mutually
//!   independent cells of level `i`;
//! * **fanout CSR**: the `(reader cell, input pin)` pairs of every net, in one dense
//!   arena (offsets + entries) instead of a `Vec<Vec<_>>`;
//! * **stable net-slot map**: programs index dense per-net buffers by
//!   [`NetId::index`], so one `Vec` per analysis replaces any keyed map;
//! * **kind tables**: the per-cell kind array (cell-index order) and the kind
//!   histogram, which analyses use to resolve technology parameters once per kind
//!   instead of once per cell.
//!
//! # Example
//!
//! ```
//! use dpsyn_netlist::{CellKind, Netlist};
//!
//! let mut netlist = Netlist::new("chain");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let x = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
//! netlist.add_gate(CellKind::Not, &[x]).unwrap();
//! let compiled = netlist.compile().unwrap();
//! assert_eq!(compiled.op_count(), 2);
//! assert_eq!(compiled.level_count(), 2);
//! // The AND feeds the NOT: one fanout entry reading pin 0.
//! assert_eq!(compiled.fanout(x), &[(compiled.ops()[1].cell, 0)]);
//! ```

use crate::cell::{CellId, CellKind};
use crate::error::NetlistError;
use crate::graph::{NetId, Netlist};

/// An order-sensitive splitmix64 chain over the canonical structural word stream
/// shared by [`Netlist::structural_hash`] and [`CompiledNetlist::structural_hash`]:
/// the net count, the primary input/output lists, and every cell's kind and pin nets
/// in cell-index order. Names never enter the stream — two designs that differ only
/// in net or instance names hash identically, and compile to identical programs.
/// One full mix per 64-bit word (not per byte) keeps the hash cheap enough to be
/// computed eagerly inside every [`Netlist::compile`].
///
/// The hasher is public because downstream evaluation keys (the technology-library
/// identity digest, the explorer's persistent result store) chain the **same** mixing
/// function over their own word streams — [`StructuralHasher::with_seed`] starts an
/// independently-seeded chain so two digests of the same words never collide by
/// construction of the seed alone.
pub struct StructuralHasher(u64);

impl StructuralHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

    /// Starts the canonical chain used by the structural hashes.
    pub fn new() -> Self {
        StructuralHasher(Self::OFFSET)
    }

    /// Starts an independently-seeded chain (for fingerprints that must not collide
    /// with the canonical structural hash or with each other).
    pub fn with_seed(seed: u64) -> Self {
        StructuralHasher(Self::OFFSET ^ seed)
    }

    /// Mixes one 64-bit word into the chain.
    pub fn write(&mut self, value: u64) {
        let mut z = self.0 ^ value.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    /// Mixes every byte of a string (length-prefixed, so adjacent fields never
    /// alias) — used by digests that cover names or flow identifiers.
    pub fn write_str(&mut self, text: &str) {
        self.write(text.len() as u64);
        for byte in text.bytes() {
            self.write(u64::from(byte));
        }
    }

    /// Mixes a net list (length-prefixed).
    pub fn write_nets(&mut self, nets: &[NetId]) {
        self.write(nets.len() as u64);
        for net in nets {
            self.write(net.index() as u64);
        }
    }

    /// The chained digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher::new()
    }
}

/// Folds one cell's kind and pin connectivity into a single word (distinct odd
/// multipliers per pin slot, `index + 1` so net 0 still contributes), so the chained
/// hash pays **one mix per cell** — cheap enough to compute eagerly in every
/// [`Netlist::compile`]. Pin order and kind both perturb the word; cell order is
/// captured by the chaining in [`StructuralHasher::write`].
pub(crate) fn cell_word(kind: CellKind, inputs: &[NetId], outputs: &[NetId]) -> u64 {
    const PIN_SALTS: [u64; 5] = [
        0x9e37_79b9_7f4a_7c15,
        0xc2b2_ae3d_27d4_eb4f,
        0x1656_67b1_9e37_79f9,
        0x27d4_eb2f_1656_67c5,
        0x8546_5629_1d9d_5d69,
    ];
    let mut word = (kind.table_index() as u64 + 1).wrapping_mul(0xff51_afd7_ed55_8ccd);
    for (slot, net) in inputs.iter().enumerate() {
        word ^= (net.index() as u64 + 1).wrapping_mul(PIN_SALTS[slot]);
    }
    for (slot, net) in outputs.iter().enumerate() {
        word ^= (net.index() as u64 + 1).wrapping_mul(PIN_SALTS[slot + 3]);
    }
    word
}

/// Hashes one structural identity; `cells` must yield `(kind, inputs, outputs)` in
/// cell-index order.
pub(crate) fn hash_structure<'n>(
    net_count: usize,
    inputs: &[NetId],
    outputs: &[NetId],
    cells: impl Iterator<Item = (CellKind, &'n [NetId], &'n [NetId])>,
) -> u64 {
    let mut hasher = StructuralHasher::new();
    hasher.write(net_count as u64);
    hasher.write_nets(inputs);
    hasher.write_nets(outputs);
    for (kind, cell_inputs, cell_outputs) in cells {
        hasher.write(cell_word(kind, cell_inputs, cell_outputs));
    }
    hasher.finish()
}

/// One levelized instruction of a [`CompiledNetlist`]: a cell kind plus the net
/// indices of its pins and the identity of the originating cell.
///
/// Unused pin slots stay 0 and are never read (the kind determines the arity), so the
/// program is a fixed-stride array evaluation loops stream through without touching
/// the netlist graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledOp {
    /// The cell kind (determines how many of `ins` / `outs` are live).
    pub kind: CellKind,
    /// The originating cell, for attributing per-cell results (energy, culprits).
    pub cell: CellId,
    /// Nets of the input pins, in pin order; surplus slots alias net 0 and are never
    /// read (the kind determines the arity).
    pub ins: [NetId; 3],
    /// Nets of the output pins, in pin order; surplus slots alias net 0 and are never
    /// read.
    pub outs: [NetId; 2],
}

impl CompiledOp {
    /// The live input nets, in pin order.
    #[inline]
    pub fn input_nets(&self) -> &[NetId] {
        &self.ins[..self.kind.input_count()]
    }

    /// The live output nets, in pin order.
    #[inline]
    pub fn output_nets(&self) -> &[NetId] {
        &self.outs[..self.kind.output_count()]
    }
}

/// A [`Netlist`] compiled once into a dense, levelized three-address program plus the
/// shared lookup structures every analysis needs (fanout CSR, kind tables).
///
/// See the [module documentation](self) for the layout and an example; build one with
/// [`Netlist::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetlist {
    net_count: usize,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    ops: Vec<CompiledOp>,
    level_offsets: Vec<usize>,
    fanout_offsets: Vec<u32>,
    fanout_readers: Vec<(CellId, u32)>,
    cell_kinds: Vec<CellKind>,
    kind_counts: Vec<(CellKind, usize)>,
    structural_hash: u64,
}

impl CompiledNetlist {
    /// Compiles `netlist` into a levelized program. Prefer [`Netlist::compile`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the netlist is cyclic; the
    /// reported cell is the lowest-indexed cell left unplaced, matching the error the
    /// former per-analysis traversals produced.
    pub fn compile(netlist: &Netlist) -> Result<Self, NetlistError> {
        let net_count = netlist.net_count();
        let cell_count = netlist.cell_count();

        // Kind tables and the fanout CSR, both in cell-index order so downstream
        // consumers observe exactly the order the former allocating paths produced.
        let mut cell_kinds = Vec::with_capacity(cell_count);
        let mut kind_counts: Vec<(CellKind, usize)> = Vec::new();
        let mut fanout_offsets = vec![0u32; net_count + 1];
        for (_, cell) in netlist.cells() {
            let kind = cell.kind();
            cell_kinds.push(kind);
            match kind_counts.iter_mut().find(|(seen, _)| *seen == kind) {
                Some((_, count)) => *count += 1,
                None => kind_counts.push((kind, 1)),
            }
            for net in cell.inputs() {
                fanout_offsets[net.index() + 1] += 1;
            }
        }
        for index in 0..net_count {
            fanout_offsets[index + 1] += fanout_offsets[index];
        }
        let mut cursor: Vec<u32> = fanout_offsets[..net_count].to_vec();
        let mut fanout_readers = vec![(CellId(0), 0u32); fanout_offsets[net_count] as usize];
        for (id, cell) in netlist.cells() {
            for (pin, net) in cell.inputs().iter().enumerate() {
                let slot = &mut cursor[net.index()];
                fanout_readers[*slot as usize] = (id, pin as u32);
                *slot += 1;
            }
        }

        // Kahn levelization over the CSR — the single traversal every analysis shares.
        let mut pending: Vec<usize> = netlist
            .cells()
            .map(|(_, cell)| {
                cell.inputs()
                    .iter()
                    .filter(|net| netlist.net(**net).driver().is_some())
                    .count()
            })
            .collect();
        let mut current: Vec<CellId> = pending
            .iter()
            .enumerate()
            .filter(|(_, count)| **count == 0)
            .map(|(index, _)| CellId(index as u32))
            .collect();
        let mut ops = Vec::with_capacity(cell_count);
        let mut level_offsets = vec![0];
        while !current.is_empty() {
            let mut next = Vec::new();
            for cell_id in &current {
                let cell = netlist.cell(*cell_id);
                let mut ins = [NetId(0); 3];
                for (slot, net) in cell.inputs().iter().enumerate() {
                    ins[slot] = *net;
                }
                let mut outs = [NetId(0); 2];
                for (slot, net) in cell.outputs().iter().enumerate() {
                    outs[slot] = *net;
                    let begin = fanout_offsets[net.index()] as usize;
                    let end = fanout_offsets[net.index() + 1] as usize;
                    for (reader, _) in &fanout_readers[begin..end] {
                        pending[reader.index()] -= 1;
                        if pending[reader.index()] == 0 {
                            next.push(*reader);
                        }
                    }
                }
                ops.push(CompiledOp {
                    kind: cell.kind(),
                    cell: *cell_id,
                    ins,
                    outs,
                });
            }
            level_offsets.push(ops.len());
            current = next;
        }
        if ops.len() != cell_count {
            let culprit = pending
                .iter()
                .position(|count| *count > 0)
                .map(|index| CellId(index as u32))
                .unwrap_or(CellId(0));
            return Err(NetlistError::CombinationalCycle { cell: culprit });
        }
        Ok(CompiledNetlist {
            net_count,
            inputs: netlist.inputs().to_vec(),
            outputs: netlist.outputs().to_vec(),
            ops,
            level_offsets,
            fanout_offsets,
            fanout_readers,
            cell_kinds,
            kind_counts,
            structural_hash: netlist.structural_hash(),
        })
    }

    /// Number of nets — the length dense per-net buffers must have.
    #[inline]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of cells (= number of ops).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of compiled ops (one per cell).
    #[inline]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The primary input nets, in the netlist's declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary output nets, in the netlist's declaration order.
    #[inline]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The flat program, in levelized order (a valid topological order).
    #[inline]
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// Number of logic levels. Equal to the structural logic depth of the netlist
    /// (cells on the longest input-to-output path).
    #[inline]
    pub fn level_count(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// The ops of one level; all cells within a level are mutually independent.
    ///
    /// # Panics
    ///
    /// Panics when `level >= level_count()`.
    pub fn level(&self, level: usize) -> &[CompiledOp] {
        &self.ops[self.level_offsets[level]..self.level_offsets[level + 1]]
    }

    /// The `(reader cell, input pin)` pairs consuming `net`, served from the
    /// precomputed CSR (no allocation), in the same order the former
    /// `Netlist::fanout_map` listed them.
    ///
    /// # Panics
    ///
    /// Panics when `net` does not belong to the compiled netlist.
    #[inline]
    pub fn fanout(&self, net: NetId) -> &[(CellId, u32)] {
        let begin = self.fanout_offsets[net.index()] as usize;
        let end = self.fanout_offsets[net.index() + 1] as usize;
        &self.fanout_readers[begin..end]
    }

    /// The kind of every cell, indexed by [`CellId::index`] (cell-index order, i.e.
    /// the order [`Netlist::cells`] iterates in — not op order).
    #[inline]
    pub fn cell_kinds(&self) -> &[CellKind] {
        &self.cell_kinds
    }

    /// Histogram of cell kinds, in order of first appearance in the cell table.
    /// Analyses resolve technology parameters once per entry here instead of once
    /// per cell.
    #[inline]
    pub fn kind_counts(&self) -> &[(CellKind, usize)] {
        &self.kind_counts
    }

    /// Reconstructs the level grouping as owned `Vec`s — the shape
    /// [`Netlist::levelize`] returns. Analyses should iterate [`Self::ops`] /
    /// [`Self::level`] instead; this exists for the compatibility path.
    pub fn levels(&self) -> Vec<Vec<CellId>> {
        (0..self.level_count())
            .map(|level| self.level(level).iter().map(|op| op.cell).collect())
            .collect()
    }

    /// Reconstructs the ops in **cell-index order** (the order [`Netlist::cells`]
    /// iterates in), as opposed to the levelized op order of [`Self::ops`].
    ///
    /// Used by structural verification (comparing a freshly synthesized netlist
    /// against a cached program cell by cell) and by [`crate::DeltaState::rebind`]'s
    /// changed-cell diff.
    pub fn cell_ops(&self) -> Vec<CompiledOp> {
        let placeholder = CompiledOp {
            kind: CellKind::Const0,
            cell: CellId(0),
            ins: [NetId(0); 3],
            outs: [NetId(0); 2],
        };
        let mut by_cell = vec![placeholder; self.ops.len()];
        for op in &self.ops {
            by_cell[op.cell.index()] = *op;
        }
        by_cell
    }

    /// A 64-bit hash of the program's structural identity: net count, primary
    /// input/output lists, and every cell's kind and pin connectivity (names are
    /// excluded). Equal to [`Netlist::structural_hash`] of the originating netlist,
    /// so a freshly synthesized netlist can be matched against a cached compiled
    /// program **without recompiling it** — the key of the explorer's per-worker
    /// compiled-program cache. Cache consumers must still verify candidates
    /// structurally (hash equality is necessary, not sufficient).
    ///
    /// Memoized at compile time, so this is a free read — the incremental analyses
    /// assert it on every delta to catch state/program mix-ups.
    #[inline]
    pub fn structural_hash(&self) -> u64 {
        self.structural_hash
    }
}
