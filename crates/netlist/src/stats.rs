//! Netlist statistics used in reports and tests.

use crate::{CellKind, CompiledNetlist, Netlist};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate structural statistics of a netlist.
///
/// # Example
/// ```
/// use dpsyn_netlist::{CellKind, Netlist, NetlistStats};
/// let mut netlist = Netlist::new("demo");
/// let a = netlist.add_input("a");
/// let b = netlist.add_input("b");
/// let y = netlist.add_gate(CellKind::And2, &[a, b]).unwrap()[0];
/// netlist.mark_output(y);
/// let stats = NetlistStats::of(&netlist);
/// assert_eq!(stats.cell_count(), 1);
/// assert_eq!(stats.count(CellKind::And2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    cells_by_kind: BTreeMap<CellKind, usize>,
    net_count: usize,
    input_count: usize,
    output_count: usize,
    logic_depth: usize,
}

impl NetlistStats {
    /// Computes the statistics of a netlist.
    ///
    /// This re-traverses the graph for the logic depth; callers that already hold a
    /// [`CompiledNetlist`] should use [`NetlistStats::of_compiled`] instead.
    pub fn of(netlist: &Netlist) -> Self {
        let mut cells_by_kind = BTreeMap::new();
        for (_, cell) in netlist.cells() {
            *cells_by_kind.entry(cell.kind()).or_insert(0) += 1;
        }
        NetlistStats {
            cells_by_kind,
            net_count: netlist.net_count(),
            input_count: netlist.inputs().len(),
            output_count: netlist.outputs().len(),
            logic_depth: netlist.logic_depth(),
        }
    }

    /// Reads the same statistics straight off a compiled program — no traversal, no
    /// second pass over the cell table.
    pub fn of_compiled(compiled: &CompiledNetlist) -> Self {
        NetlistStats {
            cells_by_kind: compiled.kind_counts().iter().copied().collect(),
            net_count: compiled.net_count(),
            input_count: compiled.inputs().len(),
            output_count: compiled.outputs().len(),
            logic_depth: compiled.level_count(),
        }
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells_by_kind.values().sum()
    }

    /// Number of cells of a particular kind.
    pub fn count(&self, kind: CellKind) -> usize {
        self.cells_by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Number of adder cells (full adders plus half adders).
    pub fn adder_count(&self) -> usize {
        self.count(CellKind::Fa) + self.count(CellKind::Ha)
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.output_count
    }

    /// Structural logic depth (cells on the longest input-to-output path).
    pub fn logic_depth(&self) -> usize {
        self.logic_depth
    }

    /// Per-kind cell histogram.
    pub fn cells_by_kind(&self) -> &BTreeMap<CellKind, usize> {
        &self.cells_by_kind
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cells, {} nets, {} inputs, {} outputs, depth {}",
            self.cell_count(),
            self.net_count,
            self.input_count,
            self.output_count,
            self.logic_depth
        )?;
        for (kind, count) in &self.cells_by_kind {
            writeln!(f, "  {kind:>6}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_netlist() {
        let mut netlist = Netlist::new("demo");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let fa = netlist.add_gate(CellKind::Fa, &[a, b, c]).unwrap();
        let inverted = netlist.add_gate(CellKind::Not, &[fa[0]]).unwrap()[0];
        netlist.mark_output(inverted);
        netlist.mark_output(fa[1]);
        let stats = NetlistStats::of(&netlist);
        assert_eq!(stats.cell_count(), 2);
        assert_eq!(stats.adder_count(), 1);
        assert_eq!(stats.count(CellKind::Not), 1);
        assert_eq!(stats.count(CellKind::Xor2), 0);
        assert_eq!(stats.input_count(), 3);
        assert_eq!(stats.output_count(), 2);
        assert_eq!(stats.logic_depth(), 2);
        let text = stats.to_string();
        assert!(text.contains("2 cells"));
        assert!(text.contains("fa"));
    }

    #[test]
    fn empty_netlist_stats() {
        let stats = NetlistStats::of(&Netlist::new("empty"));
        assert_eq!(stats.cell_count(), 0);
        assert_eq!(stats.logic_depth(), 0);
    }

    #[test]
    fn compiled_stats_match_graph_stats() {
        let mut netlist = Netlist::new("demo");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let fa = netlist.add_gate(CellKind::Fa, &[a, b, c]).unwrap();
        let inverted = netlist.add_gate(CellKind::Not, &[fa[0]]).unwrap()[0];
        netlist.mark_output(inverted);
        let compiled = netlist.compile().unwrap();
        assert_eq!(
            NetlistStats::of_compiled(&compiled),
            NetlistStats::of(&netlist)
        );
    }
}
