//! Bit-level structural netlists for datapath synthesis.
//!
//! A [`Netlist`] is a directed acyclic graph of [`Cell`]s (full adders, half adders and
//! simple logic gates) connected by [`Net`]s. It is the common currency between the
//! FA-tree allocation algorithms of the DAC 2000 reproduction, the baseline synthesis
//! strategies, static timing analysis, power estimation, logic simulation and Verilog
//! emission.
//!
//! The crate deliberately models circuits at the granularity the paper works at: the
//! full/half adder is treated as a primitive "close to a gate" (Section 1 of the paper),
//! alongside the AND/XOR/NOT gates needed for partial-product generation and
//! two's-complement subtraction.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_netlist::{CellKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut netlist = Netlist::new("half_adder_demo");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let sum = netlist.add_net("sum");
//! let carry = netlist.add_net("carry");
//! netlist.add_cell(CellKind::Ha, "ha0", vec![a, b], vec![sum, carry])?;
//! netlist.mark_output(sum);
//! netlist.mark_output(carry);
//! netlist.validate()?;
//! assert_eq!(netlist.cell_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod compiled;
mod delta;
mod error;
mod graph;
mod stats;
mod verilog;
mod word;

pub use cell::{Cell, CellId, CellKind};
pub use compiled::{CompiledNetlist, CompiledOp, StructuralHasher};
pub use delta::{DeltaState, DirtyWorklist, InputDelta, PowerChannel, TimingChannel};
pub use error::NetlistError;
pub use graph::{Net, NetId, Netlist};
pub use stats::NetlistStats;
pub use word::{Word, WordMap};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_builds() {
        let mut netlist = Netlist::new("demo");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let sum = netlist.add_net("s");
        let carry = netlist.add_net("co");
        netlist
            .add_cell(CellKind::Fa, "fa0", vec![a, b, c], vec![sum, carry])
            .unwrap();
        netlist.mark_output(sum);
        netlist.mark_output(carry);
        assert!(netlist.validate().is_ok());
        assert!(netlist.to_verilog().contains("module demo"));
    }
}
