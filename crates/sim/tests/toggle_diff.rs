//! Differential toggle counting: the lane-based [`ToggleCounter`] path (and the
//! lane-based [`measure_toggles`] built on it) must match the scalar record path
//! **exactly** — same toggles on every net, same vector count — on seeded biased
//! stimulus sequences, regardless of how the sequence is chunked into lane batches.

use dpsyn_ir::InputSpec;
use dpsyn_netlist::{CellKind, NetId, Netlist, Word, WordMap};
use dpsyn_sim::{
    measure_toggles, measure_toggles_blocks, BlockSim, LaneSim, Simulator, Stimulus, ToggleCounter,
    BLOCK_SIZES,
};

/// Builds an 8-bit ripple-carry adder with an XOR/MUX post-stage — enough cell
/// variety and depth (FA, HA, XOR, MUX, NOT) to exercise every lane path.
fn datapath() -> (Netlist, WordMap) {
    let mut netlist = Netlist::new("toggle_datapath");
    let a: Vec<_> = (0..8).map(|i| netlist.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..8).map(|i| netlist.add_input(format!("b{i}"))).collect();
    let sel = netlist.add_input("sel");
    let mut carry: Option<NetId> = None;
    let mut sum = Vec::new();
    for (a_bit, b_bit) in a.iter().zip(&b) {
        let outs = match carry {
            None => netlist.add_gate(CellKind::Ha, &[*a_bit, *b_bit]).unwrap(),
            Some(c) => netlist
                .add_gate(CellKind::Fa, &[*a_bit, *b_bit, c])
                .unwrap(),
        };
        sum.push(outs[0]);
        carry = Some(outs[1]);
    }
    sum.push(carry.unwrap());
    // Post-stage: out[i] = sel ? ~sum[i] : sum[i] ^ a[i%8].
    let mut outs = Vec::new();
    for (index, sum_bit) in sum.iter().enumerate() {
        let inverted = netlist.add_gate(CellKind::Not, &[*sum_bit]).unwrap()[0];
        let mixed = netlist
            .add_gate(CellKind::Xor2, &[*sum_bit, a[index % 8]])
            .unwrap()[0];
        let out = netlist
            .add_gate(CellKind::Mux2, &[mixed, inverted, sel])
            .unwrap()[0];
        netlist.mark_output(out);
        outs.push(out);
    }
    let map = WordMap::new(
        vec![
            Word::new("a", a),
            Word::new("b", b),
            Word::new("sel", vec![sel]),
        ],
        Word::new("out", outs),
    );
    (netlist, map)
}

fn biased_spec() -> InputSpec {
    InputSpec::builder()
        .var_with_probability("a", 8, 0.3)
        .var_with_probability("b", 8, 0.7)
        .var_with_probability("sel", 1, 0.5)
        .build()
        .unwrap()
}

/// Counts toggles the historical way: scalar evaluation, one vector at a time.
fn scalar_count(
    netlist: &Netlist,
    map: &WordMap,
    spec: &InputSpec,
    vectors: usize,
    seed: u64,
) -> ToggleCounter {
    let simulator = Simulator::compile(netlist).unwrap();
    let mut stimulus = Stimulus::with_seed(seed);
    let mut counter = ToggleCounter::new(netlist.net_count());
    for _ in 0..vectors {
        let assignment = stimulus.biased_assignment(spec);
        let values = simulator.evaluate(&map.assignment_to_bits(&assignment));
        counter.record(&values);
    }
    counter
}

fn assert_identical(lhs: &ToggleCounter, rhs: &ToggleCounter, netlist: &Netlist, context: &str) {
    assert_eq!(lhs.vectors(), rhs.vectors(), "{context}: vector counts");
    for (net, _) in netlist.nets() {
        assert_eq!(
            lhs.toggles(net),
            rhs.toggles(net),
            "{context}: toggles of net {net}"
        );
    }
}

/// `measure_toggles` (lane-based internally) must reproduce the scalar loop exactly,
/// for vector counts that are multiples of 64, off-by-one around the lane width, and
/// smaller than one batch.
#[test]
fn measure_toggles_matches_the_scalar_loop_exactly() {
    let (netlist, map) = datapath();
    let spec = biased_spec();
    for (vectors, seed) in [
        (1usize, 3u64),
        (63, 5),
        (64, 7),
        (65, 11),
        (256, 13),
        (1000, 17),
    ] {
        let lanes = measure_toggles(&netlist, &map, &spec, vectors, seed).unwrap();
        let scalar = scalar_count(&netlist, &map, &spec, vectors, seed);
        assert_identical(&lanes, &scalar, &netlist, &format!("{vectors} vectors"));
    }
}

/// Chunking one sequence into arbitrary batch sizes (including single-vector
/// batches and mixing with the scalar `record` path) never changes the counts.
#[test]
fn lane_batch_boundaries_are_seamless() {
    let (netlist, map) = datapath();
    let spec = biased_spec();
    let vectors = 200;
    let seed = 23;
    let scalar = scalar_count(&netlist, &map, &spec, vectors, seed);

    let lane_sim = LaneSim::compile(&netlist).unwrap();
    let mut stimulus = Stimulus::with_seed(seed);
    let assignments = stimulus.biased_batch(&spec, vectors);
    let mut chunked = ToggleCounter::new(netlist.net_count());
    let mut lanes = lane_sim.lane_buffer();
    let mut cursor = 0;
    // Deliberately ragged chunk sizes: 1, 17, 64, 3, 50, 1, 64, ...
    for size in [1usize, 17, 64, 3, 50, 1, 64].iter().cycle() {
        if cursor >= assignments.len() {
            break;
        }
        let size = (*size).min(assignments.len() - cursor);
        let chunk = &assignments[cursor..cursor + size];
        LaneSim::pack_word_assignments(&map, chunk, &mut lanes);
        lane_sim.evaluate_into(&mut lanes);
        chunked.record_lanes(&lanes, size);
        cursor += size;
    }
    assert_identical(&chunked, &scalar, &netlist, "ragged lane batches");

    // Mixed mode: the first 100 vectors through the scalar `record` path, the rest
    // through `record_lanes`, on the same counter.
    let scalar_sim = Simulator::compile(&netlist).unwrap();
    let mut mixed = ToggleCounter::new(netlist.net_count());
    for assignment in &assignments[..100] {
        mixed.record(&scalar_sim.evaluate(&map.assignment_to_bits(assignment)));
    }
    for chunk in assignments[100..].chunks(64) {
        LaneSim::pack_word_assignments(&map, chunk, &mut lanes);
        lane_sim.evaluate_into(&mut lanes);
        mixed.record_lanes(&lanes, chunk.len());
    }
    assert_identical(&mixed, &scalar, &netlist, "mixed scalar/lane recording");
}

/// `measure_toggles_blocks` must reproduce the scalar loop exactly for every
/// supported block size, on vector counts that are ragged against both the lane
/// width and the block width.
#[test]
fn measure_toggles_blocks_matches_the_scalar_loop_exactly() {
    let (netlist, map) = datapath();
    let spec = biased_spec();
    for (vectors, seed) in [(1usize, 3u64), (63, 5), (257, 13), (1000, 17)] {
        let scalar = scalar_count(&netlist, &map, &spec, vectors, seed);
        for block in BLOCK_SIZES {
            let blocked =
                measure_toggles_blocks(&netlist, &map, &spec, vectors, seed, block).unwrap();
            assert_identical(
                &blocked,
                &scalar,
                &netlist,
                &format!("{vectors} vectors, block {block}"),
            );
        }
    }
}

/// Chunking one sequence into ragged block batches — and mixing block recording
/// with the scalar and lane paths on the same counter — never changes the counts.
#[test]
fn block_batch_boundaries_are_seamless() {
    let (netlist, map) = datapath();
    let spec = biased_spec();
    let vectors = 700;
    let seed = 29;
    let scalar = scalar_count(&netlist, &map, &spec, vectors, seed);
    let mut stimulus = Stimulus::with_seed(seed);
    let assignments = stimulus.biased_batch(&spec, vectors);

    for block in BLOCK_SIZES {
        let block_sim = BlockSim::compile(&netlist, block).unwrap();
        let mut blocks = block_sim.block_buffer();
        let mut chunked = ToggleCounter::new(netlist.net_count());
        let mut cursor = 0;
        // Ragged against both the 64-lane word and the block width.
        for size in [1usize, 65, block * 64, 17, 129, 3].iter().cycle() {
            if cursor >= assignments.len() {
                break;
            }
            let size = (*size)
                .min(block_sim.vectors_per_pass())
                .min(assignments.len() - cursor);
            let chunk = &assignments[cursor..cursor + size];
            block_sim.pack_word_assignments(&map, chunk, &mut blocks);
            block_sim.evaluate_into(&mut blocks);
            chunked.record_blocks(&blocks, block, size);
            cursor += size;
        }
        assert_identical(
            &chunked,
            &scalar,
            &netlist,
            &format!("ragged block batches, block {block}"),
        );
    }

    // Mixed mode: scalar, then lanes, then blocks, on one counter.
    let scalar_sim = Simulator::compile(&netlist).unwrap();
    let lane_sim = LaneSim::compile(&netlist).unwrap();
    let block_sim = BlockSim::compile(&netlist, 4).unwrap();
    let mut mixed = ToggleCounter::new(netlist.net_count());
    for assignment in &assignments[..50] {
        mixed.record(&scalar_sim.evaluate(&map.assignment_to_bits(assignment)));
    }
    let mut lanes = lane_sim.lane_buffer();
    for chunk in assignments[50..178].chunks(64) {
        LaneSim::pack_word_assignments(&map, chunk, &mut lanes);
        lane_sim.evaluate_into(&mut lanes);
        mixed.record_lanes(&lanes, chunk.len());
    }
    let mut blocks = block_sim.block_buffer();
    for chunk in assignments[178..].chunks(block_sim.vectors_per_pass()) {
        block_sim.pack_word_assignments(&map, chunk, &mut blocks);
        block_sim.evaluate_into(&mut blocks);
        mixed.record_blocks(&blocks, 4, chunk.len());
    }
    assert_identical(
        &mixed,
        &scalar,
        &netlist,
        "mixed scalar/lane/block recording",
    );
}
