//! Differential property suite: on randomly grown netlists the SIMD block engine
//! must agree bit-for-bit with the 64-lane oracle on every net of every lane word,
//! for every supported block size, with exact toggle parity across ragged batches —
//! the blocks half of the scalar → lanes → blocks oracle chain.

use dpsyn_netlist::{CellKind, NetId, Netlist};
use dpsyn_sim::{BlockSim, LaneSim, ToggleCounter, BLOCK_SIZES, LANES};
use proptest::prelude::*;

/// Grows a random DAG over the full gate palette (the same construction
/// `prop_lanes.rs` uses) and returns it with its primary inputs.
fn random_dag(choices: &[(usize, usize, usize, usize)]) -> (Netlist, Vec<NetId>) {
    let palette = [
        CellKind::Fa,
        CellKind::Ha,
        CellKind::And2,
        CellKind::And3,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xor3,
        CellKind::Not,
        CellKind::Buf,
        CellKind::Mux2,
    ];
    let mut netlist = Netlist::new("random_dag");
    let inputs = vec![
        netlist.add_input("a"),
        netlist.add_input("b"),
        netlist.add_input("c"),
        netlist.add_input("d"),
    ];
    let mut nets = inputs.clone();
    nets.push(netlist.constant(false));
    nets.push(netlist.constant(true));
    for (kind_index, i0, i1, i2) in choices {
        let kind = palette[kind_index % palette.len()];
        let pick = |index: usize| nets[index % nets.len()];
        let gate_inputs: Vec<_> = [*i0, *i1, *i2][..kind.input_count()]
            .iter()
            .map(|index| pick(*index))
            .collect();
        let outputs = netlist.add_gate(kind, &gate_inputs).expect("gate");
        nets.extend(outputs);
    }
    let last = *nets.last().expect("at least the inputs");
    netlist.mark_output(last);
    (netlist, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random netlists and a random sequence of 64-vector input words (with a
    /// ragged tail), every supported block size must (a) reproduce the 64-lane
    /// oracle's evaluated words bit for bit on every net, and (b) count exactly the
    /// same toggles — including the word-to-word seams inside a block, the
    /// batch-to-batch seams, and partially filled final blocks.
    #[test]
    fn block_engine_agrees_with_lane_oracle_on_values_and_toggles(
        choices in prop::collection::vec((0usize..10, 0usize..96, 0usize..96, 0usize..96), 1..60),
        words in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..12),
        tail in 1usize..=LANES,
    ) {
        let (netlist, inputs) = random_dag(&choices);
        let net_count = netlist.net_count();
        let lane_sim = LaneSim::compile(&netlist).expect("acyclic by construction");
        // The 64-lane oracle: evaluate the word sequence one lane pass at a time,
        // keeping every evaluated buffer for the value comparison, and count
        // toggles with a ragged tail on the last word.
        let mut lane_counter = ToggleCounter::new(net_count);
        let mut lane_buffers: Vec<Vec<u64>> = Vec::with_capacity(words.len());
        for (position, (a, b, c, d)) in words.iter().enumerate() {
            let mut lanes = lane_sim.lane_buffer();
            lanes[inputs[0].index()] = *a;
            lanes[inputs[1].index()] = *b;
            lanes[inputs[2].index()] = *c;
            lanes[inputs[3].index()] = *d;
            lane_sim.evaluate_into(&mut lanes);
            let count = if position + 1 == words.len() { tail } else { LANES };
            lane_counter.record_lanes(&lanes, count);
            lane_buffers.push(lanes);
        }
        for block in BLOCK_SIZES {
            let block_sim = BlockSim::compile(&netlist, block).expect("acyclic");
            prop_assert_eq!(block_sim.vectors_per_pass(), block * LANES);
            let mut block_counter = ToggleCounter::new(net_count);
            let mut position = 0;
            while position < words.len() {
                let take = (words.len() - position).min(block);
                let mut blocks = block_sim.block_buffer();
                for offset in 0..take {
                    let (a, b, c, d) = words[position + offset];
                    blocks[inputs[0].index() * block + offset] = a;
                    blocks[inputs[1].index() * block + offset] = b;
                    blocks[inputs[2].index() * block + offset] = c;
                    blocks[inputs[3].index() * block + offset] = d;
                }
                block_sim.evaluate_into(&mut blocks);
                // (a) value identity: every evaluated word of every net matches
                // the lane oracle's word for the same stimulus position.
                for offset in 0..take {
                    for net in 0..net_count {
                        prop_assert_eq!(
                            blocks[net * block + offset],
                            lane_buffers[position + offset][net],
                            "net {} word {} diverges at block size {}",
                            net,
                            position + offset,
                            block
                        );
                    }
                }
                let count = if position + take == words.len() {
                    (take - 1) * LANES + tail
                } else {
                    take * LANES
                };
                block_counter.record_blocks(&blocks, block, count);
                position += take;
            }
            // (b) exact toggle parity with the 64-lane oracle.
            prop_assert_eq!(
                block_counter.vectors(),
                lane_counter.vectors(),
                "vector count diverges at block size {}",
                block
            );
            for net in 0..net_count {
                prop_assert_eq!(
                    block_counter.toggles(netlist_net(&netlist, net)),
                    lane_counter.toggles(netlist_net(&netlist, net)),
                    "toggle count diverges on net {} at block size {}",
                    net,
                    block
                );
            }
        }
    }
}

/// Recovers the `NetId` with a given index (net identifier construction is private
/// to the netlist crate).
fn netlist_net(netlist: &Netlist, index: usize) -> NetId {
    netlist
        .nets()
        .map(|(id, _)| id)
        .find(|id| id.index() == index)
        .expect("every index below net_count is a live net")
}
