//! Exhaustive per-cell differential test: every [`CellKind`] is evaluated over its
//! full input cube three ways — scalar [`CellKind::evaluate`], the 64-lane engine on
//! a one-cell netlist, and a hand-written truth-table literal — and all three must
//! agree on every pattern and output pin.

use dpsyn_netlist::{CellKind, Netlist, Word, WordMap};
use dpsyn_sim::LaneSim;
use std::collections::BTreeMap;

/// The expected truth table of a cell kind, written out literally: row `pattern`
/// (input pin `i` = bit `i` of the pattern) lists the output pins in order.
fn truth_table(kind: CellKind) -> Vec<Vec<bool>> {
    const F: bool = false;
    const T: bool = true;
    match kind {
        // pattern = cin·2² + b·2 + a  →  [sum, cout]
        CellKind::Fa => vec![
            vec![F, F], // 0 + 0 + 0
            vec![T, F], // 1 + 0 + 0
            vec![T, F], // 0 + 1 + 0
            vec![F, T], // 1 + 1 + 0
            vec![T, F], // 0 + 0 + 1
            vec![F, T], // 1 + 0 + 1
            vec![F, T], // 0 + 1 + 1
            vec![T, T], // 1 + 1 + 1
        ],
        // pattern = b·2 + a  →  [sum, cout]
        CellKind::Ha => vec![vec![F, F], vec![T, F], vec![T, F], vec![F, T]],
        CellKind::And2 => vec![vec![F], vec![F], vec![F], vec![T]],
        CellKind::And3 => vec![
            vec![F],
            vec![F],
            vec![F],
            vec![F],
            vec![F],
            vec![F],
            vec![F],
            vec![T],
        ],
        CellKind::Or2 => vec![vec![F], vec![T], vec![T], vec![T]],
        CellKind::Xor2 => vec![vec![F], vec![T], vec![T], vec![F]],
        CellKind::Xor3 => vec![
            vec![F],
            vec![T],
            vec![T],
            vec![F],
            vec![T],
            vec![F],
            vec![F],
            vec![T],
        ],
        CellKind::Not => vec![vec![T], vec![F]],
        CellKind::Buf => vec![vec![F], vec![T]],
        // pattern = sel·4 + b·2 + a  →  [sel ? b : a]
        CellKind::Mux2 => vec![
            vec![F], // a=0 b=0 sel=0 -> a
            vec![T], // a=1 b=0 sel=0 -> a
            vec![F], // a=0 b=1 sel=0 -> a
            vec![T], // a=1 b=1 sel=0 -> a
            vec![F], // a=0 b=0 sel=1 -> b
            vec![F], // a=1 b=0 sel=1 -> b
            vec![T], // a=0 b=1 sel=1 -> b
            vec![T], // a=1 b=1 sel=1 -> b
        ],
        CellKind::Const0 => vec![vec![F]],
        CellKind::Const1 => vec![vec![T]],
    }
}

/// Builds the one-cell netlist for `kind`: one primary input per input pin, every
/// output marked, and a word map exposing the pattern/result words.
fn single_cell(kind: CellKind) -> (Netlist, WordMap) {
    let mut netlist = Netlist::new(format!("{kind}_cell"));
    let inputs: Vec<_> = (0..kind.input_count())
        .map(|pin| netlist.add_input(format!("i{pin}")))
        .collect();
    let outputs = netlist.add_gate(kind, &inputs).expect("fixed arity");
    for net in &outputs {
        netlist.mark_output(*net);
    }
    let map = WordMap::new(
        vec![Word::new("pattern", inputs)],
        Word::new("result", outputs),
    );
    (netlist, map)
}

#[test]
fn every_cell_kind_matches_scalar_and_truth_table_on_the_full_cube() {
    for kind in CellKind::all() {
        let table = truth_table(kind);
        assert_eq!(
            table.len(),
            1 << kind.input_count(),
            "{kind}: table covers the full cube"
        );
        let (netlist, map) = single_cell(kind);
        let lane_sim = LaneSim::compile(&netlist).unwrap();
        // The whole cube in one lane pass (at most 8 of the 64 lanes used).
        let batch: Vec<BTreeMap<String, u64>> = (0..table.len() as u64)
            .map(|pattern| {
                let mut assignment = BTreeMap::new();
                assignment.insert("pattern".to_string(), pattern);
                assignment
            })
            .collect();
        let lane_results = lane_sim.evaluate_word_batch(&map, &batch);
        for (pattern, expected_outputs) in table.iter().enumerate() {
            let inputs: Vec<bool> = (0..kind.input_count())
                .map(|pin| (pattern >> pin) & 1 == 1)
                .collect();
            // Scalar `CellKind::evaluate` vs the truth-table literal.
            let scalar_outputs = kind.evaluate(&inputs);
            assert_eq!(
                &scalar_outputs, expected_outputs,
                "{kind}: scalar evaluation diverges from the truth table on {pattern:#b}"
            );
            // Lane engine vs the truth-table literal, pin by pin.
            let expected_word: u64 = expected_outputs
                .iter()
                .enumerate()
                .fold(0, |acc, (pin, bit)| acc | ((*bit as u64) << pin));
            assert_eq!(
                lane_results[pattern], expected_word,
                "{kind}: lane evaluation diverges from the truth table on {pattern:#b}"
            );
        }
    }
}
