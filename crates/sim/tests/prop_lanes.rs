//! Differential property suite: on randomly grown netlists the 64-lane engine must
//! agree bit-for-bit with the scalar oracle on every net of all 64 lanes.

use dpsyn_netlist::{CellKind, NetId, Netlist};
use dpsyn_sim::{LaneSim, Simulator, LANES};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Grows a random DAG over the full gate palette (the same construction the netlist
/// crate's own property suite uses) and returns it with its primary inputs.
fn random_dag(choices: &[(usize, usize, usize, usize)]) -> (Netlist, Vec<NetId>) {
    let palette = [
        CellKind::Fa,
        CellKind::Ha,
        CellKind::And2,
        CellKind::And3,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xor3,
        CellKind::Not,
        CellKind::Buf,
        CellKind::Mux2,
    ];
    let mut netlist = Netlist::new("random_dag");
    let inputs = vec![
        netlist.add_input("a"),
        netlist.add_input("b"),
        netlist.add_input("c"),
        netlist.add_input("d"),
    ];
    let mut nets = inputs.clone();
    // Sprinkle the shared constants in as candidate fan-ins too.
    nets.push(netlist.constant(false));
    nets.push(netlist.constant(true));
    for (kind_index, i0, i1, i2) in choices {
        let kind = palette[kind_index % palette.len()];
        let pick = |index: usize| nets[index % nets.len()];
        let gate_inputs: Vec<_> = [*i0, *i1, *i2][..kind.input_count()]
            .iter()
            .map(|index| pick(*index))
            .collect();
        let outputs = netlist.add_gate(kind, &gate_inputs).expect("gate");
        nets.extend(outputs);
    }
    let last = *nets.last().expect("at least the inputs");
    netlist.mark_output(last);
    (netlist, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random netlists and random 64-vector input lanes, every net's lane word
    /// equals the scalar oracle's value recomputed lane by lane.
    #[test]
    fn lane_engine_agrees_with_scalar_oracle_on_all_lanes(
        choices in prop::collection::vec((0usize..10, 0usize..96, 0usize..96, 0usize..96), 1..80),
        input_lanes in prop::collection::vec(any::<u64>(), 4),
    ) {
        let (netlist, inputs) = random_dag(&choices);
        let lane_sim = LaneSim::compile(&netlist).expect("acyclic by construction");
        let scalar = Simulator::compile(&netlist).expect("acyclic by construction");
        let mut lane_inputs = BTreeMap::new();
        for (net, lanes) in inputs.iter().zip(&input_lanes) {
            lane_inputs.insert(*net, *lanes);
        }
        let lane_values = lane_sim.evaluate(&lane_inputs);
        prop_assert_eq!(lane_values.len(), netlist.net_count());
        for lane in 0..LANES {
            let mut scalar_inputs = BTreeMap::new();
            for (net, lanes) in inputs.iter().zip(&input_lanes) {
                scalar_inputs.insert(*net, (lanes >> lane) & 1 == 1);
            }
            let scalar_values = scalar.evaluate(&scalar_inputs);
            for (index, scalar_value) in scalar_values.iter().enumerate() {
                prop_assert_eq!(
                    (lane_values[index] >> lane) & 1 == 1,
                    *scalar_value,
                    "net {} lane {} diverges",
                    index,
                    lane
                );
            }
        }
    }

    /// The compiled program is levelized: it has as many levels as the netlist's
    /// structural logic depth and exactly one op per cell.
    #[test]
    fn compiled_program_mirrors_the_netlist(
        choices in prop::collection::vec((0usize..10, 0usize..96, 0usize..96, 0usize..96), 1..80),
    ) {
        let (netlist, _) = random_dag(&choices);
        let lane_sim = LaneSim::compile(&netlist).expect("acyclic by construction");
        prop_assert_eq!(lane_sim.op_count(), netlist.cell_count());
        prop_assert_eq!(lane_sim.level_count(), netlist.levelize().expect("acyclic").len());
        prop_assert_eq!(lane_sim.net_count(), netlist.net_count());
    }
}
