//! Functional equivalence checking between a netlist and the golden expression model.

use crate::{LaneSim, SimError, Stimulus, LANES};
use dpsyn_ir::{Expr, InputSpec};
use dpsyn_netlist::{Netlist, WordMap};

/// Checks functional equivalence between a synthesized netlist and the golden
/// expression model, exhaustively when the input space is small (≤ 16 bits) and with
/// `random_vectors` random assignments otherwise.
///
/// `width` is the output width the expression is reduced modulo.
///
/// The netlist side runs on the bit-parallel [`LaneSim`] engine, 64 assignments per
/// pass; the stimulus stream (exhaustive enumeration order, random draws and their
/// seeding) is unchanged from the historical scalar implementation, so
/// counterexamples and pass/fail behaviour are reproducible across both engines.
///
/// # Errors
///
/// Returns [`SimError::Mismatch`] with a counterexample when the two models disagree,
/// or other variants when either model cannot be evaluated.
pub fn check_equivalence(
    netlist: &Netlist,
    map: &WordMap,
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    random_vectors: usize,
    seed: u64,
) -> Result<(), SimError> {
    let simulator = LaneSim::compile(netlist)?;
    let mut stimulus = Stimulus::with_seed(seed);
    let assignments = Stimulus::exhaustive_assignments(spec, 16)
        .unwrap_or_else(|| stimulus.uniform_batch(spec, random_vectors));
    let mut lanes = simulator.lane_buffer();
    for chunk in assignments.chunks(LANES) {
        LaneSim::pack_word_assignments(map, chunk, &mut lanes);
        simulator.evaluate_into(&mut lanes);
        for (lane, assignment) in chunk.iter().enumerate() {
            let expected = expr.evaluate_mod(assignment, width)?;
            let actual = LaneSim::unpack_output(map, &lanes, lane);
            if expected != actual {
                return Err(SimError::Mismatch {
                    assignment: assignment.clone(),
                    netlist_value: actual,
                    expected_value: expected,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ripple2;
    use crate::SimError;

    #[test]
    fn equivalence_against_expression() {
        let (netlist, map) = ripple2();
        let expr = Expr::var("a") + Expr::var("b");
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap();
        check_equivalence(&netlist, &map, &expr, &spec, 3, 64, 7).unwrap();
    }

    #[test]
    fn inequivalence_is_detected_with_counterexample() {
        let (netlist, map) = ripple2();
        let expr = Expr::var("a") * Expr::var("b");
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap();
        let result = check_equivalence(&netlist, &map, &expr, &spec, 3, 64, 7);
        match result {
            Err(SimError::Mismatch {
                assignment,
                netlist_value,
                expected_value,
            }) => {
                let a = assignment["a"];
                let b = assignment["b"];
                assert_eq!(netlist_value, (a + b) % 8);
                assert_eq!(expected_value, (a * b) % 8);
            }
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    #[test]
    fn sim_error_display() {
        let (netlist, map) = ripple2();
        let expr = Expr::var("a") - Expr::var("b");
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap();
        let error = check_equivalence(&netlist, &map, &expr, &spec, 3, 16, 1).unwrap_err();
        assert!(error.to_string().contains("netlist computes"));
    }
}
