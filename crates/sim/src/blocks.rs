//! The SIMD block-lane evaluation core: `B` lane words per net.
//!
//! [`BlockSim`] widens [`LaneSim`](crate::LaneSim) from one `u64` lane word per net
//! to a configurable block of `B` consecutive words, evaluating `B × 64` stimulus
//! vectors per pass. The lane buffer is a flat `Vec<u64>` chunked `[u64; B]`-wise:
//! net `n` owns words `n·B .. n·B + B`, and stimulus vector `v` lives in bit
//! `v mod 64` of word `v / 64` of every net's block.
//!
//! The inner loop is written for autovectorization: the block size is dispatched
//! **once** per evaluation call to a monomorphized const-generic kernel, so inside
//! the op loop every gate is a straight-line `for k in 0..B` over fixed-size
//! `[u64; B]` arrays with no per-op branching on the block size — exactly the shape
//! LLVM turns into full-width vector ops.
//!
//! Correctness is anchored the same way the 64-lane engine is anchored to the
//! scalar interpreter: the differential suite in `crates/sim/tests/prop_blocks.rs`
//! requires bit-identical outputs and exact toggle parity against [`LaneSim`] for
//! every supported block size, so the oracle chain is scalar → lanes → blocks.

use crate::{SimError, LANES};
use dpsyn_netlist::{CellKind, CompiledNetlist, NetId, Netlist, WordMap};
use std::collections::BTreeMap;

/// Default block size: 4 lane words (256 vectors) per net per pass.
pub const DEFAULT_BLOCK: usize = 4;

/// The block sizes the engine supports (each dispatches to its own monomorphized
/// kernel).
pub const BLOCK_SIZES: [usize; 4] = [1, 2, 4, 8];

/// A netlist compiled into a levelized program evaluated `B × 64` vectors per pass.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use dpsyn_netlist::{CellKind, Netlist};
/// use dpsyn_sim::{BlockSim, DEFAULT_BLOCK};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut netlist = Netlist::new("and");
/// let a = netlist.add_input("a");
/// let b = netlist.add_input("b");
/// let y = netlist.add_gate(CellKind::And2, &[a, b])?[0];
/// netlist.mark_output(y);
/// let sim = BlockSim::compile(&netlist, DEFAULT_BLOCK)?;
/// assert_eq!(sim.vectors_per_pass(), DEFAULT_BLOCK * 64);
/// let mut blocks = sim.block_buffer();
/// // Set all vectors of `a` to 1, alternate `b`: y = b.
/// for k in 0..sim.block() {
///     blocks[a.index() * sim.block() + k] = u64::MAX;
///     blocks[b.index() * sim.block() + k] = 0xAAAA_AAAA_AAAA_AAAA;
/// }
/// sim.evaluate_into(&mut blocks);
/// assert_eq!(blocks[y.index() * sim.block()], 0xAAAA_AAAA_AAAA_AAAA);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockSim {
    compiled: CompiledNetlist,
    block: usize,
}

impl BlockSim {
    /// Compiles a netlist into a levelized flat program evaluated `block` lane words
    /// per net.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist contains a combinational cycle.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not one of [`BLOCK_SIZES`].
    pub fn compile(netlist: &Netlist, block: usize) -> Result<Self, SimError> {
        Ok(Self::from_compiled(netlist.compile()?, block))
    }

    /// Wraps an already-compiled program; no traversal happens here.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not one of [`BLOCK_SIZES`].
    pub fn from_compiled(compiled: CompiledNetlist, block: usize) -> Self {
        assert!(
            BLOCK_SIZES.contains(&block),
            "unsupported block size {block}: must be one of {BLOCK_SIZES:?}"
        );
        BlockSim { compiled, block }
    }

    /// The shared compiled program the simulator evaluates.
    pub fn compiled(&self) -> &CompiledNetlist {
        &self.compiled
    }

    /// The block size `B`: lane words per net.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Stimulus vectors evaluated per pass: `B × 64`.
    pub fn vectors_per_pass(&self) -> usize {
        self.block * LANES
    }

    /// Number of nets of the program.
    pub fn net_count(&self) -> usize {
        self.compiled.net_count()
    }

    /// The primary input nets, in the netlist's declaration order.
    pub fn inputs(&self) -> &[NetId] {
        self.compiled.inputs()
    }

    /// Allocates a zeroed block buffer of the right length (`net_count × B`).
    pub fn block_buffer(&self) -> Vec<u64> {
        vec![0; self.compiled.net_count() * self.block]
    }

    /// Evaluates all `B × 64` lanes in place: primary-input blocks must already be
    /// set in `blocks`; every other net's block is overwritten in level order.
    ///
    /// # Panics
    ///
    /// Panics when `blocks.len()` differs from `net_count × B`.
    pub fn evaluate_into(&self, blocks: &mut [u64]) {
        assert_eq!(
            blocks.len(),
            self.compiled.net_count() * self.block,
            "block buffer must hold {} u64 words per net",
            self.block
        );
        // One dispatch per pass; the kernels are monomorphized so the op loop has
        // no block-size branching left inside it.
        match self.block {
            1 => evaluate_blocks::<1>(&self.compiled, blocks),
            2 => evaluate_blocks::<2>(&self.compiled, blocks),
            4 => evaluate_blocks::<4>(&self.compiled, blocks),
            8 => evaluate_blocks::<8>(&self.compiled, blocks),
            _ => unreachable!("constructor rejects unsupported block sizes"),
        }
    }

    /// Packs up to `B × 64` word-level assignments into the input blocks of
    /// `blocks`: assignment `v` lands in bit `v mod 64` of word `v / 64` of every
    /// input net's block. Input nets of `map` not covered by an assignment default
    /// to 0; vectors beyond `assignments.len()` stay 0.
    ///
    /// # Panics
    ///
    /// Panics when more than [`BlockSim::vectors_per_pass`] assignments are supplied
    /// or when `blocks` is shorter than an input net's block requires.
    pub fn pack_word_assignments(
        &self,
        map: &WordMap,
        assignments: &[BTreeMap<String, u64>],
        blocks: &mut [u64],
    ) {
        assert!(
            assignments.len() <= self.vectors_per_pass(),
            "at most {} assignments fit into one block pass",
            self.vectors_per_pass()
        );
        for word in map.inputs() {
            for net in word.bits() {
                blocks[net.index() * self.block..(net.index() + 1) * self.block].fill(0);
            }
        }
        for (vector, assignment) in assignments.iter().enumerate() {
            let word_index = vector / LANES;
            let bit_index = vector % LANES;
            for word in map.inputs() {
                let value = assignment.get(word.name()).copied().unwrap_or(0);
                for (bit, net) in word.bits().iter().enumerate() {
                    if (value >> bit) & 1 == 1 {
                        blocks[net.index() * self.block + word_index] |= 1 << bit_index;
                    }
                }
            }
        }
    }

    /// Unpacks the output word of stimulus vector `vector` from an evaluated block
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics when `vector` is outside the pass (`≥ B × 64`).
    pub fn unpack_output(&self, map: &WordMap, blocks: &[u64], vector: usize) -> u64 {
        assert!(
            vector < self.vectors_per_pass(),
            "vector index out of range for block size {}",
            self.block
        );
        let word_index = vector / LANES;
        let bit_index = vector % LANES;
        let mut value = 0u64;
        for (bit, net) in map.output().bits().iter().enumerate() {
            value |= ((blocks[net.index() * self.block + word_index] >> bit_index) & 1) << bit;
        }
        value
    }

    /// Evaluates up to `B × 64` word-level assignments in one pass and returns the
    /// output word value of each, in order — the block counterpart of
    /// [`LaneSim::evaluate_word_batch`](crate::LaneSim::evaluate_word_batch).
    ///
    /// # Panics
    ///
    /// Panics when more than [`BlockSim::vectors_per_pass`] assignments are
    /// supplied.
    pub fn evaluate_word_batch(
        &self,
        map: &WordMap,
        assignments: &[BTreeMap<String, u64>],
    ) -> Vec<u64> {
        let mut blocks = self.block_buffer();
        self.pack_word_assignments(map, assignments, &mut blocks);
        self.evaluate_into(&mut blocks);
        (0..assignments.len())
            .map(|vector| self.unpack_output(map, &blocks, vector))
            .collect()
    }
}

/// Loads one net's block into a fixed-size array (the shape LLVM vectorizes).
#[inline(always)]
fn load<const B: usize>(blocks: &[u64], net: NetId) -> [u64; B] {
    let base = net.index() * B;
    let mut words = [0u64; B];
    words.copy_from_slice(&blocks[base..base + B]);
    words
}

/// Stores one net's block from a fixed-size array.
#[inline(always)]
fn store<const B: usize>(blocks: &mut [u64], net: NetId, words: [u64; B]) {
    let base = net.index() * B;
    blocks[base..base + B].copy_from_slice(&words);
}

/// The monomorphized evaluation kernel: the [`LaneSim`](crate::LaneSim) gate
/// semantics lifted word-wise over `[u64; B]` blocks.
fn evaluate_blocks<const B: usize>(compiled: &CompiledNetlist, blocks: &mut [u64]) {
    for op in compiled.ops() {
        match op.kind {
            CellKind::Fa => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let c = load::<B>(blocks, op.ins[2]);
                let mut sum = [0u64; B];
                let mut carry = [0u64; B];
                for k in 0..B {
                    sum[k] = a[k] ^ b[k] ^ c[k];
                    carry[k] = (a[k] & b[k]) | (a[k] & c[k]) | (b[k] & c[k]);
                }
                store(blocks, op.outs[0], sum);
                store(blocks, op.outs[1], carry);
            }
            CellKind::Ha => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let mut sum = [0u64; B];
                let mut carry = [0u64; B];
                for k in 0..B {
                    sum[k] = a[k] ^ b[k];
                    carry[k] = a[k] & b[k];
                }
                store(blocks, op.outs[0], sum);
                store(blocks, op.outs[1], carry);
            }
            CellKind::And2 => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = a[k] & b[k];
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::And3 => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let c = load::<B>(blocks, op.ins[2]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = a[k] & b[k] & c[k];
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::Or2 => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = a[k] | b[k];
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::Xor2 => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = a[k] ^ b[k];
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::Xor3 => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let c = load::<B>(blocks, op.ins[2]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = a[k] ^ b[k] ^ c[k];
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::Not => {
                let a = load::<B>(blocks, op.ins[0]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = !a[k];
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::Buf => {
                let a = load::<B>(blocks, op.ins[0]);
                store(blocks, op.outs[0], a);
            }
            CellKind::Mux2 => {
                let a = load::<B>(blocks, op.ins[0]);
                let b = load::<B>(blocks, op.ins[1]);
                let sel = load::<B>(blocks, op.ins[2]);
                let mut out = [0u64; B];
                for k in 0..B {
                    out[k] = (sel[k] & b[k]) | (!sel[k] & a[k]);
                }
                store(blocks, op.outs[0], out);
            }
            CellKind::Const0 => {
                store(blocks, op.outs[0], [0u64; B]);
            }
            CellKind::Const1 => {
                store(blocks, op.outs[0], [u64::MAX; B]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ripple2;
    use crate::LaneSim;

    fn ripple_assignments(count: usize) -> Vec<BTreeMap<String, u64>> {
        (0..count as u64)
            .map(|pattern| {
                let mut assignment = BTreeMap::new();
                assignment.insert("a".to_string(), pattern & 3);
                assignment.insert("b".to_string(), (pattern >> 2) & 3);
                assignment
            })
            .collect()
    }

    #[test]
    fn block_engine_adds_like_the_word_model() {
        let (netlist, map) = ripple2();
        for block in BLOCK_SIZES {
            let sim = BlockSim::compile(&netlist, block).unwrap();
            let assignments = ripple_assignments(sim.vectors_per_pass());
            let outputs = sim.evaluate_word_batch(&map, &assignments);
            for (assignment, value) in assignments.iter().zip(&outputs) {
                assert_eq!(
                    *value,
                    assignment["a"] + assignment["b"],
                    "block {block}: {assignment:?}"
                );
            }
        }
    }

    #[test]
    fn block_one_matches_the_lane_engine_word_for_word() {
        let (netlist, map) = ripple2();
        let lanes = LaneSim::compile(&netlist).unwrap();
        let blocks = BlockSim::compile(&netlist, 1).unwrap();
        let assignments = ripple_assignments(LANES);
        let mut lane_buffer = lanes.lane_buffer();
        LaneSim::pack_word_assignments(&map, &assignments, &mut lane_buffer);
        lanes.evaluate_into(&mut lane_buffer);
        let mut block_buffer = blocks.block_buffer();
        blocks.pack_word_assignments(&map, &assignments, &mut block_buffer);
        blocks.evaluate_into(&mut block_buffer);
        assert_eq!(
            lane_buffer, block_buffer,
            "B = 1 is the lane layout exactly"
        );
    }

    #[test]
    fn vectors_beyond_the_batch_stay_zero() {
        let (netlist, map) = ripple2();
        let sim = BlockSim::compile(&netlist, 2).unwrap();
        // Three vectors into a 128-vector pass: only bits 0..3 of word 0 may be set.
        let assignments = vec![
            [("a".to_string(), 3u64), ("b".to_string(), 3u64)]
                .into_iter()
                .collect::<BTreeMap<String, u64>>();
            3
        ];
        let mut blocks = sim.block_buffer();
        sim.pack_word_assignments(&map, &assignments, &mut blocks);
        for word in map.inputs() {
            for net in word.bits() {
                let base = net.index() * sim.block();
                assert_eq!(blocks[base] & !0b111, 0, "surplus bits in word 0");
                assert_eq!(blocks[base + 1], 0, "word 1 untouched");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported block size")]
    fn unsupported_block_sizes_are_rejected() {
        let (netlist, _) = ripple2();
        let _ = BlockSim::compile(&netlist, 3);
    }

    #[test]
    #[should_panic(expected = "block buffer must hold")]
    fn wrong_buffer_length_is_rejected() {
        let (netlist, _) = ripple2();
        let sim = BlockSim::compile(&netlist, 4).unwrap();
        let mut blocks = vec![0u64; 1];
        sim.evaluate_into(&mut blocks);
    }
}
