//! Error type shared by simulation, equivalence checking and toggle counting.

use dpsyn_netlist::NetlistError;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced by simulation and equivalence checking.
#[derive(Debug)]
pub enum SimError {
    /// The netlist is structurally invalid (cycle, floating nets, ...).
    Netlist(NetlistError),
    /// The golden model could not be evaluated.
    Ir(dpsyn_ir::IrError),
    /// Equivalence checking found a mismatching assignment.
    Mismatch {
        /// The word-level input assignment that exposes the difference.
        assignment: BTreeMap<String, u64>,
        /// Value computed by the netlist.
        netlist_value: u64,
        /// Value computed by the golden expression model.
        expected_value: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Netlist(error) => write!(f, "invalid netlist: {error}"),
            SimError::Ir(error) => write!(f, "golden model evaluation failed: {error}"),
            SimError::Mismatch {
                assignment,
                netlist_value,
                expected_value,
            } => write!(
                f,
                "netlist computes {netlist_value} but the expression evaluates to \
                 {expected_value} for {assignment:?}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(error) => Some(error),
            SimError::Ir(error) => Some(error),
            SimError::Mismatch { .. } => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(error: NetlistError) -> Self {
        SimError::Netlist(error)
    }
}

impl From<dpsyn_ir::IrError> for SimError {
    fn from(error: dpsyn_ir::IrError) -> Self {
        SimError::Ir(error)
    }
}
