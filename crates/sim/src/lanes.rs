//! The 64-lane bit-parallel evaluation core.
//!
//! [`LaneSim`] evaluates the shared [`CompiledNetlist`] program — the levelized
//! three-address op array `dpsyn-netlist` builds once per netlist and every analysis
//! (timing, power, this simulator) consumes — **64 stimulus vectors per pass** by
//! packing one vector into each bit of a `u64` lane word. Every gate becomes one or
//! two bitwise machine operations (SIMD-within-a-register), so a pass over the
//! program costs roughly the same as one scalar vector through
//! [`Simulator`](crate::Simulator) while computing 64 of them.
//!
//! Lane conventions:
//!
//! * the lane buffer is `Vec<u64>` indexed by [`NetId::index`];
//! * bit `t` of every lane word belongs to stimulus vector `t` (`0 ≤ t < 64`);
//! * all 64 lanes are always evaluated — callers simulating fewer vectors mask the
//!   surplus bits (see [`lane_mask`]), which the word-level helpers do internally.

use crate::SimError;
use dpsyn_netlist::{CellKind, CompiledNetlist, NetId, Netlist, WordMap};
use std::collections::BTreeMap;

/// Number of stimulus vectors evaluated per pass: one per bit of a `u64` lane word.
pub const LANES: usize = 64;

/// The set of bits a partially filled batch of `count ≤ 64` vectors occupies.
///
/// # Example
/// ```
/// assert_eq!(dpsyn_sim::lane_mask(3), 0b111);
/// assert_eq!(dpsyn_sim::lane_mask(64), u64::MAX);
/// assert_eq!(dpsyn_sim::lane_mask(0), 0);
/// ```
pub fn lane_mask(count: usize) -> u64 {
    match count {
        0 => 0,
        count if count >= LANES => u64::MAX,
        count => (1u64 << count) - 1,
    }
}

/// A netlist compiled into a levelized, bit-parallel program.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use dpsyn_netlist::{CellKind, Netlist};
/// use dpsyn_sim::LaneSim;
/// use std::collections::BTreeMap;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut netlist = Netlist::new("maj");
/// let a = netlist.add_input("a");
/// let b = netlist.add_input("b");
/// let c = netlist.add_input("c");
/// let outs = netlist.add_gate(CellKind::Fa, &[a, b, c])?;
/// netlist.mark_output(outs[1]); // carry = majority(a, b, c)
/// let sim = LaneSim::compile(&netlist)?;
/// // 64 input vectors per call: bit t of each lane word is vector t.
/// let mut inputs = BTreeMap::new();
/// inputs.insert(a, 0b1100u64);
/// inputs.insert(b, 0b1010u64);
/// inputs.insert(c, 0b0110u64);
/// let lanes = sim.evaluate(&inputs);
/// assert_eq!(lanes[outs[1].index()] & 0b1111, 0b1110);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneSim {
    compiled: CompiledNetlist,
}

impl LaneSim {
    /// Compiles a netlist into a levelized flat program.
    ///
    /// This is a convenience wrapper over [`Netlist::compile`]; callers that already
    /// hold a [`CompiledNetlist`] (the shared analysis program) should use
    /// [`LaneSim::from_compiled`] instead so the netlist is compiled exactly once.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist contains a combinational cycle.
    pub fn compile(netlist: &Netlist) -> Result<Self, SimError> {
        Ok(Self::from_compiled(netlist.compile()?))
    }

    /// Wraps an already-compiled program; no traversal happens here.
    pub fn from_compiled(compiled: CompiledNetlist) -> Self {
        LaneSim { compiled }
    }

    /// The shared compiled program the simulator evaluates.
    pub fn compiled(&self) -> &CompiledNetlist {
        &self.compiled
    }

    /// Number of nets (the required lane-buffer length).
    pub fn net_count(&self) -> usize {
        self.compiled.net_count()
    }

    /// The primary input nets, in the netlist's declaration order.
    pub fn inputs(&self) -> &[NetId] {
        self.compiled.inputs()
    }

    /// Number of logic levels of the compiled program.
    pub fn level_count(&self) -> usize {
        self.compiled.level_count()
    }

    /// Number of compiled ops (one per cell).
    pub fn op_count(&self) -> usize {
        self.compiled.op_count()
    }

    /// Allocates a zeroed lane buffer of the right length.
    pub fn lane_buffer(&self) -> Vec<u64> {
        vec![0; self.compiled.net_count()]
    }

    /// Evaluates all 64 lanes in place: primary-input lanes must already be set in
    /// `lanes`; every other entry is overwritten in level order.
    ///
    /// # Panics
    ///
    /// Panics when `lanes.len()` differs from [`LaneSim::net_count`].
    pub fn evaluate_into(&self, lanes: &mut [u64]) {
        assert_eq!(
            lanes.len(),
            self.compiled.net_count(),
            "lane buffer must hold one u64 per net"
        );
        for op in self.compiled.ops() {
            match op.kind {
                CellKind::Fa => {
                    let a = lanes[op.ins[0].index()];
                    let b = lanes[op.ins[1].index()];
                    let c = lanes[op.ins[2].index()];
                    lanes[op.outs[0].index()] = a ^ b ^ c;
                    lanes[op.outs[1].index()] = (a & b) | (a & c) | (b & c);
                }
                CellKind::Ha => {
                    let a = lanes[op.ins[0].index()];
                    let b = lanes[op.ins[1].index()];
                    lanes[op.outs[0].index()] = a ^ b;
                    lanes[op.outs[1].index()] = a & b;
                }
                CellKind::And2 => {
                    lanes[op.outs[0].index()] = lanes[op.ins[0].index()] & lanes[op.ins[1].index()];
                }
                CellKind::And3 => {
                    lanes[op.outs[0].index()] = lanes[op.ins[0].index()]
                        & lanes[op.ins[1].index()]
                        & lanes[op.ins[2].index()];
                }
                CellKind::Or2 => {
                    lanes[op.outs[0].index()] = lanes[op.ins[0].index()] | lanes[op.ins[1].index()];
                }
                CellKind::Xor2 => {
                    lanes[op.outs[0].index()] = lanes[op.ins[0].index()] ^ lanes[op.ins[1].index()];
                }
                CellKind::Xor3 => {
                    lanes[op.outs[0].index()] = lanes[op.ins[0].index()]
                        ^ lanes[op.ins[1].index()]
                        ^ lanes[op.ins[2].index()];
                }
                CellKind::Not => {
                    lanes[op.outs[0].index()] = !lanes[op.ins[0].index()];
                }
                CellKind::Buf => {
                    lanes[op.outs[0].index()] = lanes[op.ins[0].index()];
                }
                CellKind::Mux2 => {
                    let a = lanes[op.ins[0].index()];
                    let b = lanes[op.ins[1].index()];
                    let sel = lanes[op.ins[2].index()];
                    lanes[op.outs[0].index()] = (sel & b) | (!sel & a);
                }
                CellKind::Const0 => {
                    lanes[op.outs[0].index()] = 0;
                }
                CellKind::Const1 => {
                    lanes[op.outs[0].index()] = u64::MAX;
                }
            }
        }
    }

    /// Evaluates the netlist for per-net input lanes (nets missing from `inputs`
    /// default to all-zero lanes) and returns the lane word of every net.
    pub fn evaluate(&self, inputs: &BTreeMap<NetId, u64>) -> Vec<u64> {
        let mut lanes = self.lane_buffer();
        for net in self.compiled.inputs() {
            lanes[net.index()] = inputs.get(net).copied().unwrap_or(0);
        }
        self.evaluate_into(&mut lanes);
        lanes
    }

    /// Packs up to 64 word-level assignments into the input lanes of `lanes`:
    /// assignment `t` lands in bit `t` of every input net's lane word. Input nets of
    /// `map` not covered by an assignment default to 0; lanes beyond
    /// `assignments.len()` stay 0.
    ///
    /// # Panics
    ///
    /// Panics when more than [`LANES`] assignments are supplied or when `lanes` is
    /// shorter than an input net index requires.
    pub fn pack_word_assignments(
        map: &WordMap,
        assignments: &[BTreeMap<String, u64>],
        lanes: &mut [u64],
    ) {
        assert!(
            assignments.len() <= LANES,
            "at most {LANES} assignments fit into one lane pass"
        );
        for word in map.inputs() {
            for net in word.bits() {
                lanes[net.index()] = 0;
            }
        }
        for (lane, assignment) in assignments.iter().enumerate() {
            for word in map.inputs() {
                let value = assignment.get(word.name()).copied().unwrap_or(0);
                for (bit, net) in word.bits().iter().enumerate() {
                    if (value >> bit) & 1 == 1 {
                        lanes[net.index()] |= 1 << lane;
                    }
                }
            }
        }
    }

    /// Unpacks the output word of lane `lane` from an evaluated lane buffer.
    pub fn unpack_output(map: &WordMap, lanes: &[u64], lane: usize) -> u64 {
        assert!(lane < LANES, "lane index out of range");
        let mut value = 0u64;
        for (bit, net) in map.output().bits().iter().enumerate() {
            value |= ((lanes[net.index()] >> lane) & 1) << bit;
        }
        value
    }

    /// Evaluates up to 64 word-level assignments in one pass and returns the output
    /// word value of each, in order — the batched counterpart of
    /// [`Simulator::evaluate_words`](crate::Simulator::evaluate_words).
    ///
    /// # Panics
    ///
    /// Panics when more than [`LANES`] assignments are supplied.
    pub fn evaluate_word_batch(
        &self,
        map: &WordMap,
        assignments: &[BTreeMap<String, u64>],
    ) -> Vec<u64> {
        let mut lanes = self.lane_buffer();
        Self::pack_word_assignments(map, assignments, &mut lanes);
        self.evaluate_into(&mut lanes);
        (0..assignments.len())
            .map(|lane| Self::unpack_output(map, &lanes, lane))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ripple2;
    use crate::Simulator;

    #[test]
    fn lane_engine_matches_scalar_on_the_ripple_adder() {
        let (netlist, map) = ripple2();
        let lane_sim = LaneSim::compile(&netlist).unwrap();
        let scalar = Simulator::compile(&netlist).unwrap();
        let assignments: Vec<BTreeMap<String, u64>> = (0..16u64)
            .map(|pattern| {
                let mut assignment = BTreeMap::new();
                assignment.insert("a".to_string(), pattern & 3);
                assignment.insert("b".to_string(), pattern >> 2);
                assignment
            })
            .collect();
        let batched = lane_sim.evaluate_word_batch(&map, &assignments);
        for (assignment, lane_value) in assignments.iter().zip(&batched) {
            assert_eq!(*lane_value, scalar.evaluate_words(&map, assignment));
            assert_eq!(*lane_value, assignment["a"] + assignment["b"]);
        }
    }

    #[test]
    fn all_64_lanes_are_independent() {
        let (netlist, map) = ripple2();
        let lane_sim = LaneSim::compile(&netlist).unwrap();
        let assignments: Vec<BTreeMap<String, u64>> = (0..64u64)
            .map(|lane| {
                let mut assignment = BTreeMap::new();
                assignment.insert("a".to_string(), lane & 3);
                assignment.insert("b".to_string(), (lane >> 2) & 3);
                assignment
            })
            .collect();
        let batched = lane_sim.evaluate_word_batch(&map, &assignments);
        for (lane, value) in batched.iter().enumerate() {
            let lane = lane as u64;
            assert_eq!(*value, (lane & 3) + ((lane >> 2) & 3), "lane {lane}");
        }
    }

    #[test]
    fn compiled_program_is_levelized() {
        let (netlist, _) = ripple2();
        let lane_sim = LaneSim::compile(&netlist).unwrap();
        assert_eq!(lane_sim.op_count(), netlist.cell_count());
        assert_eq!(lane_sim.level_count(), netlist.logic_depth());
        assert_eq!(lane_sim.net_count(), netlist.net_count());
        assert_eq!(lane_sim.inputs(), netlist.inputs());
    }

    #[test]
    fn from_compiled_shares_the_program() {
        let (netlist, map) = ripple2();
        let compiled = netlist.compile().unwrap();
        let shared = LaneSim::from_compiled(compiled.clone());
        let fresh = LaneSim::compile(&netlist).unwrap();
        assert_eq!(shared.compiled(), &compiled);
        let assignments: Vec<BTreeMap<String, u64>> = (0..16u64)
            .map(|pattern| {
                let mut assignment = BTreeMap::new();
                assignment.insert("a".to_string(), pattern & 3);
                assignment.insert("b".to_string(), pattern >> 2);
                assignment
            })
            .collect();
        assert_eq!(
            shared.evaluate_word_batch(&map, &assignments),
            fresh.evaluate_word_batch(&map, &assignments)
        );
    }

    #[test]
    fn missing_inputs_default_to_zero_lanes() {
        let (netlist, map) = ripple2();
        let lane_sim = LaneSim::compile(&netlist).unwrap();
        let lanes = lane_sim.evaluate(&BTreeMap::new());
        for net in map.output().bits() {
            assert_eq!(lanes[net.index()], 0);
        }
    }

    #[test]
    fn lane_mask_covers_partial_batches() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(64), u64::MAX);
        assert_eq!(lane_mask(65), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "one u64 per net")]
    fn wrong_buffer_length_is_rejected() {
        let (netlist, _) = ripple2();
        let lane_sim = LaneSim::compile(&netlist).unwrap();
        let mut lanes = vec![0u64; 1];
        lane_sim.evaluate_into(&mut lanes);
    }
}
