//! The scalar reference evaluator: one input vector at a time.
//!
//! [`Simulator`] is the original interpreter of this crate, kept deliberately simple
//! (per-cell [`CellKind::evaluate`](dpsyn_netlist::CellKind::evaluate) dispatch over a
//! `Vec<bool>` net image). The production hot path is the 64-lane engine in
//! [`crate::lanes`]; this module is its oracle — the differential suites in
//! `crates/sim/tests/` require the two to agree bit-for-bit on every net.

use crate::SimError;
use dpsyn_netlist::{CellId, NetId, Netlist, WordMap};
use std::collections::BTreeMap;

/// A compiled scalar simulator: the netlist's cells in topological order, ready for
/// repeated single-vector evaluation.
///
/// This is the *reference* evaluator. It trades speed for obviousness and serves as
/// the oracle that the bit-parallel [`LaneSim`](crate::LaneSim) is differentially
/// tested against; use `LaneSim` when throughput matters.
#[derive(Debug, Clone)]
pub struct Simulator<'nl> {
    netlist: &'nl Netlist,
    order: Vec<CellId>,
}

impl<'nl> Simulator<'nl> {
    /// Compiles a netlist for simulation (computes a topological order once).
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist contains a combinational cycle.
    pub fn compile(netlist: &'nl Netlist) -> Result<Self, SimError> {
        let order = netlist.topological_order()?;
        Ok(Simulator { netlist, order })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates the netlist for the given primary-input values.
    ///
    /// Inputs missing from `inputs` are treated as logic 0. The returned vector holds
    /// the value of every net, indexed by [`NetId::index`].
    pub fn evaluate(&self, inputs: &BTreeMap<NetId, bool>) -> Vec<bool> {
        let mut values = vec![false; self.netlist.net_count()];
        for net in self.netlist.inputs() {
            values[net.index()] = inputs.get(net).copied().unwrap_or(false);
        }
        for cell_id in &self.order {
            let cell = self.netlist.cell(*cell_id);
            let input_values: Vec<bool> = cell
                .inputs()
                .iter()
                .map(|net| values[net.index()])
                .collect();
            let outputs = cell.kind().evaluate(&input_values);
            for (net, value) in cell.outputs().iter().zip(outputs) {
                values[net.index()] = value;
            }
        }
        values
    }

    /// Evaluates the netlist for a word-level assignment and packs the output word.
    pub fn evaluate_words(&self, map: &WordMap, values: &BTreeMap<String, u64>) -> u64 {
        let bit_inputs = map.assignment_to_bits(values);
        let net_values = self.evaluate(&bit_inputs);
        let output_values: BTreeMap<NetId, bool> = map
            .output()
            .bits()
            .iter()
            .map(|net| (*net, net_values[net.index()]))
            .collect();
        map.output_value(&output_values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ripple2;

    #[test]
    fn ripple_adder_simulates_correctly() {
        let (netlist, map) = ripple2();
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..4u64 {
            for b in 0..4u64 {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                values.insert("b".to_string(), b);
                assert_eq!(simulator.evaluate_words(&map, &values), a + b);
            }
        }
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let (netlist, map) = ripple2();
        let simulator = Simulator::compile(&netlist).unwrap();
        assert_eq!(simulator.evaluate_words(&map, &BTreeMap::new()), 0);
    }
}
