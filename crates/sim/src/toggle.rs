//! Zero-delay toggle counting over a sequence of input vectors.

use crate::{lane_mask, BlockSim, LaneSim, SimError, Stimulus, LANES};
use dpsyn_ir::InputSpec;
use dpsyn_netlist::{NetId, Netlist, WordMap};

/// Zero-delay toggle counting over a sequence of input vectors.
///
/// Feeding `n` vectors produces `n − 1` opportunities for each net to toggle; the
/// per-net toggle rate estimates the switching activity that the analytic model of
/// `dpsyn-power` predicts as `2·p·(1 − p)` per vector pair (a toggle happens when two
/// consecutive independent samples differ).
///
/// Vectors arrive either one at a time ([`ToggleCounter::record`], the scalar path) or
/// 64 at a time as lane words ([`ToggleCounter::record_lanes`]); the two paths count
/// the same sequence identically, including across batch boundaries, so they may be
/// mixed freely.
#[derive(Debug, Clone)]
pub struct ToggleCounter {
    toggles: Vec<u64>,
    vectors: u64,
    previous: Option<Vec<bool>>,
}

impl ToggleCounter {
    /// Creates a counter for a netlist with `net_count` nets.
    pub fn new(net_count: usize) -> Self {
        ToggleCounter {
            toggles: vec![0; net_count],
            vectors: 0,
            previous: None,
        }
    }

    /// Records the net values of one simulated vector.
    pub fn record(&mut self, values: &[bool]) {
        if let Some(previous) = &self.previous {
            for (index, (old, new)) in previous.iter().zip(values.iter()).enumerate() {
                if old != new {
                    self.toggles[index] += 1;
                }
            }
        }
        self.previous = Some(values.to_vec());
        self.vectors += 1;
    }

    /// Records `count ≤ 64` consecutive vectors at once from an evaluated lane
    /// buffer: bit `t` of `lanes[net]` is the value of the net under vector `t`.
    ///
    /// Within-batch transitions reduce to `count_ones` over lane XORs
    /// (`lanes ^ (lanes >> 1)` marks every adjacent pair that differs); the seam to
    /// the previously recorded vector is handled separately, so chunking a sequence
    /// into batches of any sizes counts exactly like feeding it vector by vector.
    ///
    /// # Panics
    ///
    /// Panics when `count` is 0 or exceeds [`LANES`], or when `lanes` is shorter than
    /// the net count the counter was created for.
    pub fn record_lanes(&mut self, lanes: &[u64], count: usize) {
        assert!(
            (1..=LANES).contains(&count),
            "a lane batch holds between 1 and {LANES} vectors"
        );
        assert!(
            lanes.len() >= self.toggles.len(),
            "lane buffer shorter than the net count"
        );
        // Seam: the last previously recorded vector against lane bit 0.
        if let Some(previous) = &self.previous {
            for (index, old) in previous.iter().enumerate() {
                if *old != (lanes[index] & 1 == 1) {
                    self.toggles[index] += 1;
                }
            }
        }
        // Within-batch: adjacent lane bits t and t+1 for t in 0..count-1.
        let pair_mask = lane_mask(count - 1);
        let last_bit = count - 1;
        let mut previous = self.previous.take().unwrap_or_default();
        previous.resize(self.toggles.len(), false);
        for (index, toggle) in self.toggles.iter_mut().enumerate() {
            let lane = lanes[index];
            *toggle += u64::from(((lane ^ (lane >> 1)) & pair_mask).count_ones());
            previous[index] = (lane >> last_bit) & 1 == 1;
        }
        self.previous = Some(previous);
        self.vectors += count as u64;
    }

    /// Records `count ≤ block × 64` consecutive vectors at once from an evaluated
    /// [`BlockSim`] buffer: net `n` owns words `n·block .. n·block + block`, and
    /// vector `v` is bit `v mod 64` of word `v / 64` of that block.
    ///
    /// Counting is identical to [`ToggleCounter::record_lanes`] fed the same vector
    /// sequence in 64-wide chunks: within-word pairs reduce to `count_ones` over
    /// word XORs, the word-to-word seams inside a block and the seam to the
    /// previously recorded vector are handled bit-exactly — so block recording,
    /// lane recording and scalar recording may be mixed freely over one sequence.
    ///
    /// # Panics
    ///
    /// Panics when `block` is 0, `count` is 0 or exceeds `block × 64`, or `blocks`
    /// is shorter than `net count × block`.
    pub fn record_blocks(&mut self, blocks: &[u64], block: usize, count: usize) {
        assert!(block >= 1, "the block size must be at least one lane word");
        assert!(
            (1..=block * LANES).contains(&count),
            "a block batch holds between 1 and {} vectors",
            block * LANES
        );
        assert!(
            blocks.len() >= self.toggles.len() * block,
            "block buffer shorter than net count x block"
        );
        // Seam: the last previously recorded vector against bit 0 of word 0.
        if let Some(previous) = &self.previous {
            for (index, old) in previous.iter().enumerate() {
                if *old != (blocks[index * block] & 1 == 1) {
                    self.toggles[index] += 1;
                }
            }
        }
        let mut previous = self.previous.take().unwrap_or_default();
        previous.resize(self.toggles.len(), false);
        for (index, toggle) in self.toggles.iter_mut().enumerate() {
            let base = index * block;
            let mut remaining = count;
            let mut word_index = 0;
            let mut last = false;
            while remaining > 0 {
                let in_word = remaining.min(LANES);
                let word = blocks[base + word_index];
                // Seam between consecutive words of the block: the last active bit
                // of the previous word against bit 0 of this one.
                if word_index > 0 && last != (word & 1 == 1) {
                    *toggle += 1;
                }
                *toggle += u64::from(((word ^ (word >> 1)) & lane_mask(in_word - 1)).count_ones());
                last = (word >> (in_word - 1)) & 1 == 1;
                remaining -= in_word;
                word_index += 1;
            }
            previous[index] = last;
        }
        self.previous = Some(previous);
        self.vectors += count as u64;
    }

    /// Number of vectors recorded so far.
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Toggle count of a net.
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Toggle rate of a net: toggles per vector transition (0.0 before two vectors).
    pub fn toggle_rate(&self, net: NetId) -> f64 {
        if self.vectors < 2 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / (self.vectors - 1) as f64
        }
    }

    /// Sum of toggle rates over a set of nets.
    pub fn total_toggle_rate<I: IntoIterator<Item = NetId>>(&self, nets: I) -> f64 {
        nets.into_iter().map(|net| self.toggle_rate(net)).sum()
    }
}

/// Runs a biased random simulation of `vectors` input vectors and returns the populated
/// [`ToggleCounter`].
///
/// The stimulus stream is identical to the historical scalar implementation (one
/// [`Stimulus::biased_assignment`] draw per vector, in order), but the vectors are
/// evaluated 64 per pass on the [`LaneSim`] engine and folded into the counter with
/// [`ToggleCounter::record_lanes`], so the counts are bit-identical to the scalar
/// path at a fraction of the cost.
///
/// # Errors
///
/// Returns an error when the netlist cannot be simulated.
pub fn measure_toggles(
    netlist: &Netlist,
    map: &WordMap,
    spec: &InputSpec,
    vectors: usize,
    seed: u64,
) -> Result<ToggleCounter, SimError> {
    let simulator = LaneSim::compile(netlist)?;
    let mut stimulus = Stimulus::with_seed(seed);
    let mut counter = ToggleCounter::new(netlist.net_count());
    let mut lanes = simulator.lane_buffer();
    let mut remaining = vectors;
    while remaining > 0 {
        let batch = remaining.min(LANES);
        let assignments = stimulus.biased_batch(spec, batch);
        LaneSim::pack_word_assignments(map, &assignments, &mut lanes);
        simulator.evaluate_into(&mut lanes);
        counter.record_lanes(&lanes, batch);
        remaining -= batch;
    }
    Ok(counter)
}

/// [`measure_toggles`] on the [`BlockSim`] engine: the same stimulus stream,
/// evaluated `block × 64` vectors per pass. Counts are bit-identical to
/// [`measure_toggles`] (and to the scalar path) by the chunking invariance of
/// [`ToggleCounter`] — the differential suites pin this for every block size.
///
/// # Errors
///
/// Returns an error when the netlist cannot be simulated.
pub fn measure_toggles_blocks(
    netlist: &Netlist,
    map: &WordMap,
    spec: &InputSpec,
    vectors: usize,
    seed: u64,
    block: usize,
) -> Result<ToggleCounter, SimError> {
    let simulator = BlockSim::compile(netlist, block)?;
    let mut stimulus = Stimulus::with_seed(seed);
    let mut counter = ToggleCounter::new(netlist.net_count());
    let mut blocks = simulator.block_buffer();
    let mut remaining = vectors;
    while remaining > 0 {
        let batch = remaining.min(simulator.vectors_per_pass());
        let assignments = stimulus.biased_batch(spec, batch);
        simulator.pack_word_assignments(map, &assignments, &mut blocks);
        simulator.evaluate_into(&mut blocks);
        counter.record_blocks(&blocks, block, batch);
        remaining -= batch;
    }
    Ok(counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{fake_net, ripple2};

    #[test]
    fn toggle_counter_counts_transitions() {
        let mut counter = ToggleCounter::new(2);
        assert_eq!(counter.toggle_rate(fake_net(0)), 0.0);
        counter.record(&[false, true]);
        counter.record(&[true, true]);
        counter.record(&[false, true]);
        assert_eq!(counter.vectors(), 3);
        assert_eq!(counter.toggles(fake_net(0)), 2);
        assert_eq!(counter.toggles(fake_net(1)), 0);
        assert_eq!(counter.toggle_rate(fake_net(0)), 1.0);
        assert_eq!(counter.total_toggle_rate([fake_net(0), fake_net(1)]), 1.0);
    }

    #[test]
    fn lane_recording_matches_scalar_recording() {
        // The same 7-vector sequence, once vector by vector and once as lane batches
        // of 3 + 4, must produce identical counts (including the batch seam).
        let sequence: [[bool; 2]; 7] = [
            [false, true],
            [true, true],
            [false, false],
            [false, true],
            [true, true],
            [true, false],
            [false, false],
        ];
        let mut scalar = ToggleCounter::new(2);
        for vector in &sequence {
            scalar.record(vector);
        }
        let pack = |range: std::ops::Range<usize>| -> Vec<u64> {
            let mut lanes = vec![0u64; 2];
            for (lane, vector) in sequence[range].iter().enumerate() {
                for (net, value) in vector.iter().enumerate() {
                    if *value {
                        lanes[net] |= 1 << lane;
                    }
                }
            }
            lanes
        };
        let mut lanes_counter = ToggleCounter::new(2);
        lanes_counter.record_lanes(&pack(0..3), 3);
        lanes_counter.record_lanes(&pack(3..7), 4);
        assert_eq!(lanes_counter.vectors(), scalar.vectors());
        for net in 0..2 {
            assert_eq!(
                lanes_counter.toggles(fake_net(net)),
                scalar.toggles(fake_net(net)),
                "net {net}"
            );
        }
    }

    #[test]
    fn surplus_lane_bits_are_ignored() {
        // Garbage above the active lane count (here, bits 1..64) must not count.
        let mut counter = ToggleCounter::new(1);
        counter.record_lanes(&[u64::MAX], 1);
        counter.record_lanes(&[u64::MAX << 1], 1);
        assert_eq!(counter.vectors(), 2);
        assert_eq!(counter.toggles(fake_net(0)), 1);
    }

    #[test]
    fn block_recording_matches_lane_recording_across_seams() {
        // A 200-vector pseudo-random sequence over 3 nets, recorded (a) vector by
        // vector, (b) as 64-wide lane batches, (c) as block batches with ragged
        // tails for every supported block size — all counts must be identical,
        // covering the word-to-word seams inside a block and the batch seams.
        let nets = 3;
        let total = 200usize;
        let value = |vector: usize, net: usize| (vector * 31 + net * 7) % 3 == 0;
        let mut scalar = ToggleCounter::new(nets);
        for vector in 0..total {
            let values: Vec<bool> = (0..nets).map(|net| value(vector, net)).collect();
            scalar.record(&values);
        }
        let pack_block = |start: usize, count: usize, block: usize| -> Vec<u64> {
            let mut blocks = vec![0u64; nets * block];
            for offset in 0..count {
                let vector = start + offset;
                for net in 0..nets {
                    if value(vector, net) {
                        blocks[net * block + offset / 64] |= 1 << (offset % 64);
                    }
                }
            }
            blocks
        };
        for block in [1, 2, 4, 8] {
            let mut counter = ToggleCounter::new(nets);
            let mut start = 0;
            // Ragged batch sizes exercise partial words and partial blocks.
            for batch in [1, 65, block * 64, 17, 3].iter().cycle() {
                if start >= total {
                    break;
                }
                let count = (*batch).min(block * 64).min(total - start);
                counter.record_blocks(&pack_block(start, count, block), block, count);
                start += count;
            }
            assert_eq!(counter.vectors(), scalar.vectors(), "block {block}");
            for net in 0..nets {
                assert_eq!(
                    counter.toggles(fake_net(net)),
                    scalar.toggles(fake_net(net)),
                    "block {block}, net {net}"
                );
            }
        }
    }

    #[test]
    fn block_and_lane_recording_mix_freely() {
        // One sequence split across record, record_lanes and record_blocks calls
        // must count like the pure scalar path.
        let nets = 2;
        let total = 150usize;
        let value = |vector: usize, net: usize| (vector / (net + 1)) % 2 == 1;
        let mut scalar = ToggleCounter::new(nets);
        for vector in 0..total {
            let values: Vec<bool> = (0..nets).map(|net| value(vector, net)).collect();
            scalar.record(&values);
        }
        let mut mixed = ToggleCounter::new(nets);
        let mut cursor = 0;
        // 10 scalar vectors.
        for vector in 0..10 {
            let values: Vec<bool> = (0..nets).map(|net| value(vector, net)).collect();
            mixed.record(&values);
        }
        cursor += 10;
        // One 40-vector lane batch.
        let mut lanes = vec![0u64; nets];
        for offset in 0..40 {
            for (net, lane) in lanes.iter_mut().enumerate() {
                if value(cursor + offset, net) {
                    *lane |= 1 << offset;
                }
            }
        }
        mixed.record_lanes(&lanes, 40);
        cursor += 40;
        // The remaining 100 vectors as one 2-word block batch.
        let block = 2;
        let mut blocks = vec![0u64; nets * block];
        for offset in 0..(total - cursor) {
            for net in 0..nets {
                if value(cursor + offset, net) {
                    blocks[net * block + offset / 64] |= 1 << (offset % 64);
                }
            }
        }
        mixed.record_blocks(&blocks, block, total - cursor);
        assert_eq!(mixed.vectors(), scalar.vectors());
        for net in 0..nets {
            assert_eq!(
                mixed.toggles(fake_net(net)),
                scalar.toggles(fake_net(net)),
                "net {net}"
            );
        }
    }

    #[test]
    fn measure_toggles_blocks_matches_the_lane_measurement() {
        let (netlist, map) = ripple2();
        let spec = InputSpec::builder()
            .var_with_probability("a", 2, 0.3)
            .var_with_probability("b", 2, 0.7)
            .build()
            .unwrap();
        let lane = measure_toggles(&netlist, &map, &spec, 333, 17).unwrap();
        for block in [1, 2, 4, 8] {
            let blocked = measure_toggles_blocks(&netlist, &map, &spec, 333, 17, block).unwrap();
            assert_eq!(blocked.vectors(), lane.vectors(), "block {block}");
            for index in 0..netlist.net_count() {
                assert_eq!(
                    blocked.toggles(fake_net(index)),
                    lane.toggles(fake_net(index)),
                    "block {block}, net {index}"
                );
            }
        }
    }

    /// Toggle rates measured by simulation should agree with the analytic model
    /// 2·p·(1 − p) for independent consecutive samples.
    #[test]
    fn toggle_rates_match_analytic_activity() {
        let (netlist, map) = ripple2();
        let spec = InputSpec::builder()
            .var_with_probability("a", 2, 0.5)
            .var_with_probability("b", 2, 0.5)
            .build()
            .unwrap();
        let counter = measure_toggles(&netlist, &map, &spec, 4000, 99).unwrap();
        // The HA sum output has p = 0.5 -> toggle rate ≈ 2·0.25 = 0.5.
        let ha_sum = map.output().bit(0).unwrap();
        let rate = counter.toggle_rate(ha_sum);
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }
}
