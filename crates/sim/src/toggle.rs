//! Zero-delay toggle counting over a sequence of input vectors.

use crate::{lane_mask, LaneSim, SimError, Stimulus, LANES};
use dpsyn_ir::InputSpec;
use dpsyn_netlist::{NetId, Netlist, WordMap};

/// Zero-delay toggle counting over a sequence of input vectors.
///
/// Feeding `n` vectors produces `n − 1` opportunities for each net to toggle; the
/// per-net toggle rate estimates the switching activity that the analytic model of
/// `dpsyn-power` predicts as `2·p·(1 − p)` per vector pair (a toggle happens when two
/// consecutive independent samples differ).
///
/// Vectors arrive either one at a time ([`ToggleCounter::record`], the scalar path) or
/// 64 at a time as lane words ([`ToggleCounter::record_lanes`]); the two paths count
/// the same sequence identically, including across batch boundaries, so they may be
/// mixed freely.
#[derive(Debug, Clone)]
pub struct ToggleCounter {
    toggles: Vec<u64>,
    vectors: u64,
    previous: Option<Vec<bool>>,
}

impl ToggleCounter {
    /// Creates a counter for a netlist with `net_count` nets.
    pub fn new(net_count: usize) -> Self {
        ToggleCounter {
            toggles: vec![0; net_count],
            vectors: 0,
            previous: None,
        }
    }

    /// Records the net values of one simulated vector.
    pub fn record(&mut self, values: &[bool]) {
        if let Some(previous) = &self.previous {
            for (index, (old, new)) in previous.iter().zip(values.iter()).enumerate() {
                if old != new {
                    self.toggles[index] += 1;
                }
            }
        }
        self.previous = Some(values.to_vec());
        self.vectors += 1;
    }

    /// Records `count ≤ 64` consecutive vectors at once from an evaluated lane
    /// buffer: bit `t` of `lanes[net]` is the value of the net under vector `t`.
    ///
    /// Within-batch transitions reduce to `count_ones` over lane XORs
    /// (`lanes ^ (lanes >> 1)` marks every adjacent pair that differs); the seam to
    /// the previously recorded vector is handled separately, so chunking a sequence
    /// into batches of any sizes counts exactly like feeding it vector by vector.
    ///
    /// # Panics
    ///
    /// Panics when `count` is 0 or exceeds [`LANES`], or when `lanes` is shorter than
    /// the net count the counter was created for.
    pub fn record_lanes(&mut self, lanes: &[u64], count: usize) {
        assert!(
            (1..=LANES).contains(&count),
            "a lane batch holds between 1 and {LANES} vectors"
        );
        assert!(
            lanes.len() >= self.toggles.len(),
            "lane buffer shorter than the net count"
        );
        // Seam: the last previously recorded vector against lane bit 0.
        if let Some(previous) = &self.previous {
            for (index, old) in previous.iter().enumerate() {
                if *old != (lanes[index] & 1 == 1) {
                    self.toggles[index] += 1;
                }
            }
        }
        // Within-batch: adjacent lane bits t and t+1 for t in 0..count-1.
        let pair_mask = lane_mask(count - 1);
        let last_bit = count - 1;
        let mut previous = self.previous.take().unwrap_or_default();
        previous.resize(self.toggles.len(), false);
        for (index, toggle) in self.toggles.iter_mut().enumerate() {
            let lane = lanes[index];
            *toggle += u64::from(((lane ^ (lane >> 1)) & pair_mask).count_ones());
            previous[index] = (lane >> last_bit) & 1 == 1;
        }
        self.previous = Some(previous);
        self.vectors += count as u64;
    }

    /// Number of vectors recorded so far.
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Toggle count of a net.
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Toggle rate of a net: toggles per vector transition (0.0 before two vectors).
    pub fn toggle_rate(&self, net: NetId) -> f64 {
        if self.vectors < 2 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / (self.vectors - 1) as f64
        }
    }

    /// Sum of toggle rates over a set of nets.
    pub fn total_toggle_rate<I: IntoIterator<Item = NetId>>(&self, nets: I) -> f64 {
        nets.into_iter().map(|net| self.toggle_rate(net)).sum()
    }
}

/// Runs a biased random simulation of `vectors` input vectors and returns the populated
/// [`ToggleCounter`].
///
/// The stimulus stream is identical to the historical scalar implementation (one
/// [`Stimulus::biased_assignment`] draw per vector, in order), but the vectors are
/// evaluated 64 per pass on the [`LaneSim`] engine and folded into the counter with
/// [`ToggleCounter::record_lanes`], so the counts are bit-identical to the scalar
/// path at a fraction of the cost.
///
/// # Errors
///
/// Returns an error when the netlist cannot be simulated.
pub fn measure_toggles(
    netlist: &Netlist,
    map: &WordMap,
    spec: &InputSpec,
    vectors: usize,
    seed: u64,
) -> Result<ToggleCounter, SimError> {
    let simulator = LaneSim::compile(netlist)?;
    let mut stimulus = Stimulus::with_seed(seed);
    let mut counter = ToggleCounter::new(netlist.net_count());
    let mut lanes = simulator.lane_buffer();
    let mut remaining = vectors;
    while remaining > 0 {
        let batch = remaining.min(LANES);
        let assignments = stimulus.biased_batch(spec, batch);
        LaneSim::pack_word_assignments(map, &assignments, &mut lanes);
        simulator.evaluate_into(&mut lanes);
        counter.record_lanes(&lanes, batch);
        remaining -= batch;
    }
    Ok(counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{fake_net, ripple2};

    #[test]
    fn toggle_counter_counts_transitions() {
        let mut counter = ToggleCounter::new(2);
        assert_eq!(counter.toggle_rate(fake_net(0)), 0.0);
        counter.record(&[false, true]);
        counter.record(&[true, true]);
        counter.record(&[false, true]);
        assert_eq!(counter.vectors(), 3);
        assert_eq!(counter.toggles(fake_net(0)), 2);
        assert_eq!(counter.toggles(fake_net(1)), 0);
        assert_eq!(counter.toggle_rate(fake_net(0)), 1.0);
        assert_eq!(counter.total_toggle_rate([fake_net(0), fake_net(1)]), 1.0);
    }

    #[test]
    fn lane_recording_matches_scalar_recording() {
        // The same 7-vector sequence, once vector by vector and once as lane batches
        // of 3 + 4, must produce identical counts (including the batch seam).
        let sequence: [[bool; 2]; 7] = [
            [false, true],
            [true, true],
            [false, false],
            [false, true],
            [true, true],
            [true, false],
            [false, false],
        ];
        let mut scalar = ToggleCounter::new(2);
        for vector in &sequence {
            scalar.record(vector);
        }
        let pack = |range: std::ops::Range<usize>| -> Vec<u64> {
            let mut lanes = vec![0u64; 2];
            for (lane, vector) in sequence[range].iter().enumerate() {
                for (net, value) in vector.iter().enumerate() {
                    if *value {
                        lanes[net] |= 1 << lane;
                    }
                }
            }
            lanes
        };
        let mut lanes_counter = ToggleCounter::new(2);
        lanes_counter.record_lanes(&pack(0..3), 3);
        lanes_counter.record_lanes(&pack(3..7), 4);
        assert_eq!(lanes_counter.vectors(), scalar.vectors());
        for net in 0..2 {
            assert_eq!(
                lanes_counter.toggles(fake_net(net)),
                scalar.toggles(fake_net(net)),
                "net {net}"
            );
        }
    }

    #[test]
    fn surplus_lane_bits_are_ignored() {
        // Garbage above the active lane count (here, bits 1..64) must not count.
        let mut counter = ToggleCounter::new(1);
        counter.record_lanes(&[u64::MAX], 1);
        counter.record_lanes(&[u64::MAX << 1], 1);
        assert_eq!(counter.vectors(), 2);
        assert_eq!(counter.toggles(fake_net(0)), 1);
    }

    /// Toggle rates measured by simulation should agree with the analytic model
    /// 2·p·(1 − p) for independent consecutive samples.
    #[test]
    fn toggle_rates_match_analytic_activity() {
        let (netlist, map) = ripple2();
        let spec = InputSpec::builder()
            .var_with_probability("a", 2, 0.5)
            .var_with_probability("b", 2, 0.5)
            .build()
            .unwrap();
        let counter = measure_toggles(&netlist, &map, &spec, 4000, 99).unwrap();
        // The HA sum output has p = 0.5 -> toggle rate ≈ 2·0.25 = 0.5.
        let ha_sum = map.output().bit(0).unwrap();
        let rate = counter.toggle_rate(ha_sum);
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }
}
