//! Random and exhaustive stimulus generation over the words of an input spec.

use dpsyn_ir::InputSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Random or exhaustive stimulus generation over the words of a
/// [`WordMap`](dpsyn_netlist::WordMap).
#[derive(Debug, Clone)]
pub struct Stimulus {
    rng: StdRng,
}

impl Stimulus {
    /// Creates a reproducible stimulus generator from a seed.
    pub fn with_seed(seed: u64) -> Self {
        Stimulus {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one uniformly random word-level assignment for the variables of `spec`.
    pub fn uniform_assignment(&mut self, spec: &InputSpec) -> BTreeMap<String, u64> {
        spec.vars()
            .map(|var| {
                let mask = if var.width() >= 64 {
                    u64::MAX
                } else {
                    (1u64 << var.width()) - 1
                };
                (var.name().to_string(), self.rng.gen::<u64>() & mask)
            })
            .collect()
    }

    /// Draws `count` uniformly random assignments — the natural batch size is
    /// [`LANES`](crate::LANES), one batch per lane pass.
    pub fn uniform_batch(&mut self, spec: &InputSpec, count: usize) -> Vec<BTreeMap<String, u64>> {
        (0..count).map(|_| self.uniform_assignment(spec)).collect()
    }

    /// Draws one word-level assignment where every bit is 1 with the probability given
    /// in the spec's per-bit profile (the model used by the paper's power experiments).
    pub fn biased_assignment(&mut self, spec: &InputSpec) -> BTreeMap<String, u64> {
        spec.vars()
            .map(|var| {
                let mut value = 0u64;
                for (index, bit) in var.bits().iter().enumerate() {
                    if self.rng.gen::<f64>() < bit.probability {
                        value |= 1 << index;
                    }
                }
                (var.name().to_string(), value)
            })
            .collect()
    }

    /// Draws `count` biased assignments (see [`Stimulus::biased_assignment`]).
    pub fn biased_batch(&mut self, spec: &InputSpec, count: usize) -> Vec<BTreeMap<String, u64>> {
        (0..count).map(|_| self.biased_assignment(spec)).collect()
    }

    /// Enumerates every assignment of the variables in `spec` when the total number of
    /// input bits is at most `max_bits`; returns `None` otherwise.
    pub fn exhaustive_assignments(
        spec: &InputSpec,
        max_bits: u32,
    ) -> Option<Vec<BTreeMap<String, u64>>> {
        let total_bits = spec.total_bits();
        if total_bits > max_bits || total_bits > 24 {
            return None;
        }
        let vars: Vec<_> = spec.vars().collect();
        let mut assignments = Vec::with_capacity(1 << total_bits);
        for pattern in 0u64..(1 << total_bits) {
            let mut assignment = BTreeMap::new();
            let mut cursor = pattern;
            for var in &vars {
                let mask = (1u64 << var.width()) - 1;
                assignment.insert(var.name().to_string(), cursor & mask);
                cursor >>= var.width();
            }
            assignments.push(assignment);
        }
        Some(assignments)
    }
}

/// A pre-drawn batch of raw uniform samples, shared across evaluation points that
/// differ only in their per-bit probabilities.
///
/// [`Stimulus::biased_assignment`] draws **exactly one** uniform `f64` per input bit
/// (vector-major, then spec-variable order, then bit order) regardless of the
/// probability it is thresholded against. `SharedStimulus` exploits that: the raw
/// samples are drawn once from the seed, and [`SharedStimulus::biased_assignments`]
/// thresholds them against any probability profile — producing the bit-identical
/// stream `Stimulus::with_seed(seed).biased_batch(spec, vectors)` would, without
/// re-running the generator per profile. This is what lets an exploration group
/// generate one stimulus batch and reuse it across every skew/bias point.
#[derive(Debug, Clone)]
pub struct SharedStimulus {
    samples: Vec<f64>,
    seed: u64,
    bits_per_vector: usize,
    vectors: usize,
}

impl SharedStimulus {
    /// Draws `vectors × bits_per_vector` uniform samples from the seed, in the
    /// exact order [`Stimulus::biased_batch`] consumes them.
    pub fn generate(seed: u64, bits_per_vector: usize, vectors: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..vectors * bits_per_vector)
            .map(|_| rng.gen::<f64>())
            .collect();
        SharedStimulus {
            samples,
            seed,
            bits_per_vector,
            vectors,
        }
    }

    /// The seed the samples were drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of vectors the batch holds.
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Input bits consumed per vector.
    pub fn bits_per_vector(&self) -> usize {
        self.bits_per_vector
    }

    /// Thresholds the shared samples against the per-bit probabilities of `spec`,
    /// producing the bit-identical assignment stream of
    /// `Stimulus::with_seed(self.seed()).biased_batch(spec, self.vectors())`.
    ///
    /// # Panics
    ///
    /// Panics when the spec's total bit count differs from the batch shape the
    /// samples were drawn for.
    pub fn biased_assignments(&self, spec: &InputSpec) -> Vec<BTreeMap<String, u64>> {
        assert_eq!(
            spec.total_bits() as usize,
            self.bits_per_vector,
            "spec bit count does not match the shared stimulus batch shape"
        );
        let mut cursor = 0;
        (0..self.vectors)
            .map(|_| {
                spec.vars()
                    .map(|var| {
                        let mut value = 0u64;
                        for (index, bit) in var.bits().iter().enumerate() {
                            if self.samples[cursor] < bit.probability {
                                value |= 1 << index;
                            }
                            cursor += 1;
                        }
                        (var.name().to_string(), value)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_assignments_cover_the_space() {
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 1)
            .build()
            .unwrap();
        let assignments = Stimulus::exhaustive_assignments(&spec, 16).unwrap();
        assert_eq!(assignments.len(), 8);
        let distinct: std::collections::BTreeSet<_> =
            assignments.iter().map(|a| (a["a"], a["b"])).collect();
        assert_eq!(distinct.len(), 8);
        // Too many bits -> None.
        let wide = InputSpec::builder().var("x", 30).build().unwrap();
        assert!(Stimulus::exhaustive_assignments(&wide, 16).is_none());
    }

    #[test]
    fn uniform_assignments_respect_width() {
        let spec = InputSpec::builder()
            .var("a", 3)
            .var("b", 7)
            .build()
            .unwrap();
        let mut stimulus = Stimulus::with_seed(42);
        for _ in 0..50 {
            let assignment = stimulus.uniform_assignment(&spec);
            assert!(assignment["a"] < 8);
            assert!(assignment["b"] < 128);
        }
    }

    #[test]
    fn biased_assignments_follow_probabilities() {
        let spec = InputSpec::builder()
            .var_with_probability("hot", 1, 0.95)
            .var_with_probability("cold", 1, 0.05)
            .build()
            .unwrap();
        let mut stimulus = Stimulus::with_seed(11);
        let mut hot_ones = 0;
        let mut cold_ones = 0;
        let trials = 2000;
        for _ in 0..trials {
            let assignment = stimulus.biased_assignment(&spec);
            hot_ones += assignment["hot"];
            cold_ones += assignment["cold"];
        }
        assert!(hot_ones as f64 / trials as f64 > 0.9);
        assert!((cold_ones as f64 / trials as f64) < 0.1);
    }

    #[test]
    fn stimulus_is_reproducible() {
        let spec = InputSpec::builder().var("a", 16).build().unwrap();
        let mut first = Stimulus::with_seed(3);
        let mut second = Stimulus::with_seed(3);
        for _ in 0..10 {
            assert_eq!(
                first.uniform_assignment(&spec),
                second.uniform_assignment(&spec)
            );
        }
    }

    #[test]
    fn shared_stimulus_matches_biased_batches_for_any_profile() {
        // The same seed + batch shape, thresholded against three different
        // probability profiles, must reproduce the per-profile generator streams
        // bit for bit — the invariant the explorer's group-shared batch rests on.
        let profiles = [
            InputSpec::builder()
                .var_with_probability("a", 9, 0.3)
                .var_with_probability("b", 5, 0.5)
                .build()
                .unwrap(),
            InputSpec::builder()
                .var_with_probability("a", 9, 0.05)
                .var_with_probability("b", 5, 0.95)
                .build()
                .unwrap(),
            InputSpec::builder()
                .var("a", 9)
                .var("b", 5)
                .build()
                .unwrap(),
        ];
        let shared = SharedStimulus::generate(21, 14, 10);
        assert_eq!(shared.seed(), 21);
        assert_eq!(shared.vectors(), 10);
        assert_eq!(shared.bits_per_vector(), 14);
        for spec in &profiles {
            let mut generator = Stimulus::with_seed(21);
            assert_eq!(
                shared.biased_assignments(spec),
                generator.biased_batch(spec, 10),
                "shared thresholding diverged from the generator stream"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch shape")]
    fn shared_stimulus_rejects_a_mismatched_spec() {
        let spec = InputSpec::builder().var("a", 4).build().unwrap();
        let shared = SharedStimulus::generate(3, 9, 2);
        let _ = shared.biased_assignments(&spec);
    }

    #[test]
    fn batches_draw_from_the_same_stream_as_single_assignments() {
        let spec = InputSpec::builder()
            .var_with_probability("a", 9, 0.3)
            .var("b", 5)
            .build()
            .unwrap();
        let mut batched = Stimulus::with_seed(21);
        let mut sequential = Stimulus::with_seed(21);
        let batch = batched.uniform_batch(&spec, 10);
        for assignment in &batch {
            assert_eq!(*assignment, sequential.uniform_assignment(&spec));
        }
        let batch = batched.biased_batch(&spec, 10);
        for assignment in &batch {
            assert_eq!(*assignment, sequential.biased_assignment(&spec));
        }
    }
}
