//! Random and exhaustive stimulus generation over the words of an input spec.

use dpsyn_ir::InputSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Random or exhaustive stimulus generation over the words of a
/// [`WordMap`](dpsyn_netlist::WordMap).
#[derive(Debug, Clone)]
pub struct Stimulus {
    rng: StdRng,
}

impl Stimulus {
    /// Creates a reproducible stimulus generator from a seed.
    pub fn with_seed(seed: u64) -> Self {
        Stimulus {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one uniformly random word-level assignment for the variables of `spec`.
    pub fn uniform_assignment(&mut self, spec: &InputSpec) -> BTreeMap<String, u64> {
        spec.vars()
            .map(|var| {
                let mask = if var.width() >= 64 {
                    u64::MAX
                } else {
                    (1u64 << var.width()) - 1
                };
                (var.name().to_string(), self.rng.gen::<u64>() & mask)
            })
            .collect()
    }

    /// Draws `count` uniformly random assignments — the natural batch size is
    /// [`LANES`](crate::LANES), one batch per lane pass.
    pub fn uniform_batch(&mut self, spec: &InputSpec, count: usize) -> Vec<BTreeMap<String, u64>> {
        (0..count).map(|_| self.uniform_assignment(spec)).collect()
    }

    /// Draws one word-level assignment where every bit is 1 with the probability given
    /// in the spec's per-bit profile (the model used by the paper's power experiments).
    pub fn biased_assignment(&mut self, spec: &InputSpec) -> BTreeMap<String, u64> {
        spec.vars()
            .map(|var| {
                let mut value = 0u64;
                for (index, bit) in var.bits().iter().enumerate() {
                    if self.rng.gen::<f64>() < bit.probability {
                        value |= 1 << index;
                    }
                }
                (var.name().to_string(), value)
            })
            .collect()
    }

    /// Draws `count` biased assignments (see [`Stimulus::biased_assignment`]).
    pub fn biased_batch(&mut self, spec: &InputSpec, count: usize) -> Vec<BTreeMap<String, u64>> {
        (0..count).map(|_| self.biased_assignment(spec)).collect()
    }

    /// Enumerates every assignment of the variables in `spec` when the total number of
    /// input bits is at most `max_bits`; returns `None` otherwise.
    pub fn exhaustive_assignments(
        spec: &InputSpec,
        max_bits: u32,
    ) -> Option<Vec<BTreeMap<String, u64>>> {
        let total_bits = spec.total_bits();
        if total_bits > max_bits || total_bits > 24 {
            return None;
        }
        let vars: Vec<_> = spec.vars().collect();
        let mut assignments = Vec::with_capacity(1 << total_bits);
        for pattern in 0u64..(1 << total_bits) {
            let mut assignment = BTreeMap::new();
            let mut cursor = pattern;
            for var in &vars {
                let mask = (1u64 << var.width()) - 1;
                assignment.insert(var.name().to_string(), cursor & mask);
                cursor >>= var.width();
            }
            assignments.push(assignment);
        }
        Some(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_assignments_cover_the_space() {
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 1)
            .build()
            .unwrap();
        let assignments = Stimulus::exhaustive_assignments(&spec, 16).unwrap();
        assert_eq!(assignments.len(), 8);
        let distinct: std::collections::BTreeSet<_> =
            assignments.iter().map(|a| (a["a"], a["b"])).collect();
        assert_eq!(distinct.len(), 8);
        // Too many bits -> None.
        let wide = InputSpec::builder().var("x", 30).build().unwrap();
        assert!(Stimulus::exhaustive_assignments(&wide, 16).is_none());
    }

    #[test]
    fn uniform_assignments_respect_width() {
        let spec = InputSpec::builder()
            .var("a", 3)
            .var("b", 7)
            .build()
            .unwrap();
        let mut stimulus = Stimulus::with_seed(42);
        for _ in 0..50 {
            let assignment = stimulus.uniform_assignment(&spec);
            assert!(assignment["a"] < 8);
            assert!(assignment["b"] < 128);
        }
    }

    #[test]
    fn biased_assignments_follow_probabilities() {
        let spec = InputSpec::builder()
            .var_with_probability("hot", 1, 0.95)
            .var_with_probability("cold", 1, 0.05)
            .build()
            .unwrap();
        let mut stimulus = Stimulus::with_seed(11);
        let mut hot_ones = 0;
        let mut cold_ones = 0;
        let trials = 2000;
        for _ in 0..trials {
            let assignment = stimulus.biased_assignment(&spec);
            hot_ones += assignment["hot"];
            cold_ones += assignment["cold"];
        }
        assert!(hot_ones as f64 / trials as f64 > 0.9);
        assert!((cold_ones as f64 / trials as f64) < 0.1);
    }

    #[test]
    fn stimulus_is_reproducible() {
        let spec = InputSpec::builder().var("a", 16).build().unwrap();
        let mut first = Stimulus::with_seed(3);
        let mut second = Stimulus::with_seed(3);
        for _ in 0..10 {
            assert_eq!(
                first.uniform_assignment(&spec),
                second.uniform_assignment(&spec)
            );
        }
    }

    #[test]
    fn batches_draw_from_the_same_stream_as_single_assignments() {
        let spec = InputSpec::builder()
            .var_with_probability("a", 9, 0.3)
            .var("b", 5)
            .build()
            .unwrap();
        let mut batched = Stimulus::with_seed(21);
        let mut sequential = Stimulus::with_seed(21);
        let batch = batched.uniform_batch(&spec, 10);
        for assignment in &batch {
            assert_eq!(*assignment, sequential.uniform_assignment(&spec));
        }
        let batch = batched.biased_batch(&spec, 10);
        for assignment in &batch {
            assert_eq!(*assignment, sequential.biased_assignment(&spec));
        }
    }
}
