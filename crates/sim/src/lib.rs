//! Bit-accurate logic simulation, stimulus generation, equivalence checking and toggle
//! counting.
//!
//! The simulator evaluates a combinational [`Netlist`] for a vector of primary-input
//! values. On top of it the crate provides:
//!
//! * [`Simulator::evaluate_words`] — word-level evaluation through a [`WordMap`];
//! * [`check_equivalence`] — exhaustive or randomised functional comparison of a
//!   synthesized netlist against the golden [`Expr`] model of `dpsyn-ir`;
//! * [`ToggleCounter`] — zero-delay transition counting over a vector sequence, giving
//!   a simulation-based estimate of per-net switching activity that cross-validates the
//!   analytic model of `dpsyn-power`;
//! * [`Stimulus`] — random vector generation honouring per-input signal probabilities.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_netlist::{CellKind, Netlist, Word, WordMap};
//! use dpsyn_sim::Simulator;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! // One full adder as a 2-bit result: out = a + b + c.
//! let mut netlist = Netlist::new("fa");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let c = netlist.add_input("c");
//! let outs = netlist.add_gate(CellKind::Fa, &[a, b, c])?;
//! netlist.mark_output(outs[0]);
//! netlist.mark_output(outs[1]);
//! let map = WordMap::new(
//!     vec![Word::new("a", vec![a]), Word::new("b", vec![b]), Word::new("c", vec![c])],
//!     Word::new("out", vec![outs[0], outs[1]]),
//! );
//! let simulator = Simulator::compile(&netlist)?;
//! let mut values = BTreeMap::new();
//! values.insert("a".to_string(), 1u64);
//! values.insert("b".to_string(), 1u64);
//! values.insert("c".to_string(), 1u64);
//! assert_eq!(simulator.evaluate_words(&map, &values), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dpsyn_ir::{Expr, InputSpec};
use dpsyn_netlist::{CellId, NetId, Netlist, NetlistError, WordMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced by simulation and equivalence checking.
#[derive(Debug)]
pub enum SimError {
    /// The netlist is structurally invalid (cycle, floating nets, ...).
    Netlist(NetlistError),
    /// The golden model could not be evaluated.
    Ir(dpsyn_ir::IrError),
    /// Equivalence checking found a mismatching assignment.
    Mismatch {
        /// The word-level input assignment that exposes the difference.
        assignment: BTreeMap<String, u64>,
        /// Value computed by the netlist.
        netlist_value: u64,
        /// Value computed by the golden expression model.
        expected_value: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Netlist(error) => write!(f, "invalid netlist: {error}"),
            SimError::Ir(error) => write!(f, "golden model evaluation failed: {error}"),
            SimError::Mismatch {
                assignment,
                netlist_value,
                expected_value,
            } => write!(
                f,
                "netlist computes {netlist_value} but the expression evaluates to \
                 {expected_value} for {assignment:?}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(error) => Some(error),
            SimError::Ir(error) => Some(error),
            SimError::Mismatch { .. } => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(error: NetlistError) -> Self {
        SimError::Netlist(error)
    }
}

impl From<dpsyn_ir::IrError> for SimError {
    fn from(error: dpsyn_ir::IrError) -> Self {
        SimError::Ir(error)
    }
}

/// A compiled simulator: the netlist's cells in topological order, ready for repeated
/// evaluation.
#[derive(Debug, Clone)]
pub struct Simulator<'nl> {
    netlist: &'nl Netlist,
    order: Vec<CellId>,
}

impl<'nl> Simulator<'nl> {
    /// Compiles a netlist for simulation (computes a topological order once).
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist contains a combinational cycle.
    pub fn compile(netlist: &'nl Netlist) -> Result<Self, SimError> {
        let order = netlist.topological_order()?;
        Ok(Simulator { netlist, order })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates the netlist for the given primary-input values.
    ///
    /// Inputs missing from `inputs` are treated as logic 0. The returned vector holds
    /// the value of every net, indexed by [`NetId::index`].
    pub fn evaluate(&self, inputs: &BTreeMap<NetId, bool>) -> Vec<bool> {
        let mut values = vec![false; self.netlist.net_count()];
        for net in self.netlist.inputs() {
            values[net.index()] = inputs.get(net).copied().unwrap_or(false);
        }
        for cell_id in &self.order {
            let cell = self.netlist.cell(*cell_id);
            let input_values: Vec<bool> = cell
                .inputs()
                .iter()
                .map(|net| values[net.index()])
                .collect();
            let outputs = cell.kind().evaluate(&input_values);
            for (net, value) in cell.outputs().iter().zip(outputs) {
                values[net.index()] = value;
            }
        }
        values
    }

    /// Evaluates the netlist for a word-level assignment and packs the output word.
    pub fn evaluate_words(&self, map: &WordMap, values: &BTreeMap<String, u64>) -> u64 {
        let bit_inputs = map.assignment_to_bits(values);
        let net_values = self.evaluate(&bit_inputs);
        let output_values: BTreeMap<NetId, bool> = map
            .output()
            .bits()
            .iter()
            .map(|net| (*net, net_values[net.index()]))
            .collect();
        map.output_value(&output_values)
    }
}

/// Random or exhaustive stimulus generation over the words of a [`WordMap`].
#[derive(Debug, Clone)]
pub struct Stimulus {
    rng: StdRng,
}

impl Stimulus {
    /// Creates a reproducible stimulus generator from a seed.
    pub fn with_seed(seed: u64) -> Self {
        Stimulus {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one uniformly random word-level assignment for the variables of `spec`.
    pub fn uniform_assignment(&mut self, spec: &InputSpec) -> BTreeMap<String, u64> {
        spec.vars()
            .map(|var| {
                let mask = if var.width() >= 64 {
                    u64::MAX
                } else {
                    (1u64 << var.width()) - 1
                };
                (var.name().to_string(), self.rng.gen::<u64>() & mask)
            })
            .collect()
    }

    /// Draws one word-level assignment where every bit is 1 with the probability given
    /// in the spec's per-bit profile (the model used by the paper's power experiments).
    pub fn biased_assignment(&mut self, spec: &InputSpec) -> BTreeMap<String, u64> {
        spec.vars()
            .map(|var| {
                let mut value = 0u64;
                for (index, bit) in var.bits().iter().enumerate() {
                    if self.rng.gen::<f64>() < bit.probability {
                        value |= 1 << index;
                    }
                }
                (var.name().to_string(), value)
            })
            .collect()
    }

    /// Enumerates every assignment of the variables in `spec` when the total number of
    /// input bits is at most `max_bits`; returns `None` otherwise.
    pub fn exhaustive_assignments(
        spec: &InputSpec,
        max_bits: u32,
    ) -> Option<Vec<BTreeMap<String, u64>>> {
        let total_bits = spec.total_bits();
        if total_bits > max_bits || total_bits > 24 {
            return None;
        }
        let vars: Vec<_> = spec.vars().collect();
        let mut assignments = Vec::with_capacity(1 << total_bits);
        for pattern in 0u64..(1 << total_bits) {
            let mut assignment = BTreeMap::new();
            let mut cursor = pattern;
            for var in &vars {
                let mask = (1u64 << var.width()) - 1;
                assignment.insert(var.name().to_string(), cursor & mask);
                cursor >>= var.width();
            }
            assignments.push(assignment);
        }
        Some(assignments)
    }
}

/// Checks functional equivalence between a synthesized netlist and the golden
/// expression model, exhaustively when the input space is small (≤ 16 bits) and with
/// `random_vectors` random assignments otherwise.
///
/// `width` is the output width the expression is reduced modulo.
///
/// # Errors
///
/// Returns [`SimError::Mismatch`] with a counterexample when the two models disagree,
/// or other variants when either model cannot be evaluated.
pub fn check_equivalence(
    netlist: &Netlist,
    map: &WordMap,
    expr: &Expr,
    spec: &InputSpec,
    width: u32,
    random_vectors: usize,
    seed: u64,
) -> Result<(), SimError> {
    let simulator = Simulator::compile(netlist)?;
    let mut stimulus = Stimulus::with_seed(seed);
    let assignments = Stimulus::exhaustive_assignments(spec, 16).unwrap_or_else(|| {
        (0..random_vectors)
            .map(|_| stimulus.uniform_assignment(spec))
            .collect()
    });
    for assignment in assignments {
        let expected = expr.evaluate_mod(&assignment, width)?;
        let actual = simulator.evaluate_words(map, &assignment);
        if expected != actual {
            return Err(SimError::Mismatch {
                assignment,
                netlist_value: actual,
                expected_value: expected,
            });
        }
    }
    Ok(())
}

/// Zero-delay toggle counting over a sequence of input vectors.
///
/// Feeding `n` vectors produces `n − 1` opportunities for each net to toggle; the
/// per-net toggle rate estimates the switching activity that the analytic model of
/// `dpsyn-power` predicts as `2·p·(1 − p)` per vector pair (a toggle happens when two
/// consecutive independent samples differ).
#[derive(Debug, Clone)]
pub struct ToggleCounter {
    toggles: Vec<u64>,
    vectors: u64,
    previous: Option<Vec<bool>>,
}

impl ToggleCounter {
    /// Creates a counter for a netlist with `net_count` nets.
    pub fn new(net_count: usize) -> Self {
        ToggleCounter {
            toggles: vec![0; net_count],
            vectors: 0,
            previous: None,
        }
    }

    /// Records the net values of one simulated vector.
    pub fn record(&mut self, values: &[bool]) {
        if let Some(previous) = &self.previous {
            for (index, (old, new)) in previous.iter().zip(values.iter()).enumerate() {
                if old != new {
                    self.toggles[index] += 1;
                }
            }
        }
        self.previous = Some(values.to_vec());
        self.vectors += 1;
    }

    /// Number of vectors recorded so far.
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Toggle count of a net.
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Toggle rate of a net: toggles per vector transition (0.0 before two vectors).
    pub fn toggle_rate(&self, net: NetId) -> f64 {
        if self.vectors < 2 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / (self.vectors - 1) as f64
        }
    }

    /// Sum of toggle rates over a set of nets.
    pub fn total_toggle_rate<I: IntoIterator<Item = NetId>>(&self, nets: I) -> f64 {
        nets.into_iter().map(|net| self.toggle_rate(net)).sum()
    }
}

/// Runs a biased random simulation of `vectors` input vectors and returns the populated
/// [`ToggleCounter`].
///
/// # Errors
///
/// Returns an error when the netlist cannot be simulated.
pub fn measure_toggles(
    netlist: &Netlist,
    map: &WordMap,
    spec: &InputSpec,
    vectors: usize,
    seed: u64,
) -> Result<ToggleCounter, SimError> {
    let simulator = Simulator::compile(netlist)?;
    let mut stimulus = Stimulus::with_seed(seed);
    let mut counter = ToggleCounter::new(netlist.net_count());
    for _ in 0..vectors {
        let assignment = stimulus.biased_assignment(spec);
        let bit_inputs = map.assignment_to_bits(&assignment);
        let values = simulator.evaluate(&bit_inputs);
        counter.record(&values);
    }
    Ok(counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::{CellKind, Word};

    /// Builds a 2-bit ripple adder out = a + b (a, b two bits each, out three bits).
    fn ripple2() -> (Netlist, WordMap) {
        let mut netlist = Netlist::new("ripple2");
        let a0 = netlist.add_input("a0");
        let a1 = netlist.add_input("a1");
        let b0 = netlist.add_input("b0");
        let b1 = netlist.add_input("b1");
        let stage0 = netlist.add_gate(CellKind::Ha, &[a0, b0]).unwrap();
        let stage1 = netlist
            .add_gate(CellKind::Fa, &[a1, b1, stage0[1]])
            .unwrap();
        for net in [stage0[0], stage1[0], stage1[1]] {
            netlist.mark_output(net);
        }
        let map = WordMap::new(
            vec![Word::new("a", vec![a0, a1]), Word::new("b", vec![b0, b1])],
            Word::new("out", vec![stage0[0], stage1[0], stage1[1]]),
        );
        (netlist, map)
    }

    #[test]
    fn ripple_adder_simulates_correctly() {
        let (netlist, map) = ripple2();
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..4u64 {
            for b in 0..4u64 {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                values.insert("b".to_string(), b);
                assert_eq!(simulator.evaluate_words(&map, &values), a + b);
            }
        }
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let (netlist, map) = ripple2();
        let simulator = Simulator::compile(&netlist).unwrap();
        assert_eq!(simulator.evaluate_words(&map, &BTreeMap::new()), 0);
    }

    #[test]
    fn equivalence_against_expression() {
        let (netlist, map) = ripple2();
        let expr = Expr::var("a") + Expr::var("b");
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap();
        check_equivalence(&netlist, &map, &expr, &spec, 3, 64, 7).unwrap();
    }

    #[test]
    fn inequivalence_is_detected_with_counterexample() {
        let (netlist, map) = ripple2();
        let expr = Expr::var("a") * Expr::var("b");
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap();
        let result = check_equivalence(&netlist, &map, &expr, &spec, 3, 64, 7);
        match result {
            Err(SimError::Mismatch {
                assignment,
                netlist_value,
                expected_value,
            }) => {
                let a = assignment["a"];
                let b = assignment["b"];
                assert_eq!(netlist_value, (a + b) % 8);
                assert_eq!(expected_value, (a * b) % 8);
            }
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    #[test]
    fn exhaustive_assignments_cover_the_space() {
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 1)
            .build()
            .unwrap();
        let assignments = Stimulus::exhaustive_assignments(&spec, 16).unwrap();
        assert_eq!(assignments.len(), 8);
        let distinct: std::collections::BTreeSet<_> =
            assignments.iter().map(|a| (a["a"], a["b"])).collect();
        assert_eq!(distinct.len(), 8);
        // Too many bits -> None.
        let wide = InputSpec::builder().var("x", 30).build().unwrap();
        assert!(Stimulus::exhaustive_assignments(&wide, 16).is_none());
    }

    #[test]
    fn uniform_assignments_respect_width() {
        let spec = InputSpec::builder()
            .var("a", 3)
            .var("b", 7)
            .build()
            .unwrap();
        let mut stimulus = Stimulus::with_seed(42);
        for _ in 0..50 {
            let assignment = stimulus.uniform_assignment(&spec);
            assert!(assignment["a"] < 8);
            assert!(assignment["b"] < 128);
        }
    }

    #[test]
    fn biased_assignments_follow_probabilities() {
        let spec = InputSpec::builder()
            .var_with_probability("hot", 1, 0.95)
            .var_with_probability("cold", 1, 0.05)
            .build()
            .unwrap();
        let mut stimulus = Stimulus::with_seed(11);
        let mut hot_ones = 0;
        let mut cold_ones = 0;
        let trials = 2000;
        for _ in 0..trials {
            let assignment = stimulus.biased_assignment(&spec);
            hot_ones += assignment["hot"];
            cold_ones += assignment["cold"];
        }
        assert!(hot_ones as f64 / trials as f64 > 0.9);
        assert!((cold_ones as f64 / trials as f64) < 0.1);
    }

    #[test]
    fn stimulus_is_reproducible() {
        let spec = InputSpec::builder().var("a", 16).build().unwrap();
        let mut first = Stimulus::with_seed(3);
        let mut second = Stimulus::with_seed(3);
        for _ in 0..10 {
            assert_eq!(
                first.uniform_assignment(&spec),
                second.uniform_assignment(&spec)
            );
        }
    }

    #[test]
    fn toggle_counter_counts_transitions() {
        let mut counter = ToggleCounter::new(2);
        assert_eq!(counter.toggle_rate(fake_net(0)), 0.0);
        counter.record(&[false, true]);
        counter.record(&[true, true]);
        counter.record(&[false, true]);
        assert_eq!(counter.vectors(), 3);
        assert_eq!(counter.toggles(fake_net(0)), 2);
        assert_eq!(counter.toggles(fake_net(1)), 0);
        assert_eq!(counter.toggle_rate(fake_net(0)), 1.0);
        assert_eq!(counter.total_toggle_rate([fake_net(0), fake_net(1)]), 1.0);
    }

    /// Toggle rates measured by simulation should agree with the analytic model
    /// 2·p·(1 − p) for independent consecutive samples.
    #[test]
    fn toggle_rates_match_analytic_activity() {
        let (netlist, map) = ripple2();
        let spec = InputSpec::builder()
            .var_with_probability("a", 2, 0.5)
            .var_with_probability("b", 2, 0.5)
            .build()
            .unwrap();
        let counter = measure_toggles(&netlist, &map, &spec, 4000, 99).unwrap();
        // The HA sum output has p = 0.5 -> toggle rate ≈ 2·0.25 = 0.5.
        let ha_sum = map.output().bit(0).unwrap();
        let rate = counter.toggle_rate(ha_sum);
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    fn fake_net(index: usize) -> NetId {
        // Build identifiers through a scratch netlist because NetId construction is
        // private to the netlist crate.
        let mut scratch = Netlist::new("scratch");
        let mut last = scratch.add_net("n");
        for _ in 0..index {
            last = scratch.add_net("n");
        }
        last
    }

    #[test]
    fn sim_error_display() {
        let (netlist, map) = ripple2();
        let expr = Expr::var("a") - Expr::var("b");
        let spec = InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap();
        let error = check_equivalence(&netlist, &map, &expr, &spec, 3, 16, 1).unwrap_err();
        assert!(error.to_string().contains("netlist computes"));
    }
}
