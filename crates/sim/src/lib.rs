//! Bit-accurate logic simulation, stimulus generation, equivalence checking and toggle
//! counting.
//!
//! The crate is built around two evaluation engines over a combinational
//! [`Netlist`](dpsyn_netlist::Netlist):
//!
//! * [`BlockSim`] — the production engine. The netlist is compiled once into a
//!   levelized flat program evaluated **`B × 64` stimulus vectors per pass**: each net
//!   owns a block of `B` consecutive `u64` lane words (default `B = 4`, 256 vectors),
//!   and the monomorphized inner loop is shaped for SIMD autovectorization.
//! * [`LaneSim`] — the 64-lane engine (`B = 1` layout), kept as the differential
//!   oracle the block engine is tested against, exactly as the scalar interpreter
//!   anchors the lanes.
//! * [`Simulator`] — the scalar reference evaluator, one vector at a time. It is the
//!   oracle the lane engine is differentially tested against (`crates/sim/tests/`),
//!   closing the oracle chain scalar → lanes → blocks.
//!
//! On top of the engines the crate provides:
//!
//! * [`check_equivalence`] — exhaustive or randomised functional comparison of a
//!   synthesized netlist against the golden [`Expr`](dpsyn_ir::Expr) model of
//!   `dpsyn-ir`, batched 64 assignments per lane pass;
//! * [`ToggleCounter`] — zero-delay transition counting over a vector sequence
//!   (lane batches reduce to `count_ones` over lane XORs), giving a simulation-based
//!   estimate of per-net switching activity that cross-validates the analytic model
//!   of `dpsyn-power`;
//! * [`Stimulus`] — random vector generation honouring per-input signal
//!   probabilities, with batch helpers sized for lane passes; [`SharedStimulus`]
//!   pre-draws one raw sample batch reusable across probability profiles (the
//!   explorer's per-group stimulus sharing).
//!
//! # Example: the lane API
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_netlist::{CellKind, Netlist, Word, WordMap};
//! use dpsyn_sim::LaneSim;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! // One full adder as a 2-bit result: out = a + b + c.
//! let mut netlist = Netlist::new("fa");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let c = netlist.add_input("c");
//! let outs = netlist.add_gate(CellKind::Fa, &[a, b, c])?;
//! netlist.mark_output(outs[0]);
//! netlist.mark_output(outs[1]);
//! let map = WordMap::new(
//!     vec![Word::new("a", vec![a]), Word::new("b", vec![b]), Word::new("c", vec![c])],
//!     Word::new("out", vec![outs[0], outs[1]]),
//! );
//! let simulator = LaneSim::compile(&netlist)?;
//! // All eight input combinations in ONE evaluation pass (56 lanes to spare).
//! let batch: Vec<BTreeMap<String, u64>> = (0..8u64)
//!     .map(|pattern| {
//!         let mut assignment = BTreeMap::new();
//!         assignment.insert("a".to_string(), pattern & 1);
//!         assignment.insert("b".to_string(), (pattern >> 1) & 1);
//!         assignment.insert("c".to_string(), (pattern >> 2) & 1);
//!         assignment
//!     })
//!     .collect();
//! let sums = simulator.evaluate_word_batch(&map, &batch);
//! for (pattern, sum) in sums.iter().enumerate() {
//!     assert_eq!(*sum, (pattern as u64).count_ones() as u64);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The scalar oracle keeps the original one-vector API; see [`Simulator`] for an
//! equivalent single-vector example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod equiv;
mod error;
mod lanes;
mod scalar;
mod stimulus;
mod toggle;

pub use blocks::{BlockSim, BLOCK_SIZES, DEFAULT_BLOCK};
pub use equiv::check_equivalence;
pub use error::SimError;
pub use lanes::{lane_mask, LaneSim, LANES};
pub use scalar::Simulator;
pub use stimulus::{SharedStimulus, Stimulus};
pub use toggle::{measure_toggles, measure_toggles_blocks, ToggleCounter};

#[cfg(test)]
pub(crate) mod tests {
    use dpsyn_netlist::{CellKind, NetId, Netlist, Word, WordMap};

    /// Builds a 2-bit ripple adder out = a + b (a, b two bits each, out three bits).
    pub(crate) fn ripple2() -> (Netlist, WordMap) {
        let mut netlist = Netlist::new("ripple2");
        let a0 = netlist.add_input("a0");
        let a1 = netlist.add_input("a1");
        let b0 = netlist.add_input("b0");
        let b1 = netlist.add_input("b1");
        let stage0 = netlist.add_gate(CellKind::Ha, &[a0, b0]).unwrap();
        let stage1 = netlist
            .add_gate(CellKind::Fa, &[a1, b1, stage0[1]])
            .unwrap();
        for net in [stage0[0], stage1[0], stage1[1]] {
            netlist.mark_output(net);
        }
        let map = WordMap::new(
            vec![Word::new("a", vec![a0, a1]), Word::new("b", vec![b0, b1])],
            Word::new("out", vec![stage0[0], stage1[0], stage1[1]]),
        );
        (netlist, map)
    }

    /// Builds a `NetId` with the given index through a scratch netlist, because net
    /// identifier construction is private to the netlist crate.
    pub(crate) fn fake_net(index: usize) -> NetId {
        let mut scratch = Netlist::new("scratch");
        let mut last = scratch.add_net("n");
        for _ in 0..index {
            last = scratch.add_net("n");
        }
        last
    }
}
