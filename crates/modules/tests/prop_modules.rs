//! Property-based tests for the word-level module generators.

use dpsyn_modules::builders::{
    standalone_adder, standalone_multiplier, standalone_subtractor, AdderKind, MultiplierKind,
};
use dpsyn_sim::Simulator;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn evaluate(netlist: &dpsyn_netlist::Netlist, map: &dpsyn_netlist::WordMap, a: u64, b: u64) -> u64 {
    let simulator = Simulator::compile(netlist).expect("compile");
    let mut values = BTreeMap::new();
    values.insert("a".to_string(), a);
    values.insert("b".to_string(), b);
    simulator.evaluate_words(map, &values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every adder architecture adds correctly at every width.
    #[test]
    fn adders_add(width in 1u32..10, a in any::<u64>(), b in any::<u64>(), kind_index in 0usize..3) {
        let kind = AdderKind::all()[kind_index];
        let mask = (1u64 << width) - 1;
        let (netlist, map) = standalone_adder(width, kind).expect("build");
        prop_assert_eq!(evaluate(&netlist, &map, a & mask, b & mask), (a & mask) + (b & mask));
    }

    /// Every multiplier architecture multiplies correctly at every width.
    #[test]
    fn multipliers_multiply(width in 1u32..7, a in any::<u64>(), b in any::<u64>(), kind_index in 0usize..2) {
        let kind = MultiplierKind::all()[kind_index];
        let mask = (1u64 << width) - 1;
        let (netlist, map) = standalone_multiplier(width, kind).expect("build");
        prop_assert_eq!(evaluate(&netlist, &map, a & mask, b & mask), (a & mask) * (b & mask));
    }

    /// The subtractor implements two's-complement subtraction modulo 2^width.
    #[test]
    fn subtractors_subtract(width in 1u32..10, a in any::<u64>(), b in any::<u64>()) {
        let mask = (1u64 << width) - 1;
        let (netlist, map) = standalone_subtractor(width).expect("build");
        prop_assert_eq!(
            evaluate(&netlist, &map, a & mask, b & mask),
            (a & mask).wrapping_sub(b & mask) & mask
        );
    }

    /// Generated module netlists are always structurally valid and emit Verilog with a
    /// module header and footer.
    #[test]
    fn generated_netlists_are_valid(width in 1u32..8, kind_index in 0usize..3) {
        let kind = AdderKind::all()[kind_index];
        let (netlist, _) = standalone_adder(width, kind).expect("build");
        prop_assert!(netlist.validate().is_ok());
        let verilog = netlist.to_verilog();
        prop_assert!(verilog.starts_with("// generated"));
        prop_assert!(verilog.trim_end().ends_with("endmodule"));
    }
}
