//! Carry-save compressors: the word-level 3:2 row used by the CSA_OPT baseline and the
//! classic stage-by-stage Wallace column reduction.

use dpsyn_netlist::{CellKind, NetId, Netlist, NetlistError};

/// Builds one word-level 3:2 carry-save compressor row: three operand words are reduced
/// to a sum word and a carry word such that `a + b + c = sum + carry`.
///
/// Every bit position gets one full adder; the carry word is shifted left by one
/// position (its LSB is constant 0). Operands of different widths are zero-extended.
/// This is the building block of word-level CSA allocation (the paper's reference [8],
/// reproduced as the `csa_opt` baseline).
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
///
/// # Example
/// ```
/// # use std::error::Error;
/// use dpsyn_modules::compressor::carry_save_row;
/// use dpsyn_netlist::Netlist;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut netlist = Netlist::new("csa");
/// let a: Vec<_> = (0..4).map(|i| netlist.add_input(format!("a{i}"))).collect();
/// let b: Vec<_> = (0..4).map(|i| netlist.add_input(format!("b{i}"))).collect();
/// let c: Vec<_> = (0..4).map(|i| netlist.add_input(format!("c{i}"))).collect();
/// let (sum, carry) = carry_save_row(&mut netlist, &a, &b, &c)?;
/// assert_eq!(sum.len(), 4);
/// assert_eq!(carry.len(), 5);
/// # Ok(())
/// # }
/// ```
pub fn carry_save_row(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    c: &[NetId],
) -> Result<(Vec<NetId>, Vec<NetId>), NetlistError> {
    let width = a.len().max(b.len()).max(c.len()).max(1);
    let a = crate::zero_extend(netlist, a, width);
    let b = crate::zero_extend(netlist, b, width);
    let c = crate::zero_extend(netlist, c, width);
    let mut sum = Vec::with_capacity(width);
    let mut carry = Vec::with_capacity(width + 1);
    carry.push(netlist.constant(false));
    for bit in 0..width {
        let outs = netlist.add_gate(CellKind::Fa, &[a[bit], b[bit], c[bit]])?;
        sum.push(outs[0]);
        carry.push(outs[1]);
    }
    Ok((sum, carry))
}

/// Classic stage-by-stage Wallace reduction of a column matrix down to two rows.
///
/// At every stage each column is partitioned, in row order, into groups of three
/// (full adder), a possible group of two (half adder) and a possible leftover bit;
/// sums stay in the column, carries move to the next column of the *next* stage.
/// Arrival times are deliberately ignored — this is the fixed scheme the paper's
/// Figure 2(a) illustrates and improves upon.
///
/// Returns two operand words (row A, row B) whose sum equals the sum of all input
/// column bits; both rows are `columns.len()` bits wide (missing positions are constant
/// zero).
///
/// # Errors
///
/// Returns an error if the column nets do not belong to `netlist`.
pub fn reduce_columns_wallace(
    netlist: &mut Netlist,
    columns: Vec<Vec<NetId>>,
) -> Result<(Vec<NetId>, Vec<NetId>), NetlistError> {
    let width = columns.len();
    let mut current = columns;
    // Keep compressing until every column holds at most two bits.
    while current.iter().any(|column| column.len() > 2) {
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
        for (index, column) in current.iter().enumerate() {
            let mut iter = column.iter().copied().peekable();
            while iter.peek().is_some() {
                let group: Vec<NetId> = iter.by_ref().take(3).collect();
                match group.len() {
                    3 => {
                        let outs =
                            netlist.add_gate(CellKind::Fa, &[group[0], group[1], group[2]])?;
                        next[index].push(outs[0]);
                        if index + 1 < width {
                            next[index + 1].push(outs[1]);
                        }
                    }
                    2 => {
                        let outs = netlist.add_gate(CellKind::Ha, &[group[0], group[1]])?;
                        next[index].push(outs[0]);
                        if index + 1 < width {
                            next[index + 1].push(outs[1]);
                        }
                    }
                    _ => next[index].push(group[0]),
                }
            }
        }
        current = next;
    }
    let mut row_a = Vec::with_capacity(width);
    let mut row_b = Vec::with_capacity(width);
    for column in current {
        let mut bits = column.into_iter();
        row_a.push(bits.next().unwrap_or_else(|| netlist.constant(false)));
        row_b.push(bits.next().unwrap_or_else(|| netlist.constant(false)));
    }
    Ok((row_a, row_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::{Word, WordMap};
    use dpsyn_sim::Simulator;
    use std::collections::BTreeMap;

    #[test]
    fn carry_save_row_preserves_the_sum() {
        let mut netlist = Netlist::new("csa");
        let a: Vec<_> = (0..3).map(|i| netlist.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| netlist.add_input(format!("b{i}"))).collect();
        let c: Vec<_> = (0..3).map(|i| netlist.add_input(format!("c{i}"))).collect();
        let (sum, carry) = carry_save_row(&mut netlist, &a, &b, &c).unwrap();
        // Add sum + carry with a ripple adder to check the compressor's invariant.
        let total = crate::adder::ripple_add(&mut netlist, &sum, &carry, None).unwrap();
        for net in &total {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(
            vec![Word::new("a", a), Word::new("b", b), Word::new("c", c)],
            Word::new("t", total),
        );
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    let mut values = BTreeMap::new();
                    values.insert("a".to_string(), a);
                    values.insert("b".to_string(), b);
                    values.insert("c".to_string(), c);
                    assert_eq!(simulator.evaluate_words(&map, &values), a + b + c);
                }
            }
        }
    }

    #[test]
    fn wallace_reduction_leaves_at_most_two_bits_per_column() {
        let mut netlist = Netlist::new("wallace");
        // Build a 6-high column matrix of 4 columns from 24 primary inputs.
        let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 4];
        for (column, bits) in columns.iter_mut().enumerate() {
            for row in 0..6 {
                bits.push(netlist.add_input(format!("b{column}_{row}")));
            }
        }
        let inputs: Vec<Vec<NetId>> = columns.clone();
        let (row_a, row_b) = reduce_columns_wallace(&mut netlist, columns).unwrap();
        assert_eq!(row_a.len(), 4);
        assert_eq!(row_b.len(), 4);
        // Value preservation modulo 2^4 (carries out of the top column are dropped, as
        // in any fixed-width datapath).
        let mut total = crate::adder::ripple_add(&mut netlist, &row_a, &row_b, None).unwrap();
        total.truncate(4);
        for net in &total {
            netlist.mark_output(*net);
        }
        let simulator = Simulator::compile(&netlist).unwrap();
        let mut bit_values = BTreeMap::new();
        let mut expected: u64 = 0;
        for (column, bits) in inputs.iter().enumerate() {
            for (row, net) in bits.iter().enumerate() {
                let value = (column * 7 + row * 3) % 2 == 1;
                bit_values.insert(*net, value);
                if value {
                    expected += 1 << column;
                }
            }
        }
        let values = simulator.evaluate(&bit_values);
        let out_bits: Vec<bool> = total.iter().map(|net| values[net.index()]).collect();
        assert_eq!(Word::bits_to_value(&out_bits), expected % 16);
    }

    #[test]
    fn empty_columns_reduce_to_constant_zeros() {
        let mut netlist = Netlist::new("empty");
        let (row_a, row_b) = reduce_columns_wallace(&mut netlist, vec![Vec::new(); 3]).unwrap();
        assert_eq!(row_a.len(), 3);
        assert_eq!(row_b.len(), 3);
        assert_eq!(netlist.count_kind(CellKind::Fa), 0);
    }
}
