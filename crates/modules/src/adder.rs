//! Word-level adder and subtractor generators.

use crate::zero_extend;
use dpsyn_netlist::{CellKind, NetId, Netlist, NetlistError};

/// Builds a ripple-carry adder `a + b (+ cin)` and returns the sum bits, one bit wider
/// than the wider operand (the final carry becomes the MSB).
///
/// Operands may have different widths; the shorter one is zero-extended.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
///
/// # Example
/// ```
/// # use std::error::Error;
/// use dpsyn_modules::adder::ripple_add;
/// use dpsyn_netlist::Netlist;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut netlist = Netlist::new("add");
/// let a: Vec<_> = (0..4).map(|i| netlist.add_input(format!("a{i}"))).collect();
/// let b: Vec<_> = (0..4).map(|i| netlist.add_input(format!("b{i}"))).collect();
/// let sum = ripple_add(&mut netlist, &a, &b, None)?;
/// assert_eq!(sum.len(), 5);
/// # Ok(())
/// # }
/// ```
pub fn ripple_add(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
) -> Result<Vec<NetId>, NetlistError> {
    let width = a.len().max(b.len()).max(1);
    let a = zero_extend(netlist, a, width);
    let b = zero_extend(netlist, b, width);
    let mut sum = Vec::with_capacity(width + 1);
    let mut carry = cin;
    for bit in 0..width {
        match carry {
            Some(c) => {
                let outs = netlist.add_gate(CellKind::Fa, &[a[bit], b[bit], c])?;
                sum.push(outs[0]);
                carry = Some(outs[1]);
            }
            None => {
                let outs = netlist.add_gate(CellKind::Ha, &[a[bit], b[bit]])?;
                sum.push(outs[0]);
                carry = Some(outs[1]);
            }
        }
    }
    sum.push(carry.expect("loop ran at least once"));
    Ok(sum)
}

/// Builds a carry-lookahead adder with 4-bit lookahead blocks and returns the sum bits
/// (one wider than the wider operand).
///
/// Generate/propagate signals are computed per bit; carries inside a block are produced
/// by two-level AND/OR logic and blocks are chained. The point of this generator is to
/// give the conventional-flow baseline a fast adder whose internal carry network is
/// still visible to timing and power analysis.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn carry_lookahead_add(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
) -> Result<Vec<NetId>, NetlistError> {
    let width = a.len().max(b.len()).max(1);
    let a = zero_extend(netlist, a, width);
    let b = zero_extend(netlist, b, width);
    let mut propagate = Vec::with_capacity(width);
    let mut generate = Vec::with_capacity(width);
    for bit in 0..width {
        propagate.push(netlist.add_gate(CellKind::Xor2, &[a[bit], b[bit]])?[0]);
        generate.push(netlist.add_gate(CellKind::And2, &[a[bit], b[bit]])?[0]);
    }
    let mut carries = Vec::with_capacity(width + 1);
    carries.push(match cin {
        Some(c) => c,
        None => netlist.constant(false),
    });
    for block_start in (0..width).step_by(4) {
        let block_end = (block_start + 4).min(width);
        let block_cin = carries[block_start];
        for bit in block_start..block_end {
            // Two-level lookahead inside the block:
            //   c_{i+1} = g_i | p_i·g_{i-1} | ... | p_i·…·p_{blockStart}·c_in(block)
            // Every product term is built as a balanced AND tree from the p/g signals,
            // which are all available one gate after the inputs, so the carry does not
            // ripple through full adders.
            let mut terms: Vec<NetId> = Vec::new();
            for source in (block_start..=bit).rev() {
                // Term: g_source AND p_{source+1..=bit}.
                let mut factors: Vec<NetId> = vec![generate[source]];
                factors.extend(propagate[source + 1..=bit].iter().copied());
                terms.push(and_tree(netlist, &factors)?);
            }
            // Term that forwards the block carry-in through all propagates.
            let mut factors: Vec<NetId> = vec![block_cin];
            factors.extend(propagate[block_start..=bit].iter().copied());
            terms.push(and_tree(netlist, &factors)?);
            carries.push(or_tree(netlist, &terms)?);
        }
    }
    let mut sum = Vec::with_capacity(width + 1);
    for bit in 0..width {
        sum.push(netlist.add_gate(CellKind::Xor2, &[propagate[bit], carries[bit]])?[0]);
    }
    sum.push(carries[width]);
    Ok(sum)
}

/// Builds a carry-select adder with 4-bit blocks: every block past the first is
/// computed twice (carry-in 0 and 1) and the true result is selected by a multiplexer
/// once the block carry is known.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn carry_select_add(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
) -> Result<Vec<NetId>, NetlistError> {
    let width = a.len().max(b.len()).max(1);
    let a = zero_extend(netlist, a, width);
    let b = zero_extend(netlist, b, width);
    let mut sum = Vec::with_capacity(width + 1);
    let mut block_carry = match cin {
        Some(c) => c,
        None => netlist.constant(false),
    };
    for block_start in (0..width).step_by(4) {
        let block_end = (block_start + 4).min(width);
        let a_block = &a[block_start..block_end];
        let b_block = &b[block_start..block_end];
        if block_start == 0 {
            let bits = ripple_block(netlist, a_block, b_block, block_carry)?;
            sum.extend_from_slice(&bits.0);
            block_carry = bits.1;
        } else {
            let zero = netlist.constant(false);
            let one = netlist.constant(true);
            let with_zero = ripple_block(netlist, a_block, b_block, zero)?;
            let with_one = ripple_block(netlist, a_block, b_block, one)?;
            for (s0, s1) in with_zero.0.iter().zip(with_one.0.iter()) {
                sum.push(netlist.add_gate(CellKind::Mux2, &[*s0, *s1, block_carry])?[0]);
            }
            block_carry =
                netlist.add_gate(CellKind::Mux2, &[with_zero.1, with_one.1, block_carry])?[0];
        }
    }
    sum.push(block_carry);
    Ok(sum)
}

/// Builds a balanced tree of AND gates over `factors` (returns the single factor or a
/// constant-1 net for the empty case).
fn and_tree(netlist: &mut Netlist, factors: &[NetId]) -> Result<NetId, NetlistError> {
    match factors.len() {
        0 => Ok(netlist.constant(true)),
        1 => Ok(factors[0]),
        _ => {
            let mut level: Vec<NetId> = factors.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(netlist.add_gate(CellKind::And2, &[pair[0], pair[1]])?[0]);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            Ok(level[0])
        }
    }
}

/// Builds a balanced tree of OR gates over `terms`.
fn or_tree(netlist: &mut Netlist, terms: &[NetId]) -> Result<NetId, NetlistError> {
    match terms.len() {
        0 => Ok(netlist.constant(false)),
        1 => Ok(terms[0]),
        _ => {
            let mut level: Vec<NetId> = terms.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(netlist.add_gate(CellKind::Or2, &[pair[0], pair[1]])?[0]);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            Ok(level[0])
        }
    }
}

/// One ripple block returning (sum bits, carry out).
fn ripple_block(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for bit in 0..a.len() {
        let outs = netlist.add_gate(CellKind::Fa, &[a[bit], b[bit], carry])?;
        sum.push(outs[0]);
        carry = outs[1];
    }
    Ok((sum, carry))
}

/// Builds a two's-complement subtractor `a − b` of width `width` (the result wraps
/// modulo `2^width`).
///
/// Implemented as `a + ~b + 1` with an inverter row and a ripple carry chain.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn subtract(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    width: usize,
) -> Result<Vec<NetId>, NetlistError> {
    let a = zero_extend(netlist, a, width);
    let b = zero_extend(netlist, b, width);
    let b_inverted = crate::invert_word(netlist, &b)?;
    let one = netlist.constant(true);
    let mut sum = ripple_add(netlist, &a, &b_inverted, Some(one))?;
    sum.truncate(width);
    Ok(sum)
}

/// Builds a two's-complement negator `−a` of width `width`.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn negate(
    netlist: &mut Netlist,
    a: &[NetId],
    width: usize,
) -> Result<Vec<NetId>, NetlistError> {
    let zero = vec![netlist.constant(false); width];
    subtract(netlist, &zero, a, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::{Word, WordMap};
    use dpsyn_sim::Simulator;
    use std::collections::BTreeMap;

    type AdderFn =
        fn(&mut Netlist, &[NetId], &[NetId], Option<NetId>) -> Result<Vec<NetId>, NetlistError>;

    fn build_adder(width: u32, generator: AdderFn) -> (Netlist, WordMap) {
        let mut netlist = Netlist::new("adder");
        let a: Vec<_> = (0..width)
            .map(|i| netlist.add_input(format!("a{i}")))
            .collect();
        let b: Vec<_> = (0..width)
            .map(|i| netlist.add_input(format!("b{i}")))
            .collect();
        let sum = generator(&mut netlist, &a, &b, None).unwrap();
        for net in &sum {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(
            vec![Word::new("a", a), Word::new("b", b)],
            Word::new("sum", sum),
        );
        (netlist, map)
    }

    fn exhaustive_add_check(width: u32, generator: AdderFn) {
        let (netlist, map) = build_adder(width, generator);
        netlist.validate().unwrap();
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..(1u64 << width) {
            for b in 0..(1u64 << width) {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                values.insert("b".to_string(), b);
                assert_eq!(
                    simulator.evaluate_words(&map, &values),
                    a + b,
                    "{a} + {b} with width {width}"
                );
            }
        }
    }

    #[test]
    fn ripple_adder_is_correct() {
        exhaustive_add_check(4, ripple_add);
        exhaustive_add_check(5, ripple_add);
    }

    #[test]
    fn carry_lookahead_adder_is_correct() {
        exhaustive_add_check(4, carry_lookahead_add);
        exhaustive_add_check(6, carry_lookahead_add);
    }

    #[test]
    fn carry_select_adder_is_correct() {
        exhaustive_add_check(4, carry_select_add);
        exhaustive_add_check(6, carry_select_add);
    }

    #[test]
    fn adders_handle_unequal_widths() {
        let mut netlist = Netlist::new("uneven");
        let a: Vec<_> = (0..5).map(|i| netlist.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..2).map(|i| netlist.add_input(format!("b{i}"))).collect();
        let sum = ripple_add(&mut netlist, &a, &b, None).unwrap();
        for net in &sum {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(
            vec![Word::new("a", a), Word::new("b", b)],
            Word::new("sum", sum),
        );
        let simulator = Simulator::compile(&netlist).unwrap();
        let mut values = BTreeMap::new();
        values.insert("a".to_string(), 29u64);
        values.insert("b".to_string(), 3u64);
        assert_eq!(simulator.evaluate_words(&map, &values), 32);
    }

    #[test]
    fn adder_with_carry_in() {
        let mut netlist = Netlist::new("cin");
        let a: Vec<_> = (0..3).map(|i| netlist.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| netlist.add_input(format!("b{i}"))).collect();
        let one = netlist.constant(true);
        let sum = ripple_add(&mut netlist, &a, &b, Some(one)).unwrap();
        for net in &sum {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(
            vec![Word::new("a", a), Word::new("b", b)],
            Word::new("sum", sum),
        );
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                values.insert("b".to_string(), b);
                assert_eq!(simulator.evaluate_words(&map, &values), a + b + 1);
            }
        }
    }

    #[test]
    fn subtractor_wraps_modulo_width() {
        let width = 4usize;
        let mut netlist = Netlist::new("sub");
        let a: Vec<_> = (0..width)
            .map(|i| netlist.add_input(format!("a{i}")))
            .collect();
        let b: Vec<_> = (0..width)
            .map(|i| netlist.add_input(format!("b{i}")))
            .collect();
        let difference = subtract(&mut netlist, &a, &b, width).unwrap();
        assert_eq!(difference.len(), width);
        for net in &difference {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(
            vec![Word::new("a", a), Word::new("b", b)],
            Word::new("diff", difference),
        );
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                values.insert("b".to_string(), b);
                assert_eq!(
                    simulator.evaluate_words(&map, &values),
                    (a.wrapping_sub(b)) & 0xF
                );
            }
        }
    }

    #[test]
    fn negator_is_twos_complement() {
        let width = 3usize;
        let mut netlist = Netlist::new("neg");
        let a: Vec<_> = (0..width)
            .map(|i| netlist.add_input(format!("a{i}")))
            .collect();
        let negated = negate(&mut netlist, &a, width).unwrap();
        for net in &negated {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(vec![Word::new("a", a)], Word::new("neg", negated));
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..8u64 {
            let mut values = BTreeMap::new();
            values.insert("a".to_string(), a);
            assert_eq!(simulator.evaluate_words(&map, &values), (8 - a) % 8);
        }
    }

    #[test]
    fn carry_lookahead_trades_area_for_simple_gate_carries() {
        let (ripple, _) = build_adder(16, ripple_add);
        let (lookahead, _) = build_adder(16, carry_lookahead_add);
        // The lookahead network needs more gates than the ripple chain ...
        assert!(lookahead.cell_count() > ripple.cell_count());
        // ... but is built from simple AND/OR/XOR gates rather than chained full adders,
        // so its worst path through cheap gates is faster under a real delay model (the
        // timing-level comparison lives in the baselines crate).
        assert_eq!(lookahead.count_kind(CellKind::Fa), 0);
        assert!(lookahead.count_kind(CellKind::Or2) > 0);
    }
}
