//! Word-level multiplier generators.

use crate::adder::ripple_add;
use crate::compressor::reduce_columns_wallace;
use dpsyn_netlist::{CellKind, NetId, Netlist, NetlistError};

/// Generates the partial-product matrix of `a × b`: one column per output bit weight,
/// each column holding the AND of the contributing bit pairs.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn partial_products(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<Vec<NetId>>, NetlistError> {
    let width = a.len() + b.len();
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width.max(1)];
    for (i, a_bit) in a.iter().enumerate() {
        for (j, b_bit) in b.iter().enumerate() {
            let product = netlist.add_gate(CellKind::And2, &[*a_bit, *b_bit])?[0];
            columns[i + j].push(product);
        }
    }
    Ok(columns)
}

/// Builds a carry-propagate **array multiplier**: partial products are accumulated row
/// by row with ripple-carry adders, the classic "slow but regular" structure a
/// conventional RTL flow would instantiate for small operands.
///
/// Returns the product bits (`a.len() + b.len()` wide).
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
///
/// # Example
/// ```
/// # use std::error::Error;
/// use dpsyn_modules::multiplier::array_multiply;
/// use dpsyn_netlist::Netlist;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut netlist = Netlist::new("mult");
/// let a: Vec<_> = (0..4).map(|i| netlist.add_input(format!("a{i}"))).collect();
/// let b: Vec<_> = (0..4).map(|i| netlist.add_input(format!("b{i}"))).collect();
/// let product = array_multiply(&mut netlist, &a, &b)?;
/// assert_eq!(product.len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn array_multiply(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    if a.is_empty() || b.is_empty() {
        return Ok(vec![netlist.constant(false)]);
    }
    let result_width = a.len() + b.len();
    // Accumulate row by row: acc += (a AND b_j) << j.
    let mut accumulator: Vec<NetId> = Vec::new();
    for (j, b_bit) in b.iter().enumerate() {
        let mut row: Vec<NetId> = vec![netlist.constant(false); j];
        for a_bit in a {
            row.push(netlist.add_gate(CellKind::And2, &[*a_bit, *b_bit])?[0]);
        }
        accumulator = if accumulator.is_empty() {
            row
        } else {
            let mut sum = ripple_add(netlist, &accumulator, &row, None)?;
            sum.truncate(result_width);
            sum
        };
    }
    accumulator.resize(result_width, netlist.constant(false));
    Ok(accumulator)
}

/// Builds a **Wallace-tree multiplier**: the partial-product columns are compressed with
/// the classic fixed (arrival-blind, row-ordered) Wallace reduction down to two rows,
/// which a ripple-carry adder then sums.
///
/// This is exactly the "conventional application of the Wallace scheme ... assuming
/// equal signal arrival times" that the paper generalises; it serves both as a fast
/// multiplier module for the conventional baseline and as the per-operation reference
/// point against the global FA-tree of `dpsyn-core`.
///
/// Returns the product bits (`a.len() + b.len()` wide).
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn wallace_multiply(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    if a.is_empty() || b.is_empty() {
        return Ok(vec![netlist.constant(false)]);
    }
    let result_width = a.len() + b.len();
    let columns = partial_products(netlist, a, b)?;
    let (row_a, row_b) = reduce_columns_wallace(netlist, columns)?;
    let mut product = ripple_add(netlist, &row_a, &row_b, None)?;
    product.truncate(result_width);
    product.resize(result_width, netlist.constant(false));
    Ok(product)
}

/// Builds a shift-and-add **constant multiplier** `a × constant` of width `width`
/// (result wraps modulo `2^width`): one shifted copy of `a` per set bit of the constant,
/// accumulated with ripple adders.
///
/// # Errors
///
/// Returns an error if the operand nets do not belong to `netlist`.
pub fn constant_multiply(
    netlist: &mut Netlist,
    a: &[NetId],
    constant: u64,
    width: usize,
) -> Result<Vec<NetId>, NetlistError> {
    let mut accumulator: Option<Vec<NetId>> = None;
    for shift in 0..width {
        if (constant >> shift) & 1 == 0 {
            continue;
        }
        let mut shifted: Vec<NetId> = vec![netlist.constant(false); shift];
        shifted.extend(a.iter().copied());
        shifted.truncate(width);
        accumulator = Some(match accumulator {
            None => shifted,
            Some(acc) => {
                let mut sum = ripple_add(netlist, &acc, &shifted, None)?;
                sum.truncate(width);
                sum
            }
        });
    }
    let mut result = accumulator.unwrap_or_else(|| vec![netlist.constant(false)]);
    result.resize(width, netlist.constant(false));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::{Word, WordMap};
    use dpsyn_sim::Simulator;
    use std::collections::BTreeMap;

    type MultiplierFn = fn(&mut Netlist, &[NetId], &[NetId]) -> Result<Vec<NetId>, NetlistError>;

    fn build_multiplier(width_a: u32, width_b: u32, generator: MultiplierFn) -> (Netlist, WordMap) {
        let mut netlist = Netlist::new("mult");
        let a: Vec<_> = (0..width_a)
            .map(|i| netlist.add_input(format!("a{i}")))
            .collect();
        let b: Vec<_> = (0..width_b)
            .map(|i| netlist.add_input(format!("b{i}")))
            .collect();
        let product = generator(&mut netlist, &a, &b).unwrap();
        for net in &product {
            netlist.mark_output(*net);
        }
        let map = WordMap::new(
            vec![Word::new("a", a), Word::new("b", b)],
            Word::new("p", product),
        );
        (netlist, map)
    }

    fn exhaustive_multiply_check(width_a: u32, width_b: u32, generator: MultiplierFn) {
        let (netlist, map) = build_multiplier(width_a, width_b, generator);
        netlist.validate().unwrap();
        let simulator = Simulator::compile(&netlist).unwrap();
        for a in 0..(1u64 << width_a) {
            for b in 0..(1u64 << width_b) {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                values.insert("b".to_string(), b);
                assert_eq!(
                    simulator.evaluate_words(&map, &values),
                    a * b,
                    "{a} * {b} ({width_a}x{width_b})"
                );
            }
        }
    }

    #[test]
    fn array_multiplier_is_correct() {
        exhaustive_multiply_check(3, 3, array_multiply);
        exhaustive_multiply_check(4, 2, array_multiply);
    }

    #[test]
    fn wallace_multiplier_is_correct() {
        exhaustive_multiply_check(3, 3, wallace_multiply);
        exhaustive_multiply_check(4, 4, wallace_multiply);
        exhaustive_multiply_check(2, 5, wallace_multiply);
    }

    #[test]
    fn wallace_is_structurally_shallower_than_array() {
        let (array, _) = build_multiplier(8, 8, array_multiply);
        let (wallace, _) = build_multiplier(8, 8, wallace_multiply);
        assert!(
            wallace.logic_depth() < array.logic_depth(),
            "wallace depth {} vs array depth {}",
            wallace.logic_depth(),
            array.logic_depth()
        );
    }

    #[test]
    fn partial_product_count_matches_widths() {
        let mut netlist = Netlist::new("pp");
        let a: Vec<_> = (0..5).map(|i| netlist.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| netlist.add_input(format!("b{i}"))).collect();
        let columns = partial_products(&mut netlist, &a, &b).unwrap();
        assert_eq!(columns.len(), 8);
        let total: usize = columns.iter().map(Vec::len).sum();
        assert_eq!(total, 15);
        // The middle columns are the tallest.
        assert_eq!(columns.iter().map(Vec::len).max(), Some(3));
    }

    #[test]
    fn constant_multiplier_is_correct() {
        for constant in [0u64, 1, 2, 5, 10, 13] {
            let width = 8usize;
            let mut netlist = Netlist::new("cmul");
            let a: Vec<_> = (0..4).map(|i| netlist.add_input(format!("a{i}"))).collect();
            let product = constant_multiply(&mut netlist, &a, constant, width).unwrap();
            assert_eq!(product.len(), width);
            for net in &product {
                netlist.mark_output(*net);
            }
            let map = WordMap::new(vec![Word::new("a", a)], Word::new("p", product));
            let simulator = Simulator::compile(&netlist).unwrap();
            for a in 0..16u64 {
                let mut values = BTreeMap::new();
                values.insert("a".to_string(), a);
                assert_eq!(
                    simulator.evaluate_words(&map, &values),
                    (a * constant) & 0xFF,
                    "{a} * {constant}"
                );
            }
        }
    }

    #[test]
    fn empty_operands_produce_zero() {
        let mut netlist = Netlist::new("empty");
        let a: Vec<NetId> = Vec::new();
        let b: Vec<_> = (0..2).map(|i| netlist.add_input(format!("b{i}"))).collect();
        let product = array_multiply(&mut netlist, &a, &b).unwrap();
        assert_eq!(product.len(), 1);
        let product = wallace_multiply(&mut netlist, &b, &a).unwrap();
        assert_eq!(product.len(), 1);
    }
}
