//! Parameterised word-level arithmetic module generators.
//!
//! The conventional RTL-synthesis baseline of the DAC 2000 reproduction binds every
//! word-level operation to a closed module (an adder or a multiplier). This crate
//! generates those modules as bit-level netlists so that the same timing, power and
//! simulation infrastructure applies to the baseline and to the paper's FA-tree
//! designs.
//!
//! All generators operate on an existing [`Netlist`], take their operands as slices of
//! bit nets (LSB first) and return the result bits, so they compose freely; the
//! [`builders`] module wraps the most common ones into standalone netlists with a
//! [`WordMap`] interface for tests and examples.
//!
//! Provided generators:
//!
//! * [`adder::ripple_add`] — ripple-carry adder;
//! * [`adder::carry_lookahead_add`] — 4-bit-block carry-lookahead adder;
//! * [`adder::carry_select_add`] — carry-select adder (duplicated blocks + mux);
//! * [`adder::subtract`] / [`adder::negate`] — two's-complement subtraction / negation;
//! * [`multiplier::array_multiply`] — ripple-carry array multiplier;
//! * [`multiplier::wallace_multiply`] — Wallace-tree multiplier (fixed, arrival-blind
//!   column compression as in the classic scheme the paper contrasts against);
//! * [`multiplier::constant_multiply`] — shift-and-add constant multiplier;
//! * [`compressor::carry_save_row`] — word-level 3:2 carry-save compressor row, the
//!   building block of the CSA_OPT baseline.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_modules::builders;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let (netlist, map) = builders::ripple_adder(8)?;
//! assert_eq!(map.output().width(), 9);
//! assert!(netlist.validate().is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod builders;
pub mod compressor;
pub mod multiplier;

use dpsyn_netlist::{NetId, Netlist, NetlistError};

/// Pads `bits` with constant-zero nets up to `width` (no-op when already wide enough).
///
/// This is the standard way generators equalise operand widths before combining them.
pub fn zero_extend(netlist: &mut Netlist, bits: &[NetId], width: usize) -> Vec<NetId> {
    let mut extended = bits.to_vec();
    while extended.len() < width {
        extended.push(netlist.constant(false));
    }
    extended
}

/// Inverts every bit of a word, returning the complemented bits.
///
/// # Errors
///
/// Returns an error if the nets do not belong to `netlist`.
pub fn invert_word(netlist: &mut Netlist, bits: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
    bits.iter()
        .map(|bit| {
            netlist
                .add_gate(dpsyn_netlist::CellKind::Not, &[*bit])
                .map(|outs| outs[0])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::Netlist;

    #[test]
    fn zero_extend_pads_with_constants() {
        let mut netlist = Netlist::new("pad");
        let a = netlist.add_input("a");
        let padded = zero_extend(&mut netlist, &[a], 4);
        assert_eq!(padded.len(), 4);
        assert_eq!(padded[0], a);
        // The three padding bits share the same constant-zero net.
        assert_eq!(padded[1], padded[2]);
    }

    #[test]
    fn invert_word_adds_one_inverter_per_bit() {
        let mut netlist = Netlist::new("inv");
        let bits: Vec<_> = (0..3).map(|i| netlist.add_input(format!("a{i}"))).collect();
        let inverted = invert_word(&mut netlist, &bits).unwrap();
        assert_eq!(inverted.len(), 3);
        assert_eq!(netlist.count_kind(dpsyn_netlist::CellKind::Not), 3);
    }
}
