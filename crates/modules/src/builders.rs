//! Standalone module builders: wrap the generators into complete netlists with a
//! word-level interface, for tests, examples and the conventional baseline.

use crate::{adder, multiplier};
use dpsyn_netlist::{NetId, Netlist, NetlistError, Word, WordMap};

/// The adder architectures a conventional RTL flow can bind an addition to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdderKind {
    /// Ripple-carry chain of full adders (small, slow).
    Ripple,
    /// Carry-lookahead adder with 4-bit blocks (fast, large).
    CarryLookahead,
    /// Carry-select adder with 4-bit blocks (fast, largest).
    CarrySelect,
}

impl AdderKind {
    /// All adder kinds, in increasing order of expected speed.
    pub fn all() -> [AdderKind; 3] {
        [
            AdderKind::Ripple,
            AdderKind::CarryLookahead,
            AdderKind::CarrySelect,
        ]
    }

    /// Generates this adder inside an existing netlist and returns the sum bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the operand nets do not belong to `netlist`.
    pub fn generate(
        self,
        netlist: &mut Netlist,
        a: &[NetId],
        b: &[NetId],
        cin: Option<NetId>,
    ) -> Result<Vec<NetId>, NetlistError> {
        match self {
            AdderKind::Ripple => adder::ripple_add(netlist, a, b, cin),
            AdderKind::CarryLookahead => adder::carry_lookahead_add(netlist, a, b, cin),
            AdderKind::CarrySelect => adder::carry_select_add(netlist, a, b, cin),
        }
    }
}

/// The multiplier architectures a conventional RTL flow can bind a multiplication to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// Carry-propagate array multiplier (small, slow).
    Array,
    /// Wallace-tree multiplier (fast, larger).
    Wallace,
}

impl MultiplierKind {
    /// All multiplier kinds.
    pub fn all() -> [MultiplierKind; 2] {
        [MultiplierKind::Array, MultiplierKind::Wallace]
    }

    /// Generates this multiplier inside an existing netlist and returns the product bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the operand nets do not belong to `netlist`.
    pub fn generate(
        self,
        netlist: &mut Netlist,
        a: &[NetId],
        b: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        match self {
            MultiplierKind::Array => multiplier::array_multiply(netlist, a, b),
            MultiplierKind::Wallace => multiplier::wallace_multiply(netlist, a, b),
        }
    }
}

fn input_word(netlist: &mut Netlist, name: &str, width: u32) -> (Word, Vec<NetId>) {
    let bits: Vec<NetId> = (0..width)
        .map(|bit| netlist.add_input(format!("{name}[{bit}]")))
        .collect();
    (Word::new(name, bits.clone()), bits)
}

fn finish(netlist: &mut Netlist, result: &[NetId]) {
    for net in result {
        netlist.mark_output(*net);
    }
}

/// Builds a standalone `width`-bit ripple-carry adder `sum = a + b`.
///
/// # Errors
///
/// Propagates netlist construction errors (which cannot occur for valid widths).
pub fn ripple_adder(width: u32) -> Result<(Netlist, WordMap), NetlistError> {
    standalone_adder(width, AdderKind::Ripple)
}

/// Builds a standalone `width`-bit adder of the requested architecture.
///
/// # Errors
///
/// Propagates netlist construction errors (which cannot occur for valid widths).
pub fn standalone_adder(width: u32, kind: AdderKind) -> Result<(Netlist, WordMap), NetlistError> {
    let mut netlist = Netlist::new(format!("{kind:?}_adder_{width}").to_lowercase());
    let (word_a, a) = input_word(&mut netlist, "a", width);
    let (word_b, b) = input_word(&mut netlist, "b", width);
    let sum = kind.generate(&mut netlist, &a, &b, None)?;
    finish(&mut netlist, &sum);
    let map = WordMap::new(vec![word_a, word_b], Word::new("sum", sum));
    Ok((netlist, map))
}

/// Builds a standalone `width × width` multiplier of the requested architecture.
///
/// # Errors
///
/// Propagates netlist construction errors (which cannot occur for valid widths).
pub fn standalone_multiplier(
    width: u32,
    kind: MultiplierKind,
) -> Result<(Netlist, WordMap), NetlistError> {
    let mut netlist = Netlist::new(format!("{kind:?}_multiplier_{width}").to_lowercase());
    let (word_a, a) = input_word(&mut netlist, "a", width);
    let (word_b, b) = input_word(&mut netlist, "b", width);
    let product = kind.generate(&mut netlist, &a, &b)?;
    finish(&mut netlist, &product);
    let map = WordMap::new(vec![word_a, word_b], Word::new("p", product));
    Ok((netlist, map))
}

/// Builds a standalone `width`-bit subtractor `diff = a − b` (mod `2^width`).
///
/// # Errors
///
/// Propagates netlist construction errors (which cannot occur for valid widths).
pub fn standalone_subtractor(width: u32) -> Result<(Netlist, WordMap), NetlistError> {
    let mut netlist = Netlist::new(format!("subtractor_{width}"));
    let (word_a, a) = input_word(&mut netlist, "a", width);
    let (word_b, b) = input_word(&mut netlist, "b", width);
    let difference = adder::subtract(&mut netlist, &a, &b, width as usize)?;
    finish(&mut netlist, &difference);
    let map = WordMap::new(vec![word_a, word_b], Word::new("diff", difference));
    Ok((netlist, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_sim::Simulator;
    use std::collections::BTreeMap;

    #[test]
    fn every_adder_kind_builds_and_adds() {
        for kind in AdderKind::all() {
            let (netlist, map) = standalone_adder(5, kind).unwrap();
            netlist.validate().unwrap();
            let simulator = Simulator::compile(&netlist).unwrap();
            let mut values = BTreeMap::new();
            values.insert("a".to_string(), 19u64);
            values.insert("b".to_string(), 27u64);
            assert_eq!(simulator.evaluate_words(&map, &values), 46, "{kind:?}");
        }
    }

    #[test]
    fn every_multiplier_kind_builds_and_multiplies() {
        for kind in MultiplierKind::all() {
            let (netlist, map) = standalone_multiplier(4, kind).unwrap();
            netlist.validate().unwrap();
            let simulator = Simulator::compile(&netlist).unwrap();
            let mut values = BTreeMap::new();
            values.insert("a".to_string(), 13u64);
            values.insert("b".to_string(), 11u64);
            assert_eq!(simulator.evaluate_words(&map, &values), 143, "{kind:?}");
        }
    }

    #[test]
    fn subtractor_builder_wraps() {
        let (netlist, map) = standalone_subtractor(6).unwrap();
        netlist.validate().unwrap();
        let simulator = Simulator::compile(&netlist).unwrap();
        let mut values = BTreeMap::new();
        values.insert("a".to_string(), 5u64);
        values.insert("b".to_string(), 9u64);
        assert_eq!(
            simulator.evaluate_words(&map, &values),
            (5u64.wrapping_sub(9)) & 0x3F
        );
    }

    #[test]
    fn builder_netlists_emit_verilog() {
        let (netlist, _) = standalone_adder(4, AdderKind::CarryLookahead).unwrap();
        let verilog = netlist.to_verilog();
        assert!(verilog.contains("module"));
        assert!(verilog.contains("a_0_"));
    }
}
