//! Long-lived exploration service over a Unix domain socket.
//!
//! `explore --serve <socket>` (see the `dpsyn-bench` binary) turns the exploration
//! engine into a server: clients connect to the socket and speak a newline-delimited
//! JSON protocol — one request line per [`ExplorationSpec`], one response line back —
//! while every request shares the **same** persistent [`ResultStore`], so repeated
//! or overlapping sweeps from any number of clients collapse to warm lookups.
//!
//! # Protocol
//!
//! A request is one JSON object on one line:
//!
//! ```json
//! {"sources":[{"design":"x_squared"},{"sum":3}],"widths":[4],
//!  "skews":["keep",2.0],"biases":["keep"],
//!  "flows":["conventional","csa_opt",{"fa_random":11}],
//!  "seed":7,"threads":2,"overpartition":4,"steal":"busiest","tech":"lcbg10pv_like",
//!  "sim_activity":{"seed":11,"vectors":4096}}
//! ```
//!
//! Every field maps straight onto the [`ExplorationSpec`] builder; unknown fields
//! are rejected (a typo must not silently change the sweep). The optional
//! `sim_activity` object requests the simulated switching metric
//! ([`SimActivity`]): it must carry exactly an integer `seed` and a `vectors`
//! count, and any malformed combination (missing half, unknown extra field, a
//! vector count below 2) is rejected with a typed reason. `{"shutdown":true}`
//! asks the server to stop: it finishes every in-flight request, takes no new
//! connections, flushes the store one final time and removes the socket file.
//!
//! The response is one JSON object on one line:
//!
//! ```json
//! {"ok":true,"jobs":24,"points":24,"store_hits":18,"summary":"..."}
//! ```
//!
//! with `summary` the full [`render_summary`](crate::ExplorationResults::render_summary)
//! text (byte-identical to a batch run of the same spec), `store` the store state
//! (`"ok"`, `"degraded"` or `"none"`) and `quarantined` the count of jobs whose
//! every evaluation attempt panicked; or `{"ok":false,"error":"..."}` when the
//! request is malformed or the run fails. A request the server *sheds* (rather
//! than fails) additionally carries a machine-readable `reject` kind:
//! `{"ok":false,"reject":"overloaded","error":"..."}` — kinds are `overloaded`
//! (the in-flight admission cap is reached), `oversized` (a request line exceeds
//! the byte cap) and `deadline` (a partial line sat unfinished past the read
//! deadline; the latter two also close the connection). `{"status":{}}` bypasses
//! admission and answers the server's [`ServeStatus`] — request/rejection
//! counters, in-flight sweeps, queue depth, store hit-rate and store health — as
//! `{"ok":true,"status":{...}}`. Responses are produced by [`ServeResponse`]'s
//! writer and parsed back by [`ServeResponse::parse`], so clients need no JSON
//! library either.
//!
//! # Concurrency and the shared store
//!
//! Each connection runs on its own thread. A request snapshots the store under a
//! brief lock, explores against the immutable snapshot (no lock held during the
//! sweep — concurrent requests run truly in parallel), then merges its fresh
//! records back and flushes under the lock. Two overlapping requests therefore
//! cannot corrupt the store, and whichever finishes second gets the first one's
//! records on its next request.
//!
//! # Degrade, don't die
//!
//! The server treats its store as an accelerator, never as a dependency. When the
//! memo file cannot be loaded at startup, it serves from an empty in-memory store
//! that *keeps* the configured path ([`ResultStore::empty_at`]); when a flush
//! fails, the request still answers with its computed results and the response
//! (and `status`) flags `"store":"degraded"`. Every later flush retries the real
//! file, so the store heals the moment the path does — the `tests/fault_injection.rs`
//! wall drives both transitions with an injected store outage.

use crate::engine::explore_with_store;
use crate::error::ExploreError;
use crate::faults::FaultPlan;
use crate::metrics::{ServeMetrics, ServeStatus};
use crate::spec::{BiasProfile, ExplorationSpec, SimActivity, SkewProfile, StealPolicy};
use crate::store::ResultStore;
use dpsyn_baselines::Flow;
use dpsyn_designs::Design;
use dpsyn_tech::TechLibrary;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long the accept loop and connection reads sleep/block between shutdown
/// checks. Short enough for prompt drain, long enough to stay off the CPU.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Configuration of one [`serve`] call. Build the common shape with
/// [`ServeConfig::new`] and override fields as needed; the robustness knobs
/// (line cap, admission cap, deadlines) default to generous production values.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix domain socket to listen on (an existing socket file at
    /// this path is replaced).
    pub socket: PathBuf,
    /// Memo file of the shared persistent store; `None` serves from a process-
    /// lifetime in-memory store instead.
    pub store_path: Option<PathBuf>,
    /// Longest accepted request line in bytes (newline excluded). A longer line
    /// — or a lineless byte stream growing past the cap — is rejected with a
    /// typed `oversized` response and the connection is closed, bounding the
    /// memory a garbage-spewing client can pin.
    pub max_line_bytes: usize,
    /// Sweeps allowed to execute concurrently. The request that would exceed the
    /// cap is shed immediately with a typed `overloaded` response (the client
    /// retries; the server never queues unbounded work).
    pub max_in_flight: usize,
    /// How long a *partial* request line may sit without its newline before the
    /// connection is rejected with a typed `deadline` response — a slow-loris
    /// client cannot park forever.
    pub read_deadline: Duration,
    /// Write timeout on every response, so a client that stops draining cannot
    /// wedge a connection thread.
    pub write_deadline: Duration,
    /// Fault-injection plan threaded through the server's store (load and every
    /// flush) and every sweep it runs; `None` in production. See [`crate::faults`].
    pub faults: Option<Arc<FaultPlan>>,
}

impl ServeConfig {
    /// A config listening on `socket` with no store file and default robustness
    /// knobs: 1 MiB line cap, 8 concurrent sweeps, 10 s read/write deadlines.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            store_path: None,
            max_line_bytes: 1 << 20,
            max_in_flight: 8,
            read_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            faults: None,
        }
    }
}

/// Everything a connection thread needs, shared once per [`serve`] call.
struct Shared {
    store: Mutex<ResultStore>,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    config: ServeConfig,
    /// Whether a store file is configured (`"none"` vs `"ok"`/`"degraded"` in
    /// responses).
    store_attached: bool,
}

/// One parsed response line of the protocol; see the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct ServeResponse {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Jobs the request's matrix enumerated.
    pub jobs: usize,
    /// Points the exploration returned.
    pub points: usize,
    /// Jobs served straight from the shared store.
    pub store_hits: usize,
    /// Jobs quarantined after every evaluation attempt panicked.
    pub quarantined: usize,
    /// Store state of the answering server: `"ok"`, `"degraded"` (flushes
    /// failing, compute-through) or `"none"` (no store file configured).
    pub store: String,
    /// The rendered summary (byte-identical to a batch run of the same spec).
    pub summary: String,
    /// The error message when `ok` is false.
    pub error: String,
    /// Machine-readable shed kind when the server rejected rather than failed
    /// the request: `"overloaded"`, `"oversized"` or `"deadline"` (empty on
    /// failures and successes).
    pub reject: String,
    /// Whether this response acknowledges a shutdown request.
    pub shutdown: bool,
    /// The server status snapshot, on `{"status":{}}` responses only.
    pub status: Option<ServeStatus>,
}

impl ServeResponse {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Serve`] when the line is not a response object.
    pub fn parse(line: &str) -> Result<ServeResponse, ExploreError> {
        let value = parse_json(line).map_err(|message| ExploreError::Serve {
            message: format!("malformed response line: {message}"),
        })?;
        let Json::Object(fields) = value else {
            return Err(ExploreError::Serve {
                message: "response line is not a JSON object".to_string(),
            });
        };
        let mut response = ServeResponse::default();
        for (key, value) in &fields {
            match key.as_str() {
                "ok" => response.ok = value.as_bool().unwrap_or(false),
                "jobs" => response.jobs = value.as_usize().unwrap_or(0),
                "points" => response.points = value.as_usize().unwrap_or(0),
                "store_hits" => response.store_hits = value.as_usize().unwrap_or(0),
                "quarantined" => response.quarantined = value.as_usize().unwrap_or(0),
                "store" => response.store = value.as_str().unwrap_or("").to_string(),
                "summary" => response.summary = value.as_str().unwrap_or("").to_string(),
                "error" => response.error = value.as_str().unwrap_or("").to_string(),
                "reject" => response.reject = value.as_str().unwrap_or("").to_string(),
                "shutdown" => response.shutdown = value.as_bool().unwrap_or(false),
                "status" => {
                    if let Json::Object(entries) = value {
                        response.status = Some(parse_status(entries));
                    }
                }
                _ => {}
            }
        }
        Ok(response)
    }

    fn render(&self) -> String {
        if self.shutdown {
            return "{\"ok\":true,\"shutdown\":true}".to_string();
        }
        if let Some(status) = &self.status {
            return format!(
                "{{\"ok\":true,\"status\":{{\"requests\":{},\"completed\":{},\
                 \"in_flight\":{},\"queue_depth\":{},\"rejected_overload\":{},\
                 \"rejected_oversized\":{},\"rejected_deadline\":{},\"jobs\":{},\
                 \"store_hits\":{},\"hit_rate\":{:.6},\"store\":\"{}\",\
                 \"records\":{},\"damaged_lines\":{},\"quarantined\":{}}}}}",
                status.requests,
                status.completed,
                status.in_flight,
                status.queue_depth,
                status.rejected_overload,
                status.rejected_oversized,
                status.rejected_deadline,
                status.jobs,
                status.store_hits,
                status.hit_rate,
                escape_json(&status.store),
                status.records,
                status.damaged_lines,
                status.quarantined,
            );
        }
        if self.ok {
            format!(
                "{{\"ok\":true,\"jobs\":{},\"points\":{},\"store_hits\":{},\
                 \"quarantined\":{},\"store\":\"{}\",\"summary\":\"{}\"}}",
                self.jobs,
                self.points,
                self.store_hits,
                self.quarantined,
                escape_json(&self.store),
                escape_json(&self.summary)
            )
        } else if self.reject.is_empty() {
            format!(
                "{{\"ok\":false,\"error\":\"{}\"}}",
                escape_json(&self.error)
            )
        } else {
            format!(
                "{{\"ok\":false,\"reject\":\"{}\",\"error\":\"{}\"}}",
                escape_json(&self.reject),
                escape_json(&self.error)
            )
        }
    }
}

/// Decodes the `status` object of a status response.
fn parse_status(entries: &[(String, Json)]) -> ServeStatus {
    let mut status = ServeStatus::default();
    for (key, value) in entries {
        match key.as_str() {
            "requests" => status.requests = value.as_u64().unwrap_or(0),
            "completed" => status.completed = value.as_u64().unwrap_or(0),
            "in_flight" => status.in_flight = value.as_u64().unwrap_or(0),
            "queue_depth" => status.queue_depth = value.as_u64().unwrap_or(0),
            "rejected_overload" => status.rejected_overload = value.as_u64().unwrap_or(0),
            "rejected_oversized" => status.rejected_oversized = value.as_u64().unwrap_or(0),
            "rejected_deadline" => status.rejected_deadline = value.as_u64().unwrap_or(0),
            "jobs" => status.jobs = value.as_u64().unwrap_or(0),
            "store_hits" => status.store_hits = value.as_u64().unwrap_or(0),
            "hit_rate" => status.hit_rate = value.as_number().unwrap_or(0.0),
            "store" => status.store = value.as_str().unwrap_or("").to_string(),
            "records" => status.records = value.as_u64().unwrap_or(0),
            "damaged_lines" => status.damaged_lines = value.as_u64().unwrap_or(0),
            "quarantined" => status.quarantined = value.as_u64().unwrap_or(0),
            _ => {}
        }
    }
    status
}

fn serve_error(message: impl std::fmt::Display) -> ExploreError {
    ExploreError::Serve {
        message: message.to_string(),
    }
}

/// A poisoned store lock only means another request thread panicked *between*
/// merge steps; the store itself is always in a consistent state (merge is
/// per-record), so serving continues with the data as-is.
fn lock_store(store: &Mutex<ResultStore>) -> MutexGuard<'_, ResultStore> {
    store
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs the exploration server until a client sends `{"shutdown":true}`: binds the
/// socket, serves each connection on its own thread against the shared store, then
/// drains every in-flight request, flushes the store and removes the socket file.
///
/// The server **degrades instead of dying**: an unloadable store file starts it
/// in degraded compute-through mode ([`ResultStore::empty_at`]), and the final
/// flush is best-effort — its failure is reported on stderr, never as an error
/// (the computed answers were already delivered to the clients).
///
/// # Errors
///
/// Returns [`ExploreError::Serve`] when the socket cannot be bound. Per-request
/// failures are reported to the requesting client, never here.
pub fn serve(config: &ServeConfig) -> Result<(), ExploreError> {
    let mut degraded = false;
    let store = match &config.store_path {
        Some(path) => match ResultStore::load_with_faults(path, config.faults.clone()) {
            Ok(store) => store,
            Err(error) => {
                // Degraded startup: keep answering from an empty store that
                // retains the path, so a later successful flush heals it.
                eprintln!("explore-serve: store load failed, serving degraded: {error}");
                degraded = true;
                ResultStore::empty_at(path, config.faults.clone())
            }
        },
        None => ResultStore::in_memory(),
    };
    let shared = Arc::new(Shared {
        store: Mutex::new(store),
        metrics: ServeMetrics::new(degraded),
        shutdown: AtomicBool::new(false),
        store_attached: config.store_path.is_some(),
        config: config.clone(),
    });
    // Replace a stale socket file from a previous, unclean shutdown.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket).map_err(|error| {
        serve_error(format!(
            "cannot bind socket `{}`: {error}",
            config.socket.display()
        ))
    })?;
    listener.set_nonblocking(true).map_err(serve_error)?;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                }));
            }
            Err(error) if error.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient accept failures (e.g. a client vanishing mid-handshake)
            // must not kill a long-lived server.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
        // Reap finished connection threads as we go.
        let (finished, running): (Vec<_>, Vec<_>) = handlers
            .into_iter()
            .partition(std::thread::JoinHandle::is_finished);
        for handle in finished {
            let _ = handle.join();
        }
        handlers = running;
    }
    // Graceful shutdown: drain every in-flight request before the final flush.
    for handle in handlers {
        let _ = handle.join();
    }
    if let Err(error) = lock_store(&shared.store).flush() {
        eprintln!("explore-serve: final store flush failed: {error}");
    }
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

/// Serves one connection: accumulates bytes into a line buffer (a read timeout
/// must not lose a partial line, so this does its own splitting instead of
/// `BufRead::read_line`), answers each complete request line, and leaves when the
/// peer closes, the server shuts down, a line exceeds the configured byte cap
/// (typed `oversized` reject), or a partial line outlives the read deadline
/// (typed `deadline` reject).
fn handle_connection(mut stream: UnixStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(shared.config.write_deadline));
    let _connection = shared.metrics.connection_guard();
    let mut buffer: Vec<u8> = Vec::new();
    // When the first byte of a still-incomplete line arrived; `None` while the
    // buffer is empty. The read deadline is measured from here.
    let mut partial_since: Option<Instant> = None;
    let mut chunk = [0u8; 4096];
    let respond = |stream: &mut UnixStream, response: &ServeResponse| {
        let rendered = response.render();
        stream.write_all(rendered.as_bytes()).is_ok()
            && stream.write_all(b"\n").is_ok()
            && stream.flush().is_ok()
    };
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(read) => {
                if buffer.is_empty() {
                    partial_since = Some(Instant::now());
                }
                buffer.extend_from_slice(&chunk[..read]);
                while let Some(newline) = buffer.iter().position(|&byte| byte == b'\n') {
                    if newline > shared.config.max_line_bytes {
                        shared.metrics.note_oversized();
                        let _ = respond(&mut stream, &reject_oversized(shared));
                        return;
                    }
                    let line: Vec<u8> = buffer.drain(..=newline).collect();
                    let line = String::from_utf8_lossy(&line[..newline]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    if !respond(&mut stream, &handle_request(&line, shared)) {
                        return;
                    }
                }
                // A lineless stream past the cap can never become a valid
                // request; stop buffering it.
                if buffer.len() > shared.config.max_line_bytes {
                    shared.metrics.note_oversized();
                    let _ = respond(&mut stream, &reject_oversized(shared));
                    return;
                }
                if buffer.is_empty() {
                    partial_since = None;
                }
            }
            Err(error)
                if error.kind() == ErrorKind::WouldBlock || error.kind() == ErrorKind::TimedOut =>
            {
                // Idle connection; leave once the server is draining.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(since) = partial_since {
                    if !buffer.is_empty() && since.elapsed() > shared.config.read_deadline {
                        shared.metrics.note_deadline();
                        let response = ServeResponse {
                            reject: "deadline".to_string(),
                            error: format!(
                                "request line incomplete after {:?}",
                                shared.config.read_deadline
                            ),
                            ..ServeResponse::default()
                        };
                        let _ = respond(&mut stream, &response);
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

/// The typed response for a request line (or lineless stream) over the byte cap.
fn reject_oversized(shared: &Shared) -> ServeResponse {
    ServeResponse {
        reject: "oversized".to_string(),
        error: format!(
            "request line exceeds {} bytes",
            shared.config.max_line_bytes
        ),
        ..ServeResponse::default()
    }
}

/// The store state string of a response: `"none"` without a store file, else
/// `"degraded"` while flushes are failing, else `"ok"`.
fn store_state(shared: &Shared) -> String {
    if !shared.store_attached {
        "none".to_string()
    } else if shared.metrics.degraded() {
        "degraded".to_string()
    } else {
        "ok".to_string()
    }
}

/// Answers one request line.
fn handle_request(line: &str, shared: &Shared) -> ServeResponse {
    shared.metrics.note_request();
    let fail = |error: String| ServeResponse {
        error,
        ..ServeResponse::default()
    };
    let fields = match parse_json(line) {
        Ok(Json::Object(fields)) => fields,
        Ok(_) => return fail("request line is not a JSON object".to_string()),
        Err(message) => return fail(format!("malformed request: {message}")),
    };
    if let Some(value) = lookup(&fields, "shutdown") {
        if value.as_bool() == Some(true) {
            shared.shutdown.store(true, Ordering::SeqCst);
            return ServeResponse {
                ok: true,
                shutdown: true,
                ..ServeResponse::default()
            };
        }
        return fail("`shutdown` must be `true` when present".to_string());
    }
    // Status bypasses admission: it must answer precisely when the server is
    // too loaded to take sweeps.
    if lookup(&fields, "status").is_some() {
        let health = lock_store(&shared.store).health();
        let status = shared.metrics.snapshot(
            store_state(shared),
            health.records as u64,
            health.damaged_lines as u64,
            health.quarantined as u64,
        );
        return ServeResponse {
            ok: true,
            status: Some(status),
            ..ServeResponse::default()
        };
    }
    // Admission control: shed the sweep with a typed reject instead of queueing
    // unbounded work. The guard holds the in-flight slot for the whole sweep.
    let Some(_slot) = shared.metrics.try_admit(shared.config.max_in_flight) else {
        return ServeResponse {
            reject: "overloaded".to_string(),
            error: format!("{} sweeps already in flight", shared.config.max_in_flight),
            ..ServeResponse::default()
        };
    };
    let mut spec = match build_spec(&fields) {
        Ok(spec) => spec,
        Err(message) => return fail(message),
    };
    // The server's fault plan rides along into the sweep (panic/stall injection
    // for the robustness tests; `None` in production).
    if let Some(plan) = shared.config.faults.clone() {
        spec.faults = Some(plan);
    }
    // Snapshot under a brief lock; the sweep itself runs lock-free so overlapping
    // requests explore in parallel.
    let snapshot = lock_store(&shared.store).clone();
    match explore_with_store(&spec, Some(&snapshot)) {
        Ok((results, stats, fresh)) => {
            let mut guard = lock_store(&shared.store);
            guard.merge(fresh);
            // Compute-through degradation: a failing flush marks the store
            // degraded but the computed results still answer the request —
            // the next successful flush clears the flag.
            match guard.flush() {
                Ok(()) => shared.metrics.set_degraded(false),
                Err(error) => {
                    eprintln!("explore-serve: store flush failed, serving degraded: {error}");
                    shared.metrics.set_degraded(true);
                }
            }
            drop(guard);
            shared
                .metrics
                .note_sweep(spec.jobs().len() as u64, stats.total_store_hits() as u64);
            ServeResponse {
                ok: true,
                jobs: spec.jobs().len(),
                points: results.points().len(),
                store_hits: stats.total_store_hits(),
                quarantined: results.quarantined().len(),
                store: store_state(shared),
                summary: results.render_summary(),
                ..ServeResponse::default()
            }
        }
        Err(error) => fail(error.to_string()),
    }
}

/// The catalog a request's `{"design": name}` sources resolve from.
fn catalog_design(name: &str) -> Option<Design> {
    Some(match name {
        "x_squared" => dpsyn_designs::x_squared(),
        "x_cubed" => dpsyn_designs::x_cubed(),
        "x2_x_y" => dpsyn_designs::x2_x_y(),
        "binomial_square" => dpsyn_designs::binomial_square(),
        "mixed_poly" => dpsyn_designs::mixed_poly(),
        "iir" => dpsyn_designs::iir(),
        "kalman" => dpsyn_designs::kalman(),
        "idct" => dpsyn_designs::idct(),
        "complex_mult" => dpsyn_designs::complex_mult(),
        "serial_adapter" => dpsyn_designs::serial_adapter(),
        _ => return None,
    })
}

fn parse_flow(value: &Json) -> Result<Flow, String> {
    if let Some(name) = value.as_str() {
        return match name {
            "conventional" => Ok(Flow::Conventional),
            "csa_opt" => Ok(Flow::CsaOpt),
            "wallace_fixed" => Ok(Flow::WallaceFixed),
            "fa_aot" => Ok(Flow::FaAot),
            "fa_alp" => Ok(Flow::FaAlp),
            other => Err(format!("unknown flow `{other}`")),
        };
    }
    if let Json::Object(fields) = value {
        if let [(key, seed)] = fields.as_slice() {
            if key == "fa_random" || key == "fa_anneal" {
                let seed = seed
                    .as_u64()
                    .ok_or_else(|| format!("`{key}` takes an integer seed"))?;
                return Ok(match key.as_str() {
                    "fa_random" => Flow::FaRandom(seed),
                    _ => Flow::FaAnneal(seed),
                });
            }
        }
    }
    Err("a flow is a name string, {\"fa_random\": seed} or {\"fa_anneal\": seed}".to_string())
}

/// A skew/bias axis entry: the string `"keep"` or a uniform-range number.
fn parse_profile(value: &Json) -> Result<Option<f64>, String> {
    if value.as_str() == Some("keep") {
        return Ok(None);
    }
    value
        .as_number()
        .map(Some)
        .ok_or_else(|| "a profile is \"keep\" or a number".to_string())
}

/// Builds the [`ExplorationSpec`] a request describes; every field maps onto one
/// builder call and unknown fields are rejected.
fn build_spec(fields: &[(String, Json)]) -> Result<ExplorationSpec, String> {
    let mut builder = ExplorationSpec::builder();
    for (key, value) in fields {
        match key.as_str() {
            "sources" => {
                for source in value.as_array().ok_or("`sources` must be an array")? {
                    let Json::Object(entry) = source else {
                        return Err("a source is an object with one key".to_string());
                    };
                    let [(kind, argument)] = entry.as_slice() else {
                        return Err("a source is an object with one key".to_string());
                    };
                    builder = match kind.as_str() {
                        "design" => {
                            let name = argument.as_str().ok_or("`design` takes a name string")?;
                            let design = catalog_design(name)
                                .ok_or_else(|| format!("unknown design `{name}`"))?;
                            builder.design(design)
                        }
                        "sum" => builder.sum_workload(
                            argument.as_usize().ok_or("`sum` takes an operand count")?,
                        ),
                        "sop" => builder.sum_of_products_workload(
                            argument.as_usize().ok_or("`sop` takes a term count")?,
                        ),
                        other => return Err(format!("unknown source kind `{other}`")),
                    };
                }
            }
            "widths" => {
                for width in value.as_array().ok_or("`widths` must be an array")? {
                    let width = width.as_u64().ok_or("a width must be an integer")?;
                    builder = builder.width(u32::try_from(width).map_err(|_| "width too large")?);
                }
            }
            "skews" => {
                for skew in value.as_array().ok_or("`skews` must be an array")? {
                    builder = builder.skew(match parse_profile(skew)? {
                        None => SkewProfile::Keep,
                        Some(max_arrival) => SkewProfile::Uniform(max_arrival),
                    });
                }
            }
            "biases" => {
                for bias in value.as_array().ok_or("`biases` must be an array")? {
                    builder = builder.bias(match parse_profile(bias)? {
                        None => BiasProfile::Keep,
                        Some(bias) => BiasProfile::Uniform(bias),
                    });
                }
            }
            "flows" => {
                for flow in value.as_array().ok_or("`flows` must be an array")? {
                    builder = builder.flow(parse_flow(flow)?);
                }
            }
            "seed" => builder = builder.seed(value.as_u64().ok_or("`seed` must be an integer")?),
            "threads" => {
                builder = builder.threads(value.as_usize().ok_or("`threads` must be an integer")?);
            }
            "overpartition" => {
                builder = builder.overpartition(
                    value
                        .as_usize()
                        .ok_or("`overpartition` must be an integer")?,
                );
            }
            "steal" => {
                builder = builder.steal_policy(match value.as_str() {
                    Some("busiest") => StealPolicy::BusiestVictim,
                    Some("round_robin") => StealPolicy::RoundRobin,
                    _ => return Err("`steal` is \"busiest\" or \"round_robin\"".to_string()),
                });
            }
            "tech" => {
                builder = builder.tech(match value.as_str() {
                    Some("unit") => TechLibrary::unit(),
                    Some("lcbg10pv_like") => TechLibrary::lcbg10pv_like(),
                    _ => return Err("`tech` is \"unit\" or \"lcbg10pv_like\"".to_string()),
                });
            }
            "sim_activity" => {
                let Json::Object(entry) = value else {
                    return Err("`sim_activity` is an object with `seed` and `vectors`".to_string());
                };
                let mut seed = None;
                let mut vectors = None;
                for (field, value) in entry {
                    match field.as_str() {
                        "seed" => {
                            seed = Some(
                                value
                                    .as_u64()
                                    .ok_or("`sim_activity.seed` must be an integer")?,
                            );
                        }
                        "vectors" => {
                            vectors = Some(
                                value
                                    .as_usize()
                                    .ok_or("`sim_activity.vectors` must be an integer")?,
                            );
                        }
                        other => return Err(format!("unknown `sim_activity` field `{other}`")),
                    }
                }
                let seed = seed.ok_or("`sim_activity` requires a `seed`")?;
                let vectors = vectors.ok_or("`sim_activity` requires a `vectors` count")?;
                builder = builder.sim_activity(SimActivity { seed, vectors });
            }
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    builder.build().map_err(|error| error.to_string())
}

// ---------------------------------------------------------------------------
// Minimal JSON: just enough for the line protocol, no external dependency.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(value) => Some(*value),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(value) => Some(*value),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        let value = self.as_number()?;
        (value.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&value)).then_some(value as u64)
    }

    fn as_usize(&self) -> Option<usize> {
        usize::try_from(self.as_u64()?).ok()
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(value) => Some(value),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(values) => Some(values),
            _ => None,
        }
    }
}

fn lookup<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields
        .iter()
        .find_map(|(name, value)| (name == key).then_some(value))
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    for character in text.chars() {
        match character {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            control if (control as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", control as u32));
            }
            character => out.push(character),
        }
    }
    out
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

impl JsonParser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(values));
        }
        loop {
            self.skip_whitespace();
            values.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(values));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|slice| std::str::from_utf8(slice).ok())
            .and_then(|text| u16::from_str_radix(text, 16).ok())
            .ok_or_else(|| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(digits)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&unit) {
                                // A high surrogate must be followed by `\uXXXX`
                                // carrying the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                0x10000 + (u32::from(unit - 0xd800) << 10) + u32::from(low - 0xdc00)
                            } else {
                                u32::from(unit)
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let character = rest.chars().next().expect("peeked non-empty");
                    out.push(character);
                    self.pos += character.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_the_protocol_shapes() {
        let line = r#"{"sources":[{"design":"x_squared"},{"sum":3}],"widths":[4,8],
                       "skews":["keep",2.0],
                       "flows":["csa_opt",{"fa_random":11},{"fa_anneal":5}],
                       "seed":7,"threads":2}"#;
        let Json::Object(fields) = parse_json(line).expect("request parses") else {
            panic!("not an object");
        };
        assert_eq!(
            lookup(&fields, "seed").and_then(Json::as_u64),
            Some(7),
            "numbers parse exactly"
        );
        let spec = build_spec(&fields).expect("spec builds");
        // x_squared: 2 skews × 3 flows; sum3: 2 widths × 2 skews × 3 flows.
        assert_eq!(spec.jobs().len(), 6 + 12);
        assert!(
            spec.jobs()
                .iter()
                .any(|job| job.flow() == Flow::FaAnneal(5)),
            "the seeded fa_anneal flow survives the protocol roundtrip"
        );
        assert_eq!(spec.threads(), 2);
        assert_eq!(spec.seed(), 7);
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash — π 🦀";
        let encoded = format!("{{\"text\":\"{}\"}}", escape_json(original));
        let Json::Object(fields) = parse_json(&encoded).expect("escaped text parses") else {
            panic!("not an object");
        };
        assert_eq!(
            lookup(&fields, "text").and_then(Json::as_str),
            Some(original)
        );
        // And explicit \uXXXX escapes, including a surrogate pair.
        let Json::Object(fields) =
            parse_json(r#"{"text":"\u0041\u00e9\ud83e\udd80"}"#).expect("unicode escapes parse")
        else {
            panic!("not an object");
        };
        assert_eq!(
            lookup(&fields, "text").and_then(Json::as_str),
            Some("Aé🦀"),
            "escapes decode"
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_json("{\"a\":1,}").is_err(), "trailing comma");
        assert!(parse_json("[1 2]").is_err(), "missing comma");
        assert!(parse_json("{\"a\":1} extra").is_err(), "trailing garbage");
        let Json::Object(fields) = parse_json(r#"{"flous":["csa_opt"]}"#).unwrap() else {
            panic!("not an object");
        };
        let error = build_spec(&fields).expect_err("typos must not be ignored");
        assert!(error.contains("unknown request field"), "{error}");
        let Json::Object(fields) = parse_json(r#"{"flows":["warp_speed"]}"#).unwrap() else {
            panic!("not an object");
        };
        assert!(build_spec(&fields)
            .expect_err("unknown flow")
            .contains("unknown flow"));
    }

    #[test]
    fn sim_activity_requests_parse_and_reject_malformed_combinations() {
        let build = |line: &str| {
            let Json::Object(fields) = parse_json(line).expect("request parses") else {
                panic!("not an object");
            };
            build_spec(&fields)
        };
        let spec = build(
            r#"{"sources":[{"design":"x_squared"}],"flows":["fa_aot"],
                "sim_activity":{"seed":11,"vectors":4096}}"#,
        )
        .expect("well-formed sim_activity builds");
        assert_eq!(
            spec.sim_activity(),
            Some(SimActivity {
                seed: 11,
                vectors: 4096
            })
        );
        // Each malformed combination carries its own typed reason.
        for (line, reason) in [
            (r#"{"sim_activity":true}"#, "object with `seed`"),
            (r#"{"sim_activity":{"vectors":64}}"#, "requires a `seed`"),
            (
                r#"{"sim_activity":{"seed":1}}"#,
                "requires a `vectors` count",
            ),
            (
                r#"{"sim_activity":{"seed":1,"vectors":64,"warp":9}}"#,
                "unknown `sim_activity` field `warp`",
            ),
            (
                r#"{"sim_activity":{"seed":1.5,"vectors":64}}"#,
                "`sim_activity.seed` must be an integer",
            ),
            (
                r#"{"sim_activity":{"seed":1,"vectors":"many"}}"#,
                "`sim_activity.vectors` must be an integer",
            ),
            (
                r#"{"sources":[{"design":"x_squared"}],"flows":["fa_aot"],
                    "sim_activity":{"seed":1,"vectors":1}}"#,
                "at least 2 vectors",
            ),
        ] {
            let error = build(line).expect_err(line);
            assert!(error.contains(reason), "{line} -> {error}");
        }
    }

    #[test]
    fn responses_roundtrip_through_render_and_parse() {
        let response = ServeResponse {
            ok: true,
            jobs: 24,
            points: 22,
            store_hits: 18,
            quarantined: 2,
            store: "degraded".to_string(),
            summary: "multi\nline \"summary\"".to_string(),
            ..ServeResponse::default()
        };
        let parsed = ServeResponse::parse(&response.render()).expect("response parses");
        assert!(parsed.ok);
        assert_eq!(parsed.jobs, 24);
        assert_eq!(parsed.points, 22);
        assert_eq!(parsed.store_hits, 18);
        assert_eq!(parsed.quarantined, 2);
        assert_eq!(parsed.store, "degraded");
        assert_eq!(parsed.summary, response.summary);
        let failure = ServeResponse {
            error: "boom".to_string(),
            ..ServeResponse::default()
        };
        let parsed = ServeResponse::parse(&failure.render()).expect("failure parses");
        assert!(!parsed.ok);
        assert_eq!(parsed.error, "boom");
        assert_eq!(parsed.reject, "", "a failure is not a shed");
        let shed = ServeResponse {
            reject: "overloaded".to_string(),
            error: "8 sweeps already in flight".to_string(),
            ..ServeResponse::default()
        };
        let parsed = ServeResponse::parse(&shed.render()).expect("reject parses");
        assert!(!parsed.ok);
        assert_eq!(parsed.reject, "overloaded");
        let ack = ServeResponse {
            ok: true,
            shutdown: true,
            ..ServeResponse::default()
        };
        assert!(ServeResponse::parse(&ack.render()).unwrap().shutdown);
    }

    #[test]
    fn status_responses_roundtrip_with_full_precision_hit_rate() {
        let status = ServeStatus {
            requests: 10,
            completed: 7,
            in_flight: 1,
            queue_depth: 2,
            rejected_overload: 3,
            rejected_oversized: 1,
            rejected_deadline: 1,
            jobs: 48,
            store_hits: 36,
            hit_rate: 0.75,
            store: "ok".to_string(),
            records: 40,
            damaged_lines: 1,
            quarantined: 2,
        };
        let response = ServeResponse {
            ok: true,
            status: Some(status.clone()),
            ..ServeResponse::default()
        };
        let parsed = ServeResponse::parse(&response.render()).expect("status parses");
        assert!(parsed.ok);
        assert_eq!(parsed.status, Some(status));
    }

    /// Satellite regression: a request thread panicking while it holds the store
    /// lock poisons the mutex, and `lock_store` must recover the guard — with the
    /// records intact — so the *next* request still answers instead of panicking
    /// the whole server.
    #[test]
    fn poisoned_store_lock_recovers_and_requests_still_answer() {
        let store = Arc::new(Mutex::new(ResultStore::in_memory()));
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock is clean");
            panic!("injected panic while holding the store lock");
        })
        .join();
        assert!(store.lock().is_err(), "the mutex is actually poisoned");
        let guard = lock_store(&store);
        assert!(guard.is_empty(), "the store data survives the poisoning");
        drop(guard);
        let shared = Shared {
            store: Mutex::new(ResultStore::in_memory()),
            metrics: ServeMetrics::new(false),
            shutdown: AtomicBool::new(false),
            store_attached: false,
            config: ServeConfig::new("/tmp/unused.sock"),
        };
        // Poison the shared server store the same way...
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.store.lock().expect("first lock is clean");
            panic!("injected panic while holding the server store lock");
        }));
        assert!(result.is_err());
        // ...and a full request through the normal path still answers.
        let response = handle_request(
            r#"{"sources":[{"design":"x_squared"}],"flows":["conventional"],"threads":1}"#,
            &shared,
        );
        assert!(response.ok, "request failed: {}", response.error);
        assert_eq!(response.points, 1);
        assert_eq!(response.store, "none");
        let status = handle_request(r#"{"status":{}}"#, &shared);
        let status = status.status.expect("status answers on a poisoned lock");
        assert_eq!(status.requests, 2);
        assert_eq!(status.completed, 1);
    }
}
