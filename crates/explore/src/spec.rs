//! The exploration specification: which design points to visit and how.
//!
//! An [`ExplorationSpec`] is the cross product of four axes — expression sources,
//! operand widths, input-arrival skew profiles and signal-probability biases — times
//! the set of synthesis [`Flow`]s to run on every point. [`ExplorationSpec::jobs`]
//! enumerates the matrix in a fixed nested-loop order (source, width, skew, bias,
//! flow), which is what makes every exploration deterministic regardless of how many
//! worker threads later execute it.

use crate::error::ExploreError;
use crate::job::Job;
use dpsyn_baselines::Flow;
use dpsyn_designs::workloads::{random_sum, random_sum_of_products, SumWorkload};
use dpsyn_designs::Design;
use dpsyn_tech::TechLibrary;
use std::fmt;

/// One source of expressions for the exploration matrix.
#[derive(Debug, Clone)]
pub enum ExprSource {
    /// A fixed benchmark design (e.g. one of the paper's ten); the width axis does not
    /// apply, skew/bias profiles re-draw its input profiles deterministically.
    Fixed(Design),
    /// The `random_sum` workload generator: a sum of `operands` operands, crossed with
    /// every width on the width axis; skew/bias profiles feed straight into the
    /// generator's `max_arrival` / `probability_skew` parameters.
    Sum {
        /// Number of operands added together.
        operands: usize,
    },
    /// The `random_sum_of_products` workload generator: `terms` two-operand products,
    /// crossed with every width; skew/bias profiles re-draw the generated profiles.
    SumOfProducts {
        /// Number of product terms.
        terms: usize,
    },
}

impl ExprSource {
    /// Short label used in job names.
    pub fn label(&self) -> String {
        match self {
            ExprSource::Fixed(design) => design.name().to_string(),
            ExprSource::Sum { operands } => format!("sum{operands}"),
            ExprSource::SumOfProducts { terms } => format!("sop{terms}"),
        }
    }

    fn is_workload(&self) -> bool {
        !matches!(self, ExprSource::Fixed(_))
    }

    /// Whether the source feeds skew/bias profiles straight into `SumWorkload`
    /// parameters (only `random_sum` does; fixed designs and sum-of-products sources
    /// are re-profiled after generation, where `Keep` preserves non-trivial profiles).
    fn maps_profiles_to_workload_params(&self) -> bool {
        matches!(self, ExprSource::Sum { .. })
    }
}

/// `Display` for the two profile enums: `keep` or the bare uniform-range value (the
/// surrounding text — job labels, error messages — names the axis).
macro_rules! fmt_profile_display {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Keep => write!(f, "keep"),
                Self::Uniform(value) => write!(f, "{value}"),
            }
        }
    };
}

/// An input-arrival skew profile: how the arrival times of a design point are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewProfile {
    /// Keep the arrival times of the source (fixed designs and sum-of-products
    /// workloads keep their generated profile; `random_sum` workloads use
    /// arrival 0.0).
    Keep,
    /// Per-bit arrivals drawn uniformly from `[0, max_arrival]`, deterministically
    /// from the exploration seed.
    Uniform(f64),
}

impl SkewProfile {
    /// The `max_arrival` the workload generators should draw from.
    pub(crate) fn workload_max_arrival(&self) -> f64 {
        match self {
            SkewProfile::Keep => 0.0,
            SkewProfile::Uniform(max_arrival) => *max_arrival,
        }
    }

    /// Whether two profiles describe the same arrival range (and would therefore
    /// enumerate duplicate jobs): exact duplicates always conflict; `Keep` and
    /// `Uniform(0.0)` additionally conflict when a `random_sum` workload source is
    /// present, because that generator maps both to `max_arrival = 0.0`. (Fixed
    /// designs and sum-of-products sources are unaffected: `Keep` preserves their
    /// non-trivial profiles while `Uniform(0.0)` zeroes them.)
    pub(crate) fn conflicts_with(&self, other: &SkewProfile, has_sum_workloads: bool) -> bool {
        if self == other {
            return true;
        }
        has_sum_workloads && self.workload_max_arrival() == other.workload_max_arrival()
    }
}

impl fmt::Display for SkewProfile {
    fmt_profile_display!();
}

/// A signal-probability bias profile: how the probabilities of a design point are
/// drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BiasProfile {
    /// Keep the probabilities of the source (fixed designs and sum-of-products
    /// workloads keep their generated profile; `random_sum` workloads use
    /// probability 0.5).
    Keep,
    /// Per-bit probabilities drawn uniformly from `[0.5 − bias, 0.5 + bias]`,
    /// deterministically from the exploration seed.
    Uniform(f64),
}

impl BiasProfile {
    /// The `probability_skew` the workload generators should draw from.
    pub(crate) fn workload_probability_skew(&self) -> f64 {
        match self {
            BiasProfile::Keep => 0.0,
            BiasProfile::Uniform(bias) => *bias,
        }
    }

    /// Same duplicate-range rule as [`SkewProfile::conflicts_with`].
    pub(crate) fn conflicts_with(&self, other: &BiasProfile, has_sum_workloads: bool) -> bool {
        if self == other {
            return true;
        }
        has_sum_workloads && self.workload_probability_skew() == other.workload_probability_skew()
    }
}

impl fmt::Display for BiasProfile {
    fmt_profile_display!();
}

/// How an idle worker of the work-stealing engine picks the victim it steals a
/// chunk from. Both policies steal from the **top** (back) of the victim's deque —
/// the chunk farthest from what the victim's compiled cache is currently warm for —
/// and neither affects results, only wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Steal from the worker with the most queued chunks (the default): the victim
    /// that would otherwise hold the longest tail of unstarted work.
    #[default]
    BusiestVictim,
    /// Scan the other workers round-robin starting after the thief's own index and
    /// steal from the first non-empty queue: cheaper victim selection (no full
    /// scan), at the cost of occasionally picking a nearly-drained victim.
    RoundRobin,
}

/// The simulated switching-activity metric of a sweep: when attached to a
/// specification, every evaluated point is additionally simulated on the SIMD block
/// engine of `dpsyn-sim` under `vectors` seeded biased stimulus vectors, producing a
/// `simulated_switch_power` beside the analytic power figure.
///
/// One compiled block program and one pre-drawn stimulus batch are shared by every
/// skew/bias point of a `(source, width, flow)` group, the same way timing and power
/// reuse the primed delta state — see `crate::explore`'s engine docs. The seed and
/// vector count are part of every persistent-store key (the stimulus digest), so a
/// simulated run can never alias a non-simulated one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimActivity {
    /// Seed of the shared stimulus batch (independent of the exploration seed).
    pub seed: u64,
    /// Stimulus vectors simulated per design point (at least 2 — toggle rates need
    /// a transition).
    pub vectors: usize,
}

/// Default over-partitioning factor: each `(source, width, flow)` group is cut into
/// up to `threads × 4` chunks (capped at the group length). Finer chunks let the
/// work-stealing scheduler re-balance a dominant group's tail, and cost nothing when
/// unstolen — a worker's compiled cache survives across its consecutive same-group
/// chunks, so only the first chunk per worker pays the full prime.
pub(crate) const DEFAULT_OVERPARTITION: usize = 4;

/// The full description of one design-space exploration.
///
/// Build one with [`ExplorationSpec::builder`]; the builder validates the axes and
/// returns a typed [`ExploreError`] for malformed specifications.
///
/// # Example
///
/// ```
/// use dpsyn_baselines::Flow;
/// use dpsyn_explore::{explore, ExplorationSpec, SkewProfile};
///
/// # fn main() -> Result<(), dpsyn_explore::ExploreError> {
/// let spec = ExplorationSpec::builder()
///     .design(dpsyn_designs::x_squared())
///     .sum_workload(3)
///     .widths([2, 3])
///     .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
///     .flows([Flow::FaAot, Flow::CsaOpt])
///     .threads(2)
///     .seed(7)
///     .build()?;
/// // x_squared contributes 2 skews × 2 flows, the sum workload 2 widths × 2 × 2.
/// assert_eq!(spec.jobs().len(), 4 + 8);
/// let results = explore(&spec)?;
/// assert_eq!(results.points().len(), 12);
/// assert!(!results.front_indices().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExplorationSpec {
    pub(crate) sources: Vec<ExprSource>,
    pub(crate) widths: Vec<u32>,
    pub(crate) skews: Vec<SkewProfile>,
    pub(crate) biases: Vec<BiasProfile>,
    pub(crate) flows: Vec<Flow>,
    pub(crate) tech: TechLibrary,
    pub(crate) seed: u64,
    pub(crate) threads: usize,
    pub(crate) steal_policy: StealPolicy,
    pub(crate) overpartition: usize,
    /// Whether every evaluated point keeps its full [`dpsyn_baselines::FlowResult`].
    ///
    /// This is the **single** storage of the flag: the builder wraps a spec and
    /// writes it here directly, so there is no second copy to keep in sync. The
    /// engine honours it on every path — points evaluated through the per-worker
    /// compiled-program cache's delta path still retain a full artifact (the point's
    /// own synthesized netlist and word map plus the shared compiled program),
    /// bit-identical to what the non-cached path would have produced.
    pub(crate) retain_artifacts: bool,
    /// Memo file of the persistent cross-run result store, when one is attached.
    /// `None` (the default) runs the exploration without any persistence, exactly
    /// as before the store existed.
    pub(crate) store_path: Option<std::path::PathBuf>,
    /// The simulated switching-activity metric, when one is requested. `None` (the
    /// default) runs the purely analytic sweep, byte-identical to before the
    /// metric existed.
    pub(crate) sim_activity: Option<SimActivity>,
    /// The fault-injection plan, when one is attached. `None` (the default) runs
    /// with no injection hooks at all — the production path.
    pub(crate) faults: Option<std::sync::Arc<crate::faults::FaultPlan>>,
}

impl ExplorationSpec {
    /// Starts building a specification.
    pub fn builder() -> ExplorationSpecBuilder {
        ExplorationSpecBuilder::default()
    }

    /// The worker count the engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The steal policy of the work-stealing scheduler.
    pub fn steal_policy(&self) -> StealPolicy {
        self.steal_policy
    }

    /// The over-partitioning factor: each `(source, width, flow)` group is cut into
    /// at most `threads × overpartition` chunks (capped at the group length).
    pub fn overpartition(&self) -> usize {
        self.overpartition
    }

    /// The technology library every flow synthesizes against.
    pub fn tech(&self) -> &TechLibrary {
        &self.tech
    }

    /// The seed behind every pseudo-random draw of the exploration.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The memo file of the persistent result store, when one is attached.
    pub fn store_path(&self) -> Option<&std::path::Path> {
        self.store_path.as_deref()
    }

    /// The simulated switching-activity metric, when one is requested.
    pub fn sim_activity(&self) -> Option<SimActivity> {
        self.sim_activity
    }

    /// The attached fault-injection plan, when one is attached (testing only).
    pub fn faults(&self) -> Option<&std::sync::Arc<crate::faults::FaultPlan>> {
        self.faults.as_ref()
    }

    /// Enumerates the job matrix in its canonical order: sources, then widths (for
    /// workload sources), then skew profiles, then bias profiles, then flows.
    ///
    /// The order is a pure function of the specification, so job indices are stable
    /// identifiers across runs and thread counts.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (source_index, source) in self.sources.iter().enumerate() {
            let fixed_width;
            let widths: &[u32] = match source {
                // A fixed design carries its own width; the width axis applies to
                // workload generators only.
                ExprSource::Fixed(design) => {
                    fixed_width = [design.output_width()];
                    &fixed_width
                }
                _ => &self.widths,
            };
            for &width in widths {
                for &skew in &self.skews {
                    for &bias in &self.biases {
                        for &flow in &self.flows {
                            jobs.push(Job::new(
                                jobs.len(),
                                source_index,
                                source.label(),
                                width,
                                skew,
                                bias,
                                flow,
                            ));
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Materializes the design a job evaluates: the source expression with the job's
    /// width, skew profile and bias profile applied. Deterministic in the
    /// specification, so every flow sharing a design point sees the identical design.
    pub fn materialize(&self, job: &Job) -> Design {
        let source = &self.sources[job.source_index()];
        match source {
            ExprSource::Fixed(design) => self.reprofile(design.clone(), job),
            ExprSource::Sum { operands } => {
                let workload = SumWorkload {
                    operands: *operands,
                    width: job.width(),
                    max_arrival: job.skew().workload_max_arrival(),
                    probability_skew: job.bias().workload_probability_skew(),
                };
                random_sum(&workload, self.seed)
            }
            ExprSource::SumOfProducts { terms } => {
                let design = random_sum_of_products(*terms, job.width(), self.seed);
                self.reprofile(design, job)
            }
        }
    }

    /// Applies `Uniform` skew/bias profiles to an already-materialized design.
    ///
    /// The two redraws run on salted copies of the exploration seed so their random
    /// streams are independent: with a shared seed the latest-arriving bit would
    /// always also be the most-biased bit, confounding the skew and bias axes.
    fn reprofile(&self, design: Design, job: &Job) -> Design {
        const SKEW_SALT: u64 = 0x5B9D_3A42_C8F1_6E07;
        const BIAS_SALT: u64 = 0xA3C5_9F17_042D_B86B;
        let design = match job.skew() {
            SkewProfile::Keep => design,
            SkewProfile::Uniform(max_arrival) => {
                design.with_uniform_arrival_skew(self.seed ^ SKEW_SALT, max_arrival)
            }
        };
        match job.bias() {
            BiasProfile::Keep => design,
            BiasProfile::Uniform(bias) => design.with_probability_bias(self.seed ^ BIAS_SALT, bias),
        }
    }
}

/// Builder for [`ExplorationSpec`]; see the type-level example.
///
/// The builder wraps the specification it is assembling instead of duplicating every
/// field: each setter writes straight into the wrapped spec, and [`build`]
/// (`ExplorationSpecBuilder::build`) only validates and unwraps it — there is no
/// field-by-field copy that could drift out of sync.
#[derive(Debug, Clone)]
pub struct ExplorationSpecBuilder {
    spec: ExplorationSpec,
    /// The explicitly requested worker count; `None` defaults to the host's
    /// available parallelism at [`build`](ExplorationSpecBuilder::build) time.
    threads: Option<usize>,
}

impl Default for ExplorationSpecBuilder {
    fn default() -> Self {
        ExplorationSpecBuilder {
            spec: ExplorationSpec {
                sources: Vec::new(),
                widths: Vec::new(),
                skews: Vec::new(),
                biases: Vec::new(),
                flows: Vec::new(),
                tech: TechLibrary::lcbg10pv_like(),
                seed: 1,
                threads: 1,
                steal_policy: StealPolicy::default(),
                overpartition: DEFAULT_OVERPARTITION,
                retain_artifacts: false,
                store_path: None,
                sim_activity: None,
                faults: None,
            },
            threads: None,
        }
    }
}

impl ExplorationSpecBuilder {
    /// Adds a fixed benchmark design as a source.
    pub fn design(mut self, design: Design) -> Self {
        self.spec.sources.push(ExprSource::Fixed(design));
        self
    }

    /// Adds several fixed benchmark designs as sources.
    pub fn designs(mut self, designs: impl IntoIterator<Item = Design>) -> Self {
        self.spec
            .sources
            .extend(designs.into_iter().map(ExprSource::Fixed));
        self
    }

    /// Adds a `random_sum` workload source with the given operand count.
    pub fn sum_workload(mut self, operands: usize) -> Self {
        self.spec.sources.push(ExprSource::Sum { operands });
        self
    }

    /// Adds a `random_sum_of_products` workload source with the given term count.
    pub fn sum_of_products_workload(mut self, terms: usize) -> Self {
        self.spec.sources.push(ExprSource::SumOfProducts { terms });
        self
    }

    /// Adds one operand width to the width axis (workload sources only).
    pub fn width(mut self, width: u32) -> Self {
        self.spec.widths.push(width);
        self
    }

    /// Adds several operand widths to the width axis.
    pub fn widths(mut self, widths: impl IntoIterator<Item = u32>) -> Self {
        self.spec.widths.extend(widths);
        self
    }

    /// Adds one arrival-skew profile.
    pub fn skew(mut self, skew: SkewProfile) -> Self {
        self.spec.skews.push(skew);
        self
    }

    /// Adds several arrival-skew profiles.
    pub fn skews(mut self, skews: impl IntoIterator<Item = SkewProfile>) -> Self {
        self.spec.skews.extend(skews);
        self
    }

    /// Adds one probability-bias profile.
    pub fn bias(mut self, bias: BiasProfile) -> Self {
        self.spec.biases.push(bias);
        self
    }

    /// Adds several probability-bias profiles.
    pub fn biases(mut self, biases: impl IntoIterator<Item = BiasProfile>) -> Self {
        self.spec.biases.extend(biases);
        self
    }

    /// Adds one synthesis flow to run on every design point.
    pub fn flow(mut self, flow: Flow) -> Self {
        self.spec.flows.push(flow);
        self
    }

    /// Adds several synthesis flows.
    pub fn flows(mut self, flows: impl IntoIterator<Item = Flow>) -> Self {
        self.spec.flows.extend(flows);
        self
    }

    /// Sets the technology library (default: `lcbg10pv_like`).
    pub fn tech(mut self, tech: TechLibrary) -> Self {
        self.spec.tech = tech;
        self
    }

    /// Sets the seed behind every pseudo-random draw (default: 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the worker-thread count. When never called, [`build`]
    /// (`ExplorationSpecBuilder::build`) defaults to the host's
    /// [`std::thread::available_parallelism`] (falling back to 1 when the host
    /// cannot report it). Results are bit-identical for every worker count; more
    /// workers only change the wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the work-stealing victim-selection policy (default:
    /// [`StealPolicy::BusiestVictim`]). Steal policies affect only scheduling —
    /// results stay bit-identical under every policy.
    pub fn steal_policy(mut self, policy: StealPolicy) -> Self {
        self.spec.steal_policy = policy;
        self
    }

    /// Sets the over-partitioning factor (default: 4): each `(source, width, flow)`
    /// group is cut into at most `threads × overpartition` chunks, capped at the
    /// group length, so stealing can re-balance a dominant group's tail. `1`
    /// reproduces one-chunk-per-worker splitting; larger factors trade finer
    /// balancing against more (cheap) chunk claims. Like the steal policy, the
    /// factor never changes results.
    pub fn overpartition(mut self, overpartition: usize) -> Self {
        self.spec.overpartition = overpartition;
        self
    }

    /// Keeps the synthesized netlist of every point in the results (default: false).
    /// Needed by equivalence cross-checks; large sweeps should leave this off.
    ///
    /// The flag is honoured uniformly: points the engine evaluates through the
    /// compiled-program cache's delta path retain exactly the same full per-point
    /// artifact (their own netlist and word map plus the shared compiled program) as
    /// points that ran the full analysis bundle.
    pub fn retain_artifacts(mut self, retain: bool) -> Self {
        self.spec.retain_artifacts = retain;
        self
    }

    /// Attaches the persistent cross-run result store at `path` (default: none).
    /// [`explore`](crate::explore) then loads the memo file before running, serves
    /// warm hits from it, and flushes the union of old and fresh records back
    /// atomically afterwards. Combined with [`retain_artifacts`]
    /// (`ExplorationSpecBuilder::retain_artifacts`), store **lookups** are
    /// disabled (results are still recorded): a memoized record carries figures,
    /// not the synthesized netlist, so only fresh evaluation can honour the
    /// retention contract exactly.
    pub fn store(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.spec.store_path = Some(path.into());
        self
    }

    /// Requests the simulated switching-activity metric (default: none): every
    /// evaluated point is additionally simulated on the block engine under the
    /// given seeded stimulus, and carries a `simulated_switch_power` beside the
    /// analytic power figure. The summary rendering gains a simulated-power and an
    /// analytic-vs-simulated divergence column; sweeps without the metric render
    /// byte-identically to before it existed.
    pub fn sim_activity(mut self, activity: SimActivity) -> Self {
        self.spec.sim_activity = Some(activity);
        self
    }

    /// Attaches a deterministic [`FaultPlan`](crate::faults::FaultPlan) (default:
    /// none): job evaluations, store reads and store flushes then consult the
    /// plan and fail at exactly the steps it names. A plan carries its own step
    /// counters, so attach a **fresh** plan per run when replaying a scenario.
    /// Production sweeps never attach one.
    pub fn faults(mut self, plan: std::sync::Arc<crate::faults::FaultPlan>) -> Self {
        self.spec.faults = Some(plan);
        self
    }

    /// Validates the axes and produces the specification.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ExploreError`] when the `threads` field is explicitly zero,
    /// the `overpartition` factor is zero, a width is zero, a workload source lacks
    /// widths or operands, a skew/bias profile is invalid or conflicts with another,
    /// a simulated-activity request asks for fewer than 2 vectors, or the matrix
    /// enumerates no jobs.
    pub fn build(mut self) -> Result<ExplorationSpec, ExploreError> {
        self.spec.threads = match self.threads {
            Some(0) => return Err(ExploreError::ZeroWorkers),
            Some(threads) => threads,
            // Unset: one worker per available core — the work-stealing scheduler
            // keeps them all fed and results are worker-count independent anyway.
            None => std::thread::available_parallelism().map_or(1, |cores| cores.get()),
        };
        if self.spec.overpartition == 0 {
            return Err(ExploreError::ZeroOverpartition);
        }
        if self.spec.widths.contains(&0) {
            return Err(ExploreError::ZeroWidth);
        }
        if let Some(activity) = self.spec.sim_activity {
            // Toggle rates divide by `vectors - 1` transitions; fewer than two
            // vectors cannot witness a single toggle.
            if activity.vectors < 2 {
                return Err(ExploreError::InvalidSimVectors(activity.vectors));
            }
        }
        let has_workloads = self.spec.sources.iter().any(ExprSource::is_workload);
        if has_workloads && self.spec.widths.is_empty() {
            return Err(ExploreError::MissingWidths);
        }
        let has_sum_workloads = self
            .spec
            .sources
            .iter()
            .any(ExprSource::maps_profiles_to_workload_params);
        for source in &self.spec.sources {
            match source {
                ExprSource::Sum { operands: 0 } | ExprSource::SumOfProducts { terms: 0 } => {
                    return Err(ExploreError::EmptySource);
                }
                _ => {}
            }
        }
        if self.spec.skews.is_empty() {
            self.spec.skews.push(SkewProfile::Keep);
        }
        if self.spec.biases.is_empty() {
            self.spec.biases.push(BiasProfile::Keep);
        }
        for skew in &self.spec.skews {
            if let SkewProfile::Uniform(max_arrival) = skew {
                if !max_arrival.is_finite() || *max_arrival < 0.0 {
                    return Err(ExploreError::InvalidSkew(*max_arrival));
                }
            }
        }
        for bias in &self.spec.biases {
            if let BiasProfile::Uniform(value) = bias {
                if !value.is_finite() || !(0.0..=0.5).contains(value) {
                    return Err(ExploreError::InvalidBias(*value));
                }
            }
        }
        for (index, first) in self.spec.skews.iter().enumerate() {
            for second in &self.spec.skews[index + 1..] {
                if first.conflicts_with(second, has_sum_workloads) {
                    return Err(ExploreError::ConflictingSkews(*first, *second));
                }
            }
        }
        for (index, first) in self.spec.biases.iter().enumerate() {
            for second in &self.spec.biases[index + 1..] {
                if first.conflicts_with(second, has_sum_workloads) {
                    return Err(ExploreError::ConflictingBiases(*first, *second));
                }
            }
        }
        let spec = self.spec;
        if spec.jobs().is_empty() {
            return Err(ExploreError::EmptyMatrix);
        }
        Ok(spec)
    }
}
