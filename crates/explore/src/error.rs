//! Typed errors of the exploration engine.

use crate::spec::{BiasProfile, SkewProfile};
use dpsyn_baselines::BaselineError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or running an exploration.
///
/// Every malformed specification is reported as a typed error instead of a panic, so
/// harnesses that assemble `ExplorationSpec`s from user input (sweep scripts, CI
/// drivers) can reject bad configurations gracefully.
#[derive(Debug)]
pub enum ExploreError {
    /// The specification enumerates no jobs at all (no sources or no flows).
    EmptyMatrix,
    /// The `threads` field is explicitly zero; at least one thread must run the
    /// jobs. (Leaving `threads` unset defaults to the host's available parallelism
    /// instead.)
    ZeroWorkers,
    /// The `overpartition` factor is zero; each group needs at least one chunk
    /// target per worker.
    ZeroOverpartition,
    /// The width axis contains a zero; operands need at least one bit.
    ZeroWidth,
    /// A workload source was declared but the width axis is empty, so the source would
    /// silently contribute no jobs.
    MissingWidths,
    /// A workload source has no operands / product terms to sum.
    EmptySource,
    /// An arrival-skew profile carries a negative or non-finite maximum arrival.
    InvalidSkew(f64),
    /// Two arrival-skew profiles describe the same arrival range, so the cross product
    /// would enumerate duplicate jobs.
    ConflictingSkews(SkewProfile, SkewProfile),
    /// A probability-bias profile falls outside `[0, 0.5]` (probabilities would escape
    /// `[0, 1]`) or is not finite.
    InvalidBias(f64),
    /// Two probability-bias profiles describe the same probability range.
    ConflictingBiases(BiasProfile, BiasProfile),
    /// A simulated-activity request asks for fewer than 2 stimulus vectors; toggle
    /// rates need at least one vector-to-vector transition.
    InvalidSimVectors(usize),
    /// The simulated switching-activity metric failed on one job (block-engine
    /// compilation or technology resolution of the synthesized netlist).
    Sim {
        /// Label of the failing job (design, axes and flow).
        job: String,
        /// What went wrong.
        message: String,
    },
    /// A synthesis flow failed on one job of the matrix.
    Flow {
        /// Label of the failing job (design, axes and flow).
        job: String,
        /// The underlying flow error.
        source: BaselineError,
    },
    /// A worker thread died outside the supervised per-job evaluation (scheduler
    /// internals). Panics *inside* an evaluation are caught, retried and
    /// quarantined by the engine instead
    /// ([`ExplorationResults::quarantined`](crate::ExplorationResults::quarantined)),
    /// so this is a thread-level fallback that healthy and fault-injected sweeps
    /// alike should never hit.
    WorkerPanic {
        /// Index of the job whose result slot was left unfilled by the dead
        /// worker.
        job: usize,
    },
    /// The persistent result store failed on a true I/O operation (corrupt or
    /// stale *content* never errors — it is rebuilt or skipped instead).
    Store {
        /// The memo file involved.
        path: std::path::PathBuf,
        /// What went wrong.
        message: String,
    },
    /// The exploration server failed to bind, accept or speak its socket
    /// protocol.
    Serve {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::EmptyMatrix => {
                write!(f, "the exploration matrix is empty: no jobs to run")
            }
            ExploreError::ZeroWorkers => {
                write!(
                    f,
                    "`threads` is zero; at least one worker thread is required \
                     (leave it unset to default to the available parallelism)"
                )
            }
            ExploreError::ZeroOverpartition => {
                write!(
                    f,
                    "`overpartition` is zero; each group needs at least one chunk \
                     target per worker"
                )
            }
            ExploreError::ZeroWidth => {
                write!(
                    f,
                    "the width axis contains 0; operands need at least one bit"
                )
            }
            ExploreError::MissingWidths => write!(
                f,
                "a workload source needs a non-empty width axis to enumerate jobs"
            ),
            ExploreError::EmptySource => {
                write!(f, "a workload source has no operands to sum")
            }
            ExploreError::InvalidSkew(max_arrival) => write!(
                f,
                "arrival-skew profile with max arrival {max_arrival} is invalid \
                 (must be finite and non-negative)"
            ),
            ExploreError::ConflictingSkews(first, second) => write!(
                f,
                "arrival-skew profiles {first} and {second} conflict: they describe \
                 the same arrival range and would enumerate duplicate jobs"
            ),
            ExploreError::InvalidBias(bias) => write!(
                f,
                "probability-bias profile {bias} is invalid (must be finite and \
                 within [0, 0.5])"
            ),
            ExploreError::ConflictingBiases(first, second) => write!(
                f,
                "probability-bias profiles {first} and {second} conflict: they \
                 describe the same probability range and would enumerate duplicate jobs"
            ),
            ExploreError::InvalidSimVectors(vectors) => write!(
                f,
                "simulated activity with {vectors} vector(s) is invalid (at least 2 \
                 vectors are needed to witness a toggle)"
            ),
            ExploreError::Sim { job, message } => {
                write!(f, "simulated activity failed on job `{job}`: {message}")
            }
            ExploreError::Flow { job, source } => {
                write!(f, "flow failed on job `{job}`: {source}")
            }
            ExploreError::WorkerPanic { job } => {
                write!(f, "a worker thread panicked while evaluating job {job}")
            }
            ExploreError::Store { path, message } => {
                write!(f, "result store `{}` failed: {message}", path.display())
            }
            ExploreError::Serve { message } => {
                write!(f, "exploration server failed: {message}")
            }
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Flow { source, .. } => Some(source),
            _ => None,
        }
    }
}
