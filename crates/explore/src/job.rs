//! One job of the exploration matrix: a design point times a synthesis flow.

use crate::spec::{BiasProfile, SkewProfile};
use dpsyn_baselines::Flow;
use std::fmt;

/// One fully-determined unit of work: a source at a width under a skew and bias
/// profile, run through one synthesis flow.
///
/// Jobs are enumerated by [`crate::ExplorationSpec::jobs`] in a canonical order; the
/// index is the job's stable identity across runs and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    index: usize,
    source_index: usize,
    source_label: String,
    width: u32,
    skew: SkewProfile,
    bias: BiasProfile,
    flow: Flow,
}

impl Job {
    pub(crate) fn new(
        index: usize,
        source_index: usize,
        source_label: String,
        width: u32,
        skew: SkewProfile,
        bias: BiasProfile,
        flow: Flow,
    ) -> Self {
        Job {
            index,
            source_index,
            source_label,
            width,
            skew,
            bias,
            flow,
        }
    }

    /// Position of the job in the canonical enumeration order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Index of the job's source in the specification's source list.
    pub fn source_index(&self) -> usize {
        self.source_index
    }

    /// Label of the job's source (design or workload name).
    pub fn source_label(&self) -> &str {
        &self.source_label
    }

    /// Operand width (workload sources) or output width (fixed designs).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The arrival-skew profile of the design point.
    pub fn skew(&self) -> SkewProfile {
        self.skew
    }

    /// The probability-bias profile of the design point.
    pub fn bias(&self) -> BiasProfile {
        self.bias
    }

    /// The synthesis flow the job runs.
    pub fn flow(&self) -> Flow {
        self.flow
    }

    /// Whether two jobs are **delta peers**: same source, width and flow, differing
    /// only in their skew/bias profiles. Delta peers usually synthesize structurally
    /// identical netlists, so the scheduler groups them into chunks whose non-leader
    /// points re-analyse through the compiled-program cache's delta path.
    pub fn is_delta_peer(&self, other: &Job) -> bool {
        self.source_index == other.source_index
            && self.width == other.width
            && self.flow == other.flow
    }

    /// A human-readable label naming the design point and flow, used in summaries and
    /// error messages.
    pub fn label(&self) -> String {
        format!(
            "{} w{} skew={} bias={} flow={}",
            self.source_label, self.width, self.skew, self.bias, self.flow
        )
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}", self.index, self.label())
    }
}
