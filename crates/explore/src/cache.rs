//! The per-worker compiled-program cache behind the engine's delta-evaluation path.
//!
//! Exploration jobs that share `(source, width, flow)` and differ only in their
//! skew/bias axes usually synthesize **structurally identical** netlists (module
//! binding never looks at input profiles; see `dpsyn_baselines::conventional_netlist`).
//! Paying a full compile + tech-resolve + timing + power + area bundle for each of
//! them is pure waste: the compiled program, the resolved technology tables, the cell
//! area and the primed [`DeltaState`] of the first point can absorb every later point
//! as an input-profile delta through the affected cone.
//!
//! [`CompiledCache::analyze`] implements that reuse with a strict correctness ladder:
//!
//! 1. probe by [`Netlist::structural_hash`] (no compile needed on the probe side);
//! 2. **verify** a candidate cell-by-cell against the cached program's
//!    [`CompiledNetlist::cell_ops`] plus the input/output lists and the word map —
//!    hash equality alone is never trusted;
//! 3. on a verified hit, re-analyse through `rerun_delta` (bit-identical to a fresh
//!    bundle by the delta invariant);
//! 4. on any mismatch, fall back to the full path — so results are bit-identical for
//!    any worker count, cache state and eviction history.
//!
//! The cache is deliberately **per worker**: no locks, no cross-thread coherence, and
//! eviction (FIFO, small bound) only ever costs speed, never correctness.

use dpsyn_baselines::{input_profiles, BaselineError, FlowResult};
use dpsyn_ir::InputSpec;
use dpsyn_netlist::{CompiledNetlist, CompiledOp, DeltaState, InputDelta, Netlist, WordMap};
use dpsyn_power::IncrementalPower;
use dpsyn_tech::TechLibrary;
use dpsyn_timing::IncrementalTiming;
use std::collections::{HashMap, VecDeque};

/// Upper bound on live entries per worker; beyond it the oldest entry is evicted.
/// Entries hold a compiled program plus primed per-net state (O(cells)), so the bound
/// keeps a long exploration's memory flat while still covering the handful of netlist
/// structures a worker's current groups cycle through.
const MAX_ENTRIES: usize = 8;

/// The analysed figures of one evaluated point, plus the retained artifact when the
/// specification asks for one. Produced by both the cached-delta and the full path —
/// bit-identically.
pub(crate) struct Evaluated {
    pub delay: f64,
    pub area: f64,
    pub switching_energy: f64,
    pub power_mw: f64,
    pub cell_count: usize,
    pub logic_depth: usize,
    pub artifact: Option<FlowResult>,
}

/// One cached program: the compiled netlist, its structural identity in cell order,
/// the once-resolved incremental analyses, the primed value state and the cached area.
struct CacheEntry {
    compiled: CompiledNetlist,
    /// `compiled`'s ops in cell-index order, for exact candidate verification.
    cell_ops: Vec<CompiledOp>,
    word_map: WordMap,
    timing: IncrementalTiming,
    power: IncrementalPower,
    state: DeltaState,
    area: f64,
    /// Reusable delta buffer (cleared per point).
    delta: InputDelta,
}

impl CacheEntry {
    /// Exact structural verification of a candidate against the cached program:
    /// net universe, primary inputs/outputs, word-level interface and every cell's
    /// kind + pin connectivity. This is what makes a hash hit safe to reuse.
    fn matches(&self, netlist: &Netlist, word_map: &WordMap) -> bool {
        if netlist.net_count() != self.compiled.net_count()
            || netlist.cell_count() != self.compiled.cell_count()
            || netlist.inputs() != self.compiled.inputs()
            || netlist.outputs() != self.compiled.outputs()
            || word_map != &self.word_map
        {
            return false;
        }
        netlist.cells().all(|(id, cell)| {
            let op = &self.cell_ops[id.index()];
            op.kind == cell.kind()
                && op.input_nets() == cell.inputs()
                && op.output_nets() == cell.outputs()
        })
    }
}

/// A per-worker cache of compiled programs keyed by structural netlist hash.
pub(crate) struct CompiledCache {
    entries: HashMap<u64, CacheEntry>,
    order: VecDeque<u64>,
}

impl CompiledCache {
    pub(crate) fn new() -> Self {
        CompiledCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Analyses one synthesized-but-unanalysed point, through the delta path when a
    /// structurally identical program is cached and the full path otherwise.
    ///
    /// Both paths produce bit-identical figures and (when `retain` is set) an
    /// artifact carrying the point's **own** netlist and word map plus the shared
    /// compiled program — retained points lose nothing to caching.
    pub(crate) fn analyze(
        &mut self,
        flow: &str,
        netlist: Netlist,
        word_map: WordMap,
        spec: &InputSpec,
        tech: &TechLibrary,
        retain: bool,
    ) -> Result<Evaluated, BaselineError> {
        let (arrivals, probabilities) = input_profiles(&word_map, spec);
        let hash = netlist.structural_hash();
        if let Some(entry) = self.entries.get_mut(&hash) {
            if entry.matches(&netlist, &word_map) {
                let CacheEntry {
                    compiled,
                    timing,
                    power,
                    state,
                    area,
                    delta,
                    ..
                } = entry;
                // The full profile of the new point; `rerun_delta` skips the
                // unchanged values bit-for-bit, so this stays a cone-sized rerun.
                delta.clear();
                for net in compiled.inputs() {
                    delta.set_arrival(*net, arrivals.get(net).copied().unwrap_or(0.0));
                    delta.set_probability(*net, probabilities.get(net).copied().unwrap_or(0.5));
                }
                let timing_report = timing.rerun_delta(compiled, state, delta)?;
                let power_report = power.rerun_delta(compiled, state, delta)?;
                let area = *area;
                let artifact = retain.then(|| FlowResult {
                    flow: flow.to_string(),
                    delay: timing_report.critical_delay(),
                    area,
                    switching_energy: power_report.total_energy(),
                    power_mw: power_report.power_mw(),
                    netlist,
                    word_map,
                    compiled: compiled.clone(),
                });
                return Ok(Evaluated {
                    delay: timing_report.critical_delay(),
                    area,
                    switching_energy: power_report.total_energy(),
                    power_mw: power_report.power_mw(),
                    cell_count: compiled.cell_count(),
                    logic_depth: compiled.level_count(),
                    artifact,
                });
            }
        }
        // Full path: miss, or a hash collision with a different structure (the
        // resident entry is kept; collisions only cost the delta speedup).
        // The step order below mirrors `FlowResult::analyze` exactly, so every
        // failure surfaces as the same error the non-cached path would report.
        netlist.validate_structure()?;
        let compiled = netlist.compile()?;
        let timing = IncrementalTiming::new(tech, &compiled)?;
        let mut state = DeltaState::new(&compiled);
        let timing_report = timing.run_full(&compiled, &arrivals, &mut state)?;
        let power = IncrementalPower::new(tech, &compiled)?;
        let power_report = power.run_full(&compiled, &probabilities, &mut state)?;
        let area = tech.compiled_area(&compiled);
        let delay = timing_report.critical_delay();
        let switching_energy = power_report.total_energy();
        let power_mw = power_report.power_mw();
        let cell_count = compiled.cell_count();
        let logic_depth = compiled.level_count();
        let artifact = retain.then(|| FlowResult {
            flow: flow.to_string(),
            delay,
            area,
            switching_energy,
            power_mw,
            netlist,
            word_map: word_map.clone(),
            compiled: compiled.clone(),
        });
        // Insert — and on a verified mismatch *replace* the resident same-hash entry
        // (it just failed to serve this structure; the newest full evaluation owns
        // the slot so the rest of its chunk gets the delta path). Replacement keeps
        // the hash's FIFO position; only brand-new hashes count against the bound.
        if !self.entries.contains_key(&hash) {
            if self.order.len() >= MAX_ENTRIES {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
            self.order.push_back(hash);
        }
        self.entries.insert(
            hash,
            CacheEntry {
                cell_ops: compiled.cell_ops(),
                compiled,
                word_map,
                timing,
                power,
                state,
                area,
                delta: InputDelta::new(),
            },
        );
        Ok(Evaluated {
            delay,
            area,
            switching_energy,
            power_mw,
            cell_count,
            logic_depth,
            artifact,
        })
    }
}
