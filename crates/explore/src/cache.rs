//! The per-worker compiled-program cache behind the engine's delta-evaluation path.
//!
//! Exploration jobs that share `(source, width, flow)` and differ only in their
//! skew/bias axes usually synthesize **structurally identical** netlists (module
//! binding never looks at input profiles; see `dpsyn_baselines::conventional_netlist`).
//! Paying a full compile + tech-resolve + timing + power + area bundle for each of
//! them is pure waste: the compiled program, the resolved technology tables, the cell
//! area and the primed [`DeltaState`] of the first point can absorb every later point
//! as an input-profile delta through the affected cone.
//!
//! [`CompiledCache::analyze`] implements that reuse with a strict correctness ladder:
//!
//! 1. probe by [`Netlist::structural_hash`] (no compile needed on the probe side);
//! 2. **verify** a candidate cell-by-cell against the cached program's
//!    [`CompiledNetlist::cell_ops`] plus the input/output lists and the word map —
//!    hash equality alone is never trusted;
//! 3. on a verified hit, re-analyse through `rerun_delta` (bit-identical to a fresh
//!    bundle by the delta invariant);
//! 4. on any mismatch, fall back to the full path — so results are bit-identical for
//!    any worker count, cache state and eviction history.
//!
//! The cache is deliberately **per worker**: no locks, no cross-thread coherence, and
//! eviction (FIFO over insertions with a small bound, where a collision replacement
//! re-inserts its hash at the back of the queue) only ever costs speed, never
//! correctness.

use dpsyn_baselines::{BaselineError, FlowResult};
use dpsyn_netlist::{CompiledNetlist, CompiledOp, DeltaState, InputDelta, NetId, Netlist, WordMap};
use dpsyn_power::IncrementalPower;
use dpsyn_tech::TechLibrary;
use dpsyn_timing::IncrementalTiming;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Upper bound on live entries per worker; beyond it the oldest entry is evicted.
/// Entries hold a compiled program plus primed per-net state (O(cells)), so the bound
/// keeps a long exploration's memory flat while still covering the handful of netlist
/// structures a worker's current groups cycle through.
const MAX_ENTRIES: usize = 8;

/// The input profiles of one evaluation point — the maps
/// [`dpsyn_baselines::input_profiles`] produces, borrowed from the engine (which
/// already computed them for the persistent store's evaluation key).
pub(crate) struct PointProfiles<'a> {
    /// Per-net arrival times keyed by input net.
    pub arrivals: &'a BTreeMap<NetId, f64>,
    /// Per-net one-probabilities keyed by input net.
    pub probabilities: &'a BTreeMap<NetId, f64>,
}

/// The analysed figures of one evaluated point, plus the retained artifact when the
/// specification asks for one. Produced by both the cached-delta and the full path —
/// bit-identically.
pub(crate) struct Evaluated {
    pub delay: f64,
    pub area: f64,
    pub switching_energy: f64,
    pub power_mw: f64,
    pub cell_count: usize,
    pub logic_depth: usize,
    pub artifact: Option<FlowResult>,
}

/// One cached program: the compiled netlist, its structural identity in cell order,
/// the once-resolved incremental analyses, the primed value state and the cached area.
struct CacheEntry {
    compiled: CompiledNetlist,
    /// `compiled`'s ops in cell-index order, for exact candidate verification.
    cell_ops: Vec<CompiledOp>,
    word_map: WordMap,
    timing: IncrementalTiming,
    power: IncrementalPower,
    state: DeltaState,
    area: f64,
    /// Reusable delta buffer (cleared per point).
    delta: InputDelta,
}

impl CacheEntry {
    /// Exact structural verification of a candidate against the cached program:
    /// net universe, primary inputs/outputs, word-level interface and every cell's
    /// kind + pin connectivity. This is what makes a hash hit safe to reuse.
    fn matches(&self, netlist: &Netlist, word_map: &WordMap) -> bool {
        if netlist.net_count() != self.compiled.net_count()
            || netlist.cell_count() != self.compiled.cell_count()
            || netlist.inputs() != self.compiled.inputs()
            || netlist.outputs() != self.compiled.outputs()
            || word_map != &self.word_map
        {
            return false;
        }
        netlist.cells().all(|(id, cell)| {
            let op = &self.cell_ops[id.index()];
            op.kind == cell.kind()
                && op.input_nets() == cell.inputs()
                && op.output_nets() == cell.outputs()
        })
    }
}

/// Residency bookkeeping of the cache: the resident hashes in insertion-recency
/// order, oldest first. Admission is FIFO over *insertions*, where replacing a
/// resident hash's entry counts as a fresh insertion: the hash moves to the back of
/// the queue. (Before this fix a collision replacement kept the replaced hash's old
/// queue position, so a hot just-replaced program could be the *next* eviction
/// victim while cold entries survived.)
struct ResidencyQueue {
    order: VecDeque<u64>,
    capacity: usize,
}

impl ResidencyQueue {
    fn new(capacity: usize) -> Self {
        ResidencyQueue {
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Records that `hash` now owns a (new or replaced) entry and returns the hash
    /// to evict when admitting a brand-new hash overflows the capacity.
    fn admit(&mut self, hash: u64) -> Option<u64> {
        if self.order.contains(&hash) {
            // Replacement of a resident entry: refresh its recency — the entry now
            // holds the newest full evaluation and is about to serve its chunk's
            // delta chain, so it must be the *last* eviction candidate, not the
            // next one.
            self.touch(hash);
            return None;
        }
        let evicted = if self.order.len() >= self.capacity {
            self.order.pop_front()
        } else {
            None
        };
        self.order.push_back(hash);
        evicted
    }

    /// Records a verified cache **hit** on `hash`: the entry just served a delta
    /// rerun, so it moves to the back of the recency order. Non-resident hashes
    /// are a no-op.
    ///
    /// (Before this fix the queue was admit-only: probes never refreshed recency,
    /// so an entry serving hit after hit kept its original insertion position and
    /// could be the *next* eviction victim while entries that never matched again
    /// survived behind it. With hits refreshing, the order is true LRU over
    /// useful entries.)
    fn touch(&mut self, hash: u64) {
        if let Some(position) = self.order.iter().position(|&resident| resident == hash) {
            self.order.remove(position);
            self.order.push_back(hash);
        }
    }
}

/// A per-worker cache of compiled programs keyed by structural netlist hash.
pub(crate) struct CompiledCache {
    entries: HashMap<u64, CacheEntry>,
    residency: ResidencyQueue,
}

impl CompiledCache {
    pub(crate) fn new() -> Self {
        CompiledCache {
            entries: HashMap::new(),
            residency: ResidencyQueue::new(MAX_ENTRIES),
        }
    }

    /// Analyses one synthesized-but-unanalysed point, through the delta path when a
    /// structurally identical program is cached and the full path otherwise.
    ///
    /// Both paths produce bit-identical figures and (when `retain` is set) an
    /// artifact carrying the point's **own** netlist and word map plus the shared
    /// compiled program — retained points lose nothing to caching.
    ///
    /// The caller supplies the point's input profiles ([`PointProfiles`]) — the
    /// engine already computes them for the persistent store's evaluation key, so
    /// the cache consumes them instead of recomputing.
    pub(crate) fn analyze(
        &mut self,
        flow: &str,
        netlist: Netlist,
        word_map: WordMap,
        profiles: PointProfiles<'_>,
        tech: &TechLibrary,
        retain: bool,
    ) -> Result<Evaluated, BaselineError> {
        let PointProfiles {
            arrivals,
            probabilities,
        } = profiles;
        let hash = netlist.structural_hash();
        if let Some(entry) = self.entries.get_mut(&hash) {
            if entry.matches(&netlist, &word_map) {
                // A verified hit refreshes the entry's residency: it just proved
                // itself the most recently useful program.
                self.residency.touch(hash);
                let CacheEntry {
                    compiled,
                    timing,
                    power,
                    state,
                    area,
                    delta,
                    ..
                } = entry;
                // The full profile of the new point; `rerun_delta` skips the
                // unchanged values bit-for-bit, so this stays a cone-sized rerun.
                delta.clear();
                for net in compiled.inputs() {
                    delta.set_arrival(*net, arrivals.get(net).copied().unwrap_or(0.0));
                    delta.set_probability(*net, probabilities.get(net).copied().unwrap_or(0.5));
                }
                let timing_report = timing.rerun_delta(compiled, state, delta)?;
                let power_report = power.rerun_delta(compiled, state, delta)?;
                let area = *area;
                let artifact = retain.then(|| FlowResult {
                    flow: flow.to_string(),
                    delay: timing_report.critical_delay(),
                    area,
                    switching_energy: power_report.total_energy(),
                    power_mw: power_report.power_mw(),
                    netlist,
                    word_map,
                    compiled: compiled.clone(),
                });
                return Ok(Evaluated {
                    delay: timing_report.critical_delay(),
                    area,
                    switching_energy: power_report.total_energy(),
                    power_mw: power_report.power_mw(),
                    cell_count: compiled.cell_count(),
                    logic_depth: compiled.level_count(),
                    artifact,
                });
            }
        }
        // Full path: miss, or a hash collision with a different structure (the
        // resident entry is kept; collisions only cost the delta speedup).
        // The step order below mirrors `FlowResult::analyze` exactly, so every
        // failure surfaces as the same error the non-cached path would report.
        netlist.validate_structure()?;
        let compiled = netlist.compile()?;
        let timing = IncrementalTiming::new(tech, &compiled)?;
        let mut state = DeltaState::new(&compiled);
        let timing_report = timing.run_full(&compiled, arrivals, &mut state)?;
        let power = IncrementalPower::new(tech, &compiled)?;
        let power_report = power.run_full(&compiled, probabilities, &mut state)?;
        let area = tech.compiled_area(&compiled);
        let delay = timing_report.critical_delay();
        let switching_energy = power_report.total_energy();
        let power_mw = power_report.power_mw();
        let cell_count = compiled.cell_count();
        let logic_depth = compiled.level_count();
        let artifact = retain.then(|| FlowResult {
            flow: flow.to_string(),
            delay,
            area,
            switching_energy,
            power_mw,
            netlist,
            word_map: word_map.clone(),
            compiled: compiled.clone(),
        });
        // Insert — and on a verified mismatch *replace* the resident same-hash entry
        // (it just failed to serve this structure; the newest full evaluation owns
        // the slot so the rest of its chunk gets the delta path). Replacement
        // refreshes the hash's recency like a fresh insertion; only brand-new
        // hashes count against the bound.
        if let Some(evicted) = self.residency.admit(hash) {
            self.entries.remove(&evicted);
        }
        self.entries.insert(
            hash,
            CacheEntry {
                cell_ops: compiled.cell_ops(),
                compiled,
                word_map,
                timing,
                power,
                state,
                area,
                delta: InputDelta::new(),
            },
        );
        Ok(Evaluated {
            delay,
            area,
            switching_energy,
            power_mw,
            cell_count,
            logic_depth,
            artifact,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Admits `hashes` in order into a fresh queue of [`MAX_ENTRIES`] capacity,
    /// collecting the evictions it reports.
    fn admit_all(queue: &mut ResidencyQueue, hashes: impl IntoIterator<Item = u64>) -> Vec<u64> {
        hashes
            .into_iter()
            .filter_map(|hash| queue.admit(hash))
            .collect()
    }

    #[test]
    fn eviction_is_fifo_for_distinct_hashes() {
        let mut queue = ResidencyQueue::new(MAX_ENTRIES);
        let full = 1..=MAX_ENTRIES as u64;
        assert_eq!(admit_all(&mut queue, full), Vec::<u64>::new());
        // Exactly at the boundary: the next brand-new hash evicts the oldest, and
        // each further one evicts in insertion order.
        let overflow = (MAX_ENTRIES as u64 + 1)..=(MAX_ENTRIES as u64 + 3);
        assert_eq!(admit_all(&mut queue, overflow), vec![1, 2, 3]);
    }

    #[test]
    fn replacement_refreshes_recency_instead_of_keeping_the_old_position() {
        let mut queue = ResidencyQueue::new(MAX_ENTRIES);
        admit_all(&mut queue, 1..=MAX_ENTRIES as u64);
        // Hash 1 is the oldest resident. A collision replacement re-admits it: it
        // must move to the back of the queue, not stay first in line for eviction.
        assert_eq!(queue.admit(1), None, "replacement never evicts");
        // The next brand-new hash now evicts hash 2 (the oldest *unreplaced*
        // resident) — before the fix it would have evicted the hot, just-replaced
        // hash 1.
        assert_eq!(queue.admit(100), Some(2));
        // And hash 1 survives all the way to the end of the refreshed order.
        let expected: Vec<u64> = (3..=MAX_ENTRIES as u64).collect();
        assert_eq!(
            admit_all(&mut queue, 101..=(100 + MAX_ENTRIES as u64 - 2)),
            expected,
            "the replaced hash must outlive every older resident"
        );
        assert_eq!(
            queue.admit(200),
            Some(1),
            "hash 1 is evicted last of the originals"
        );
    }

    #[test]
    fn hits_refresh_recency_at_the_capacity_boundary() {
        let mut queue = ResidencyQueue::new(MAX_ENTRIES);
        admit_all(&mut queue, 1..=MAX_ENTRIES as u64);
        // Queue exactly full; hash 1 is first in line for eviction. A verified hit
        // on it must move it to the back...
        queue.touch(1);
        // ...so the next brand-new hash evicts hash 2, not the hot hash 1. (This
        // was the admit-on-probe asymmetry: only `admit` refreshed recency, so a
        // hit left the entry parked at the front of the queue.)
        assert_eq!(queue.admit(100), Some(2));
        assert_eq!(queue.order.len(), MAX_ENTRIES, "bound stays exact");
        // Repeated hits keep pinning hash 1 across MAX_ENTRIES − 1 further
        // admissions: every other original resident is evicted before it.
        let mut evicted = Vec::new();
        for fresh in 0..MAX_ENTRIES as u64 - 1 {
            queue.touch(1);
            evicted.extend(queue.admit(200 + fresh));
        }
        let expected: Vec<u64> = (3..=MAX_ENTRIES as u64).chain([100]).collect();
        assert_eq!(evicted, expected, "the hot entry outlives every cold one");
        assert!(queue.order.contains(&1), "hash 1 is still resident");
    }

    #[test]
    fn touching_a_non_resident_hash_is_a_noop() {
        let mut queue = ResidencyQueue::new(MAX_ENTRIES);
        admit_all(&mut queue, [10, 20]);
        queue.touch(999);
        assert_eq!(queue.order, [10, 20]);
    }

    #[test]
    fn replacement_below_capacity_keeps_the_bound_exact() {
        let mut queue = ResidencyQueue::new(MAX_ENTRIES);
        admit_all(&mut queue, [10, 20, 30]);
        // Replacing a resident below capacity neither evicts nor double-counts.
        assert_eq!(queue.admit(10), None);
        assert_eq!(queue.order.len(), 3, "replacement must not grow the queue");
        // Fill to the bound: still no eviction, then the first overflow evicts 20
        // (10 was refreshed behind it).
        let fill = 40..(40 + MAX_ENTRIES as u64 - 3);
        assert_eq!(admit_all(&mut queue, fill), Vec::<u64>::new());
        assert_eq!(queue.admit(1000), Some(20));
    }
}
