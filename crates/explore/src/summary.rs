//! Per-flow aggregate summaries and the deterministic text rendering.

use crate::engine::ExplorationResults;
use dpsyn_baselines::Flow;
use dpsyn_power::power_divergence;
use std::fmt::Write as _;

/// Aggregate quality of one flow over every design point it visited.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// The flow (seeded variants are distinct summaries).
    pub flow: Flow,
    /// Number of evaluated points.
    pub points: usize,
    /// Best (smallest) critical delay over the points.
    pub best_delay: f64,
    /// Mean critical delay over the points.
    pub mean_delay: f64,
    /// Best (smallest) switching power over the points.
    pub best_power: f64,
    /// Mean switching power over the points.
    pub mean_power: f64,
    /// Best (smallest) area over the points.
    pub best_area: f64,
    /// Mean area over the points.
    pub mean_area: f64,
    /// How many of the flow's points sit on the overall Pareto front.
    pub pareto_points: usize,
    /// Mean simulated switching power over the points, when the sweep carried the
    /// simulated metric (`None` for analytic sweeps).
    pub mean_simulated_power: Option<f64>,
    /// Mean per-point analytic-vs-simulated divergence
    /// ([`dpsyn_power::power_divergence`]) over the points, when the sweep carried
    /// the simulated metric.
    pub mean_divergence: Option<f64>,
}

/// Groups the evaluated points by flow (in order of first appearance in the job
/// matrix) and aggregates each group.
pub(crate) fn summarize_flows(results: &ExplorationResults) -> Vec<FlowSummary> {
    let mut flows: Vec<Flow> = Vec::new();
    for point in results.points() {
        if !flows.contains(&point.job.flow()) {
            flows.push(point.job.flow());
        }
    }
    flows
        .into_iter()
        .map(|flow| {
            let mut summary = FlowSummary {
                flow,
                points: 0,
                best_delay: f64::INFINITY,
                mean_delay: 0.0,
                best_power: f64::INFINITY,
                mean_power: 0.0,
                best_area: f64::INFINITY,
                mean_area: 0.0,
                pareto_points: 0,
                mean_simulated_power: None,
                mean_divergence: None,
            };
            let mut simulated_sum = 0.0;
            let mut divergence_sum = 0.0;
            let mut simulated_points = 0usize;
            for point in results.points().iter().filter(|p| p.job.flow() == flow) {
                summary.points += 1;
                summary.best_delay = summary.best_delay.min(point.metrics.delay);
                summary.mean_delay += point.metrics.delay;
                summary.best_power = summary.best_power.min(point.metrics.power);
                summary.mean_power += point.metrics.power;
                summary.best_area = summary.best_area.min(point.metrics.area);
                summary.mean_area += point.metrics.area;
                if let Some(simulated) = point.metrics.simulated_switch_power {
                    simulated_sum += simulated;
                    divergence_sum += power_divergence(point.metrics.power, simulated);
                    simulated_points += 1;
                }
            }
            summary.pareto_points = results
                .front()
                .filter(|point| point.job.flow() == flow)
                .count();
            let count = summary.points.max(1) as f64;
            summary.mean_delay /= count;
            summary.mean_power /= count;
            summary.mean_area /= count;
            if simulated_points > 0 {
                summary.mean_simulated_power = Some(simulated_sum / simulated_points as f64);
                summary.mean_divergence = Some(divergence_sum / simulated_points as f64);
            }
            summary
        })
        .collect()
}

/// Renders the per-flow summary table plus the Pareto front. Pure function of the
/// evaluated points: byte-identical across runs and thread counts. Sweeps that
/// carry the simulated switching metric gain two columns — the mean simulated
/// power and the mean analytic-vs-simulated divergence (in percent) — and a
/// simulated-power figure per Pareto line; analytic sweeps render exactly the
/// historical table.
pub(crate) fn render_summary(results: &ExplorationResults) -> String {
    let sim_on = results
        .points()
        .iter()
        .any(|point| point.metrics.simulated_switch_power.is_some());
    let rule_width = if sim_on { 129 } else { 108 };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "design-space exploration: {} points, {} on the Pareto front (delay x power x area)",
        results.points().len(),
        results.front_indices().len(),
    );
    let _ = write!(
        text,
        "{:<22} | {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>6}",
        "flow",
        "points",
        "best ns",
        "mean ns",
        "best mW",
        "mean mW",
        "best ar",
        "mean ar",
        "pareto"
    );
    if sim_on {
        let _ = write!(text, " | {:>9} {:>8}", "sim mW", "div%");
    }
    text.push('\n');
    let _ = writeln!(text, "{}", "-".repeat(rule_width));
    for summary in results.summaries() {
        let _ = write!(
            text,
            "{:<22} | {:>6} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3} | {:>9.0} {:>9.0} | {:>6}",
            summary.flow.to_string(),
            summary.points,
            summary.best_delay,
            summary.mean_delay,
            summary.best_power,
            summary.mean_power,
            summary.best_area,
            summary.mean_area,
            summary.pareto_points,
        );
        if sim_on {
            let _ = write!(
                text,
                " | {:>9.3} {:>8.2}",
                summary.mean_simulated_power.unwrap_or(0.0),
                summary.mean_divergence.unwrap_or(0.0) * 100.0,
            );
        }
        text.push('\n');
    }
    let _ = writeln!(text, "{}", "-".repeat(rule_width));
    let _ = writeln!(text, "pareto front:");
    for point in results.front() {
        let _ = write!(
            text,
            "  [{:>4}] {:<52} delay {:>8.3} ns  power {:>8.3} mW  area {:>8.0}",
            point.job.index(),
            point.job.label(),
            point.metrics.delay,
            point.metrics.power,
            point.metrics.area,
        );
        if let Some(simulated) = point.metrics.simulated_switch_power {
            let _ = write!(text, "  sim {:>8.3} mW", simulated);
        }
        text.push('\n');
    }
    // Healthy sweeps render exactly the historical text; the quarantine section
    // appears only when the engine actually quarantined jobs.
    if !results.quarantined().is_empty() {
        let _ = writeln!(text, "quarantined jobs ({}):", results.quarantined().len());
        for job in results.quarantined() {
            let _ = writeln!(
                text,
                "  [{:>4}] {:<52} {} attempt(s): {}",
                job.index, job.label, job.attempts, job.reason,
            );
        }
    }
    text
}
