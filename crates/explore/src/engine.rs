//! The job-sharded, multi-threaded exploration engine.

use crate::cache::{CompiledCache, Evaluated};
use crate::error::ExploreError;
use crate::job::Job;
use crate::pareto::{pareto_front, PointMetrics};
use crate::spec::ExplorationSpec;
use crate::summary::{render_summary, summarize_flows, FlowSummary};
use dpsyn_baselines::{FlowResult, FlowSynthesis};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// One evaluated point of the exploration: the job, its metrics and (optionally) the
/// synthesized artifact.
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// The job that produced the point.
    pub job: Job,
    /// Name of the materialized design (workload names include their shape).
    pub design: String,
    /// The extracted quality metrics.
    pub metrics: PointMetrics,
    /// The full flow result (netlist, word map) when the specification retains
    /// artifacts; `None` otherwise.
    pub artifact: Option<FlowResult>,
}

/// The outcome of one exploration: every evaluated point in canonical job order plus
/// the dominance-filtered Pareto front.
#[derive(Debug, Clone)]
pub struct ExplorationResults {
    points: Vec<ExplorationPoint>,
    front: Vec<usize>,
}

impl ExplorationResults {
    /// Every evaluated point, in canonical job order (independent of thread count).
    pub fn points(&self) -> &[ExplorationPoint] {
        &self.points
    }

    /// Indices (into [`Self::points`]) of the Pareto-optimal points over
    /// delay × power × area, ascending.
    pub fn front_indices(&self) -> &[usize] {
        &self.front
    }

    /// Iterates over the Pareto-optimal points in index order.
    pub fn front(&self) -> impl Iterator<Item = &ExplorationPoint> {
        self.front.iter().map(|&index| &self.points[index])
    }

    /// Per-flow aggregate summaries, in order of first appearance in the job matrix.
    pub fn summaries(&self) -> Vec<FlowSummary> {
        summarize_flows(self)
    }

    /// Renders the per-flow summary tables plus the Pareto front as text.
    ///
    /// The rendering is a pure function of the evaluated points, so it is
    /// byte-identical across runs and thread counts.
    pub fn render_summary(&self) -> String {
        render_summary(self)
    }
}

/// The execution schedule of one run: job indices re-ordered so that jobs sharing
/// `(source, width, flow)` — i.e. differing only in their skew/bias profiles — are
/// adjacent, plus the claimable work units. Workers claim whole chunks, so a chunk's
/// delta chain (first point full, later points through the dirty cone) runs on one
/// thread against one cache entry, in an order that is a pure function of the
/// specification (the chunking affects only scheduling, never results — the delta
/// path is bit-identical to the full path by construction).
///
/// Groups larger than `ceil(group_len / threads)` are split into that many-sized
/// chunks so one dominant group can never serialize the run onto a single worker:
/// with more threads than points the schedule degenerates to the old per-job
/// scheduling (maximal parallelism, no delta chains), and with one thread each group
/// is a single maximal delta chain. Chunks of one structure still share the worker's
/// cache when the same worker claims several of them.
struct Schedule {
    /// Job indices, group-major; within a group the canonical (skew, bias) order.
    order: Vec<usize>,
    /// Half-open ranges into `order`, one per claimable chunk.
    chunks: Vec<Range<usize>>,
}

fn schedule(spec: &ExplorationSpec, jobs: &[Job]) -> Schedule {
    // The flow's position in the specification (not its value) keys the sort so the
    // schedule never depends on an ordering of `Flow` itself.
    let flow_rank = |job: &Job| {
        spec.flows
            .iter()
            .position(|flow| *flow == job.flow())
            .unwrap_or(usize::MAX)
    };
    let key = |index: usize| {
        let job = &jobs[index];
        (job.source_index(), job.width(), flow_rank(job))
    };
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Stable: within a group the canonical enumeration order (skew-major) survives.
    order.sort_by_key(|&index| key(index));
    let mut groups: Vec<Range<usize>> = Vec::new();
    for position in 0..order.len() {
        if position == 0 || key(order[position]) != key(order[position - 1]) {
            groups.push(position..position + 1);
        } else if let Some(last) = groups.last_mut() {
            last.end += 1;
        }
    }
    let mut chunks = Vec::with_capacity(groups.len());
    for group in groups {
        let len = group.len();
        let chunk_size = len.div_ceil(spec.threads()).max(1);
        let mut begin = group.start;
        while begin < group.end {
            let end = (begin + chunk_size).min(group.end);
            chunks.push(begin..end);
            begin = end;
        }
    }
    Schedule { order, chunks }
}

/// Runs an exploration: shards the job matrix across the specification's worker
/// threads, evaluates every point, and reduces the results into canonical order plus
/// the Pareto front.
///
/// Workers pull **chunks** of jobs sharing a source, width and flow (see
/// [`Schedule`]) from a shared counter, evaluate the first point of a chunk through
/// the full synthesis + analysis path and the remaining skew/bias points through the
/// per-worker compiled-program cache's delta path — falling back to the full path
/// whenever the synthesized structure does not verify against the cached program.
/// Every result lands in a preallocated slot keyed by its canonical job index, so the
/// returned results are **bit-identical for any worker count** (the delta path's
/// reports are bit-identical to full re-analysis by construction, and the property
/// suites pin that down).
///
/// # Errors
///
/// Returns [`ExploreError::Flow`] when a synthesis flow fails on a job; if several
/// jobs fail, the error of the lowest-indexed job is returned (again independent of
/// the thread count).
pub fn explore(spec: &ExplorationSpec) -> Result<ExplorationResults, ExploreError> {
    let jobs = spec.jobs();
    let plan = schedule(spec, &jobs);
    let next_chunk = AtomicUsize::new(0);
    // One write-once slot per job: no result lock, no post-run sort.
    let slots: Vec<OnceLock<Result<ExplorationPoint, ExploreError>>> =
        jobs.iter().map(|_| OnceLock::new()).collect();
    thread::scope(|scope| {
        for _ in 0..spec.threads() {
            scope.spawn(|| {
                let mut cache = CompiledCache::new();
                loop {
                    let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = plan.chunks.get(chunk) else {
                        break;
                    };
                    for &job_index in &plan.order[range.clone()] {
                        let outcome = evaluate(spec, &jobs[job_index], &mut cache);
                        let stored = slots[job_index].set(outcome);
                        debug_assert!(stored.is_ok(), "every job index is claimed once");
                    }
                }
            });
        }
    });
    let mut points = Vec::with_capacity(jobs.len());
    for slot in slots {
        let outcome = slot
            .into_inner()
            .expect("every job slot is filled by exactly one worker");
        points.push(outcome?);
    }
    let metrics: Vec<PointMetrics> = points.iter().map(|point| point.metrics).collect();
    let front = pareto_front(&metrics);
    Ok(ExplorationResults { points, front })
}

/// Evaluates one job: materializes its design, runs its flow's synthesis, and obtains
/// the metrics (delay from timing analysis, power from probability propagation, area
/// and structure straight off the compiled program). Flows that synthesize without
/// analysing go through the worker's [`CompiledCache`] — a structurally verified hit
/// re-analyses only the dirty cone; everything else takes the full compiled bundle.
fn evaluate(
    spec: &ExplorationSpec,
    job: &Job,
    cache: &mut CompiledCache,
) -> Result<ExplorationPoint, ExploreError> {
    let design = spec.materialize(job);
    let synthesis = job
        .flow()
        .synthesize(
            design.expr(),
            design.spec(),
            design.output_width(),
            spec.tech(),
        )
        .map_err(|source| ExploreError::Flow {
            job: job.label(),
            source,
        })?;
    let evaluated = match synthesis {
        FlowSynthesis::Analyzed(result) => Evaluated {
            delay: result.delay,
            area: result.area,
            switching_energy: result.switching_energy,
            power_mw: result.power_mw,
            cell_count: result.compiled.cell_count(),
            logic_depth: result.compiled.level_count(),
            artifact: spec.retain_artifacts.then_some(*result),
        },
        FlowSynthesis::Unanalyzed(parts) => cache
            .analyze(
                parts.flow,
                parts.netlist,
                parts.word_map,
                design.spec(),
                spec.tech(),
                spec.retain_artifacts,
            )
            .map_err(|source| ExploreError::Flow {
                job: job.label(),
                source,
            })?,
    };
    let metrics = PointMetrics {
        delay: evaluated.delay,
        power: evaluated.power_mw,
        area: evaluated.area,
        switching_energy: evaluated.switching_energy,
        cell_count: evaluated.cell_count,
        logic_depth: evaluated.logic_depth,
    };
    Ok(ExplorationPoint {
        job: job.clone(),
        design: design.name().to_string(),
        metrics,
        artifact: evaluated.artifact,
    })
}
