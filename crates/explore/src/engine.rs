//! The work-stealing, multi-threaded exploration engine.

use crate::cache::{CompiledCache, Evaluated, PointProfiles};
use crate::error::ExploreError;
use crate::job::Job;
use crate::pareto::{pareto_front, PointMetrics};
use crate::sim::{SimCache, SimOutcome};
use crate::spec::{ExplorationSpec, StealPolicy};
use crate::store::{
    profile_digest, stimulus_digest, stimulus_layout_digest, EvalKey, ResultStore, StoreHealth,
    StoredEval,
};
use crate::summary::{render_summary, summarize_flows, FlowSummary};
use dpsyn_baselines::{input_profiles, FlowResult, FlowSynthesis};
use dpsyn_designs::Design;
use std::collections::{BTreeMap, VecDeque};
use std::ops::Range;
use std::sync::{Mutex, OnceLock};
use std::thread;

/// One evaluated point of the exploration: the job, its metrics and (optionally) the
/// synthesized artifact.
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// The job that produced the point.
    pub job: Job,
    /// Name of the materialized design (workload names include their shape).
    pub design: String,
    /// The extracted quality metrics.
    pub metrics: PointMetrics,
    /// The full flow result (netlist, word map) when the specification retains
    /// artifacts; `None` otherwise.
    pub artifact: Option<FlowResult>,
}

/// Bounded retries per job under the engine's catch-unwind supervision: a job
/// whose evaluation panics is retried from a clean per-worker cache state up to
/// this many total attempts, then quarantined ([`QuarantinedJob`]) instead of
/// aborting the sweep.
pub const JOB_ATTEMPT_LIMIT: usize = 3;

/// One job the engine gave up on: every attempt panicked, so the sweep completed
/// without it and reports it here (and in the rendered summary) instead of
/// aborting. Quarantined jobs are deterministic — the same specification and
/// fault plan quarantine the same jobs for every thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedJob {
    /// Canonical index of the job in the specification's matrix.
    pub index: usize,
    /// Human-readable job label (design, axes and flow).
    pub label: String,
    /// Evaluation attempts made before giving up (the retry limit).
    pub attempts: usize,
    /// The panic message of the final attempt.
    pub reason: String,
}

/// The outcome of one exploration: every evaluated point in canonical job order,
/// the dominance-filtered Pareto front, and the jobs quarantined after exhausting
/// their evaluation retries.
#[derive(Debug, Clone)]
pub struct ExplorationResults {
    points: Vec<ExplorationPoint>,
    front: Vec<usize>,
    quarantined: Vec<QuarantinedJob>,
}

impl ExplorationResults {
    /// Every evaluated point, in canonical job order (independent of thread count).
    /// Quarantined jobs contribute no point.
    pub fn points(&self) -> &[ExplorationPoint] {
        &self.points
    }

    /// Jobs whose every evaluation attempt panicked, in canonical job order.
    /// Empty on every healthy sweep.
    pub fn quarantined(&self) -> &[QuarantinedJob] {
        &self.quarantined
    }

    /// Indices (into [`Self::points`]) of the Pareto-optimal points over
    /// delay × power × area, ascending.
    pub fn front_indices(&self) -> &[usize] {
        &self.front
    }

    /// Iterates over the Pareto-optimal points in index order.
    pub fn front(&self) -> impl Iterator<Item = &ExplorationPoint> {
        self.front.iter().map(|&index| &self.points[index])
    }

    /// Per-flow aggregate summaries, in order of first appearance in the job matrix.
    pub fn summaries(&self) -> Vec<FlowSummary> {
        summarize_flows(self)
    }

    /// Renders the per-flow summary tables plus the Pareto front as text.
    ///
    /// The rendering is a pure function of the evaluated points, so it is
    /// byte-identical across runs and thread counts.
    pub fn render_summary(&self) -> String {
        render_summary(self)
    }
}

/// Per-worker scheduling diagnostics of one run. Unlike [`ExplorationResults`] these
/// **vary from run to run** (they record which worker happened to execute what), so
/// they are returned beside the results by [`explore_with_stats`], never inside them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Chunks this worker executed (seeded + stolen).
    pub chunks: usize,
    /// Jobs this worker evaluated.
    pub jobs: usize,
    /// Chunks this worker stole from another worker's queue.
    pub steals: usize,
    /// Jobs this worker served from the persistent result store instead of
    /// evaluating (always 0 when no store is attached or lookups are disabled by
    /// artifact retention).
    pub store_hits: usize,
    /// Simulated-activity contexts this worker built (block-program compile +
    /// stimulus draw). One per `(source, width, flow)` group the worker touches —
    /// the group's later points reuse the context (always 0 without
    /// [`SimActivity`](crate::SimActivity)).
    pub sim_builds: usize,
    /// Points this worker ran the simulated switching metric for.
    pub sim_points: usize,
    /// Simulated points that reused a verified cached context instead of
    /// building one.
    pub sim_reuses: usize,
}

/// Scheduling diagnostics of one exploration, one entry per worker thread.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Per-worker counters, indexed by worker id (spawn order).
    pub workers: Vec<WorkerStats>,
    /// Integrity counters of the attached persistent store at load time
    /// (damaged/quarantined lines, torn tail, rebuild); `None` without a store.
    pub store: Option<StoreHealth>,
}

impl ExploreStats {
    /// Total number of stolen chunks across all workers.
    pub fn total_steals(&self) -> usize {
        self.workers.iter().map(|worker| worker.steals).sum()
    }

    /// Total number of jobs served from the persistent result store.
    pub fn total_store_hits(&self) -> usize {
        self.workers.iter().map(|worker| worker.store_hits).sum()
    }

    /// Total simulated-activity contexts built across all workers; with one
    /// thread this equals the number of `(source, width, flow)` groups touched.
    pub fn total_sim_builds(&self) -> usize {
        self.workers.iter().map(|worker| worker.sim_builds).sum()
    }

    /// Total points the simulated switching metric ran for.
    pub fn total_sim_points(&self) -> usize {
        self.workers.iter().map(|worker| worker.sim_points).sum()
    }

    /// Total simulated points that reused a verified cached context.
    pub fn total_sim_reuses(&self) -> usize {
        self.workers.iter().map(|worker| worker.sim_reuses).sum()
    }

    /// Jobs executed by the busiest and laziest workers — a quick imbalance probe.
    pub fn job_spread(&self) -> (usize, usize) {
        let max = self.workers.iter().map(|w| w.jobs).max().unwrap_or(0);
        let min = self.workers.iter().map(|w| w.jobs).min().unwrap_or(0);
        (max, min)
    }
}

/// The execution schedule of one run: job indices re-ordered so that jobs sharing
/// `(source, width, flow)` — i.e. differing only in their skew/bias profiles — are
/// adjacent, plus the claimable work units. Workers own whole chunks, so a chunk's
/// delta chain (first point full, later points through the dirty cone) runs on one
/// thread against one cache entry, in an order that is a pure function of the
/// specification (the chunking affects only scheduling, never results — the delta
/// path is bit-identical to the full path by construction).
///
/// # Chunk-size invariant
///
/// Each group of `len` jobs is cut into `ceil(len / chunk_size)` chunks with
/// `chunk_size = ceil(len / target)` and `target = min(len, threads × overpartition)`,
/// so for every group:
///
/// * `1 ≤ chunk_size ≤ len` — every chunk is non-empty and no `.max(1)` patch-up is
///   needed (`div_ceil` of a non-empty group by a non-zero target is already ≥ 1);
/// * the group yields at most `min(len, threads × overpartition)` chunks — never more
///   degenerate one-job chunks than the workers can actually use, even when
///   `threads > len`;
/// * with `threads × overpartition ≥ len` the schedule degenerates to per-job chunks
///   (maximal parallelism), and with one thread at `overpartition = 1` each group is
///   a single maximal delta chain.
///
/// The `overpartition` factor (see
/// [`ExplorationSpecBuilder::overpartition`](crate::ExplorationSpecBuilder::overpartition))
/// cuts groups finer than one chunk per worker so stealing can re-balance the tail of
/// a dominant group. Finer chunks cost nothing when they stay on their seeded worker:
/// the worker's [`CompiledCache`] entry survives across consecutive same-group
/// chunks, so only the first chunk of a group **per worker** pays the full
/// compile-and-prime path — every later leader is a verified hash hit that re-runs
/// the delta path, exactly like a mid-chunk point.
struct Schedule {
    /// Job indices, group-major; within a group the canonical (skew, bias) order.
    order: Vec<usize>,
    /// Half-open ranges into `order`, one per claimable chunk.
    chunks: Vec<Range<usize>>,
}

fn schedule(spec: &ExplorationSpec, jobs: &[Job]) -> Schedule {
    // The flow's position in the specification (not its value) keys the sort so the
    // schedule never depends on an ordering of `Flow` itself.
    let flow_rank = |job: &Job| {
        spec.flows
            .iter()
            .position(|flow| *flow == job.flow())
            .unwrap_or(usize::MAX)
    };
    let key = |index: usize| {
        let job = &jobs[index];
        (job.source_index(), job.width(), flow_rank(job))
    };
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Stable: within a group the canonical enumeration order (skew-major) survives.
    order.sort_by_key(|&index| key(index));
    let mut groups: Vec<Range<usize>> = Vec::new();
    for position in 0..order.len() {
        if position == 0 || !jobs[order[position]].is_delta_peer(&jobs[order[position - 1]]) {
            groups.push(position..position + 1);
        } else if let Some(last) = groups.last_mut() {
            last.end += 1;
        }
    }
    let mut chunks = Vec::with_capacity(groups.len());
    for group in groups {
        let len = group.len();
        // See the type-level chunk-size invariant: capping the chunk target at the
        // group length keeps `threads > len` from requesting more one-job chunks
        // than the group has jobs, and `div_ceil` by the non-zero target is ≥ 1.
        let target = spec.threads().saturating_mul(spec.overpartition()).min(len);
        let chunk_size = len.div_ceil(target);
        let mut begin = group.start;
        while begin < group.end {
            let end = (begin + chunk_size).min(group.end);
            chunks.push(begin..end);
            begin = end;
        }
    }
    Schedule { order, chunks }
}

/// Seeds the per-worker chunk queues: contiguous blocks of the group-major chunk
/// list, so consecutive chunks of one group land on one worker and its compiled
/// cache serves the whole group unless a steal re-balances it.
fn seed_queues(chunk_count: usize, workers: usize) -> Vec<VecDeque<usize>> {
    let mut queues = vec![VecDeque::new(); workers];
    for (worker, queue) in queues.iter_mut().enumerate() {
        let begin = chunk_count * worker / workers;
        let end = chunk_count * (worker + 1) / workers;
        queue.extend(begin..end);
    }
    queues
}

/// The shared work-stealing state: one deque of chunk indices per worker.
///
/// Terminology follows the classic work-stealing deque: the **bottom** is the end the
/// owner works at (here the *front* — the next chunk of its seeded, group-major
/// block, preserving cache affinity), the **top** is the end thieves take from (the
/// *back* — the chunk farthest from what the owner is currently warming its cache
/// for). Each deque sits behind its own mutex; chunks are coarse units (a full
/// synthesis + analysis chain each), so the locks are uncontended in practice.
struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    policy: StealPolicy,
}

impl StealQueues {
    fn new(seeded: Vec<VecDeque<usize>>, policy: StealPolicy) -> Self {
        StealQueues {
            queues: seeded.into_iter().map(Mutex::new).collect(),
            policy,
        }
    }

    /// Pops the owner's next chunk from the bottom of its own deque.
    fn pop_own(&self, owner: usize) -> Option<usize> {
        self.queues[owner]
            .lock()
            .expect("worker queues are never poisoned")
            .pop_front()
    }

    /// Steals one chunk from the top of a victim's deque, per the steal policy.
    ///
    /// Returns `None` only when every other queue is empty at scan time — and since
    /// chunks are only ever *removed* after seeding, an all-empty scan proves every
    /// chunk has been claimed, so the thief can retire without losing work.
    fn steal(&self, thief: usize) -> Option<usize> {
        loop {
            let victim = match self.policy {
                StealPolicy::BusiestVictim => self
                    .queues
                    .iter()
                    .enumerate()
                    .filter(|(index, _)| *index != thief)
                    .map(|(index, queue)| {
                        let len = queue
                            .lock()
                            .expect("worker queues are never poisoned")
                            .len();
                        (len, index)
                    })
                    .filter(|(len, _)| *len > 0)
                    .max_by_key(|(len, _)| *len)
                    .map(|(_, index)| index),
                StealPolicy::RoundRobin => (1..self.queues.len())
                    .map(|offset| (thief + offset) % self.queues.len())
                    .find(|&victim| {
                        !self.queues[victim]
                            .lock()
                            .expect("worker queues are never poisoned")
                            .is_empty()
                    }),
            };
            let victim = victim?;
            // The victim may have drained between the scan and this lock; rescan.
            if let Some(chunk) = self.queues[victim]
                .lock()
                .expect("worker queues are never poisoned")
                .pop_back()
            {
                return Some(chunk);
            }
        }
    }
}

/// A read-only preview of the schedule [`explore`] would execute for a
/// specification: the chunk layout (each chunk as its job indices, in claim order)
/// and the seeded per-worker queues (as chunk indices).
///
/// This is introspection for benches and regression tests — the scheduler's chunking
/// and seeding affect only wall-clock time, never results, so the preview carries no
/// correctness weight beyond pinning the documented invariants.
#[derive(Debug, Clone)]
pub struct SchedulePreview {
    chunks: Vec<Vec<usize>>,
    queues: Vec<Vec<usize>>,
}

impl SchedulePreview {
    /// The chunks of the schedule, each listed as the job indices it evaluates in
    /// order (the first job of a chunk is its delta-chain leader).
    pub fn chunks(&self) -> &[Vec<usize>] {
        &self.chunks
    }

    /// The seeded queue of every worker, as indices into [`Self::chunks`]; workers
    /// pop from the front and thieves steal from the back.
    pub fn worker_queues(&self) -> &[Vec<usize>] {
        &self.queues
    }
}

/// Computes the [`SchedulePreview`] of a specification without running anything.
pub fn schedule_preview(spec: &ExplorationSpec) -> SchedulePreview {
    let jobs = spec.jobs();
    let plan = schedule(spec, &jobs);
    let chunks: Vec<Vec<usize>> = plan
        .chunks
        .iter()
        .map(|range| plan.order[range.clone()].to_vec())
        .collect();
    let queues = seed_queues(chunks.len(), spec.threads())
        .into_iter()
        .map(Vec::from)
        .collect();
    SchedulePreview { chunks, queues }
}

/// Runs an exploration: shards the job matrix across the specification's worker
/// threads, evaluates every point, and reduces the results into canonical order plus
/// the Pareto front.
///
/// The scheduler is **work-stealing over group-chunks**: every worker owns a deque
/// of chunk indices seeded contiguously from the group-major [`Schedule`], pops
/// locally from the bottom (keeping consecutive chunks of a group — and therefore
/// their shared compiled-program cache entry — on one thread), and when its own
/// deque runs dry steals from the top of a victim chosen by the specification's
/// [`StealPolicy`], so a dominant `(source, width, flow)` group can never strand the
/// other workers while one of them grinds through it.
///
/// A chunk's first point runs through the full synthesis + analysis path whenever
/// the worker's cache misses (priming the entry), and every other point of the chunk
/// re-analyses through the cache's delta path — falling back to the full path
/// whenever the synthesized structure does not verify against the cached program.
/// Every result lands in a preallocated write-once slot keyed by its canonical job
/// index, so the returned results are **bit-identical for any worker count, steal
/// policy and overpartition factor** (the delta path's reports are bit-identical to
/// full re-analysis by construction, and the property suites pin that down).
///
/// # Errors
///
/// Returns [`ExploreError::Flow`] when a synthesis flow fails on a job; if several
/// jobs fail, the error of the lowest-indexed job is returned (again independent of
/// the thread count).
pub fn explore(spec: &ExplorationSpec) -> Result<ExplorationResults, ExploreError> {
    explore_with_stats(spec).map(|(results, _)| results)
}

/// Like [`explore`], additionally returning the run's scheduling diagnostics
/// ([`ExploreStats`]): per-worker chunk/job/steal/store-hit counters. The results
/// half is bit-identical to [`explore`]'s; the stats half records *this run's*
/// scheduling and may differ between runs.
///
/// When the specification attaches a persistent store
/// ([`ExplorationSpecBuilder::store`](crate::ExplorationSpecBuilder::store)), this
/// is also where the persistence round-trip happens: the memo file is loaded
/// before the run, warm hits are served from it during the run, and the union of
/// old and fresh records is flushed back atomically afterwards.
pub fn explore_with_stats(
    spec: &ExplorationSpec,
) -> Result<(ExplorationResults, ExploreStats), ExploreError> {
    match spec.store_path() {
        None => explore_with_store(spec, None).map(|(results, stats, _)| (results, stats)),
        Some(path) => {
            let mut store = ResultStore::load_with_faults(path, spec.faults().cloned())?;
            let (results, stats, fresh) = explore_with_store(spec, Some(&store))?;
            store.merge(fresh);
            store.flush()?;
            Ok((results, stats))
        }
    }
}

/// The fresh `(key, value)` records one [`explore_with_store`] run evaluated,
/// sorted by key — ready for [`ResultStore::merge`].
pub type FreshRecords = Vec<(EvalKey, StoredEval)>;

/// The lowest-level entry point: runs an exploration against an optional
/// **caller-managed** [`ResultStore`] snapshot and returns the fresh records the
/// run evaluated (sorted by key) alongside the results and stats, leaving the
/// merge/flush policy to the caller. [`explore_with_stats`] builds the simple
/// load–run–flush cycle on top; the server mode shares one store across requests
/// by snapshotting it per request and merging the fresh records back under its own
/// lock.
///
/// Store semantics:
///
/// * Lookups are served at both stages — point-level hits skip the job entirely,
///   analysis-level hits skip the analysis bundle — and always return figures
///   **byte-identical** to fresh evaluation (the store holds exact f64 bit
///   patterns keyed by the exact evaluation identity).
/// * When the specification retains artifacts, lookups are disabled (a memoized
///   record has no netlist to retain, and the retention contract is exact);
///   fresh records are still produced so the run warms the store either way.
/// * `store: None` is precisely the pre-store engine: no keys are computed, no
///   records returned.
///
/// # Errors
///
/// Returns [`ExploreError::Flow`] when a synthesis flow fails on a job (lowest
/// job index wins, independent of thread count). A *panicking* evaluation no
/// longer fails the run at all: each job runs under `catch_unwind` supervision,
/// is retried up to [`JOB_ATTEMPT_LIMIT`] attempts from a clean per-worker cache
/// state, and is quarantined ([`ExplorationResults::quarantined`]) when every
/// attempt panics — the other jobs complete normally.
/// [`ExploreError::WorkerPanic`] remains only as the thread-level fallback for a
/// panic *outside* the supervised evaluation (scheduler internals).
pub fn explore_with_store(
    spec: &ExplorationSpec,
    store: Option<&ResultStore>,
) -> Result<(ExplorationResults, ExploreStats, FreshRecords), ExploreError> {
    let jobs = spec.jobs();
    let plan = schedule(spec, &jobs);
    let workers = spec.threads();
    let queues = StealQueues::new(seed_queues(plan.chunks.len(), workers), spec.steal_policy());
    let memo = store.map(|store| StoreContext {
        store,
        tech_digest: spec.tech().identity_digest(),
    });
    // One write-once slot per job: no result lock, no post-run sort.
    let slots: Vec<OnceLock<JobOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
    let mut stats = ExploreStats {
        workers: Vec::with_capacity(workers),
        store: store.map(ResultStore::health),
    };
    // Fresh records, keyed: the BTreeMap both deduplicates (identical keys carry
    // identical values by evaluation purity) and fixes the return order, so the
    // fresh set is independent of which worker evaluated what.
    let mut fresh = BTreeMap::new();
    let mut panicked = false;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let queues = &queues;
                let plan = &plan;
                let jobs = &jobs;
                let slots = &slots;
                let memo = memo.as_ref();
                scope.spawn(move || {
                    let mut cache = CompiledCache::new();
                    let mut sim_cache = SimCache::new();
                    let mut worker = WorkerStats::default();
                    let mut recorded = Vec::new();
                    loop {
                        let (chunk_index, stolen) = match queues.pop_own(me) {
                            Some(chunk) => (chunk, false),
                            None => match queues.steal(me) {
                                Some(chunk) => (chunk, true),
                                None => break,
                            },
                        };
                        worker.chunks += 1;
                        worker.steals += usize::from(stolen);
                        for &job_index in &plan.order[plan.chunks[chunk_index].clone()] {
                            worker.jobs += 1;
                            let outcome = supervised_evaluate(
                                spec,
                                &jobs[job_index],
                                &mut cache,
                                &mut sim_cache,
                                memo,
                                &mut recorded,
                                &mut worker,
                            );
                            let stored = slots[job_index].set(outcome);
                            debug_assert!(stored.is_ok(), "every job index is claimed once");
                        }
                    }
                    (worker, recorded)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((worker, recorded)) => {
                    stats.workers.push(worker);
                    for (key, value) in recorded {
                        fresh.entry(key).or_insert(value);
                    }
                }
                // A worker thread died outside the supervised evaluation (its
                // panic payload is opaque; the unfilled result slot identifies
                // the job). Keep joining so the remaining workers drain cleanly
                // before the error returns.
                Err(_) => panicked = true,
            }
        }
    });
    if panicked {
        let job = slots
            .iter()
            .position(|slot| slot.get().is_none())
            .unwrap_or(0);
        return Err(ExploreError::WorkerPanic { job });
    }
    let mut points = Vec::with_capacity(jobs.len());
    let mut quarantined = Vec::new();
    let mut first_error = None;
    for (index, slot) in slots.into_iter().enumerate() {
        let outcome = slot
            .into_inner()
            .expect("every job slot is filled by exactly one worker");
        match outcome {
            JobOutcome::Point(point) => points.push(*point),
            // Lowest job index wins, independent of the thread count: slots are
            // scanned in canonical order.
            JobOutcome::Failed(error) => {
                if first_error.is_none() {
                    first_error = Some(error);
                }
            }
            JobOutcome::Quarantined { attempts, reason } => quarantined.push(QuarantinedJob {
                index,
                label: jobs[index].label(),
                attempts,
                reason,
            }),
        }
    }
    if let Some(error) = first_error {
        return Err(error);
    }
    let metrics: Vec<PointMetrics> = points.iter().map(|point| point.metrics).collect();
    let front = pareto_front(&metrics);
    Ok((
        ExplorationResults {
            points,
            front,
            quarantined,
        },
        stats,
        fresh.into_iter().collect(),
    ))
}

/// The supervised outcome of one job, as stored in its write-once result slot.
enum JobOutcome {
    /// The evaluation succeeded (possibly after panicking retries).
    ///
    /// Boxed: a point (metrics + optional retained artifacts) dwarfs the other
    /// variants, and the slot vector holds one slot per job.
    Point(Box<ExplorationPoint>),
    /// The evaluation returned a typed error (flow/sim/store failure).
    Failed(ExploreError),
    /// Every attempt panicked; the job is quarantined instead of failing the run.
    Quarantined {
        /// Attempts made (the retry limit).
        attempts: usize,
        /// Panic message of the final attempt.
        reason: String,
    },
}

/// Best-effort text of a panic payload (`panic!` carries `&str` or `String`).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs [`evaluate`] under `catch_unwind` supervision with bounded deterministic
/// retry: a panicking attempt resets the worker's compiled and sim caches (a
/// panic may have left them mid-update) and truncates the fresh-record tail back
/// to the pre-attempt mark (so the store never keeps records of a poisoned
/// attempt), then retries; after [`JOB_ATTEMPT_LIMIT`] panicking attempts the job
/// is quarantined. Because the retry budget is per *job* (not per worker or
/// wall-clock), the outcome is identical for every thread count.
#[allow(clippy::too_many_arguments)]
fn supervised_evaluate(
    spec: &ExplorationSpec,
    job: &Job,
    cache: &mut CompiledCache,
    sim_cache: &mut SimCache,
    memo: Option<&StoreContext<'_>>,
    recorded: &mut Vec<(EvalKey, StoredEval)>,
    worker: &mut WorkerStats,
) -> JobOutcome {
    for attempt in 1..=JOB_ATTEMPT_LIMIT {
        let mark = recorded.len();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            evaluate(
                spec,
                job,
                &mut *cache,
                &mut *sim_cache,
                memo,
                recorded,
                worker,
            )
        }));
        match caught {
            Ok(Ok(point)) => return JobOutcome::Point(Box::new(point)),
            Ok(Err(error)) => return JobOutcome::Failed(error),
            Err(payload) => {
                recorded.truncate(mark);
                *cache = CompiledCache::new();
                *sim_cache = SimCache::new();
                if attempt == JOB_ATTEMPT_LIMIT {
                    return JobOutcome::Quarantined {
                        attempts: attempt,
                        reason: panic_reason(payload.as_ref()),
                    };
                }
            }
        }
    }
    unreachable!("the attempt loop always returns")
}

/// The store view one run evaluates against: an immutable snapshot plus the tech
/// digest computed once for every key of the run.
struct StoreContext<'a> {
    store: &'a ResultStore,
    tech_digest: u64,
}

/// Reconstructs an exploration point from a memoized record — byte-identical to
/// fresh evaluation because the record stores exact bit patterns. Only reached
/// when artifacts are not retained, so `artifact: None` matches fresh behavior.
/// `sim_on` says whether the sweep carries a simulated metric: its key could only
/// have matched a record of the same kind, so the stored `simulated_switch_power`
/// is meaningful exactly then.
fn point_from_stored(
    job: &Job,
    design: &Design,
    stored: StoredEval,
    sim_on: bool,
) -> ExplorationPoint {
    ExplorationPoint {
        job: job.clone(),
        design: design.name().to_string(),
        metrics: PointMetrics {
            delay: stored.delay,
            power: stored.power_mw,
            area: stored.area,
            switching_energy: stored.switching_energy,
            cell_count: stored.cell_count,
            logic_depth: stored.logic_depth,
            simulated_switch_power: sim_on.then_some(stored.simulated_switch_power),
        },
        artifact: None,
    }
}

/// The storable figures of a freshly evaluated point; an analytic sweep stores a
/// zero simulated figure (its key's zero stimulus digest keeps it from ever being
/// read back as a simulated one).
fn stored_from(evaluated: &Evaluated, simulated: Option<f64>) -> StoredEval {
    StoredEval {
        delay: evaluated.delay,
        area: evaluated.area,
        switching_energy: evaluated.switching_energy,
        power_mw: evaluated.power_mw,
        cell_count: evaluated.cell_count,
        logic_depth: evaluated.logic_depth,
        simulated_switch_power: simulated.unwrap_or(0.0),
    }
}

/// Evaluates one job: materializes its design, runs its flow's synthesis, and obtains
/// the metrics (delay from timing analysis, power from probability propagation, area
/// and structure straight off the compiled program). Flows that synthesize without
/// analysing go through the worker's [`CompiledCache`] — a structurally verified hit
/// re-analyses only the dirty cone; everything else takes the full compiled bundle.
///
/// With a [`StoreContext`] attached the job additionally consults the persistent
/// store — a point-level hit skips even synthesis, an analysis-level hit skips the
/// analysis bundle — and appends its own records to `recorded`. Lookups are
/// skipped (but records still produced) when artifacts are retained; see
/// [`explore_with_store`].
///
/// When the specification carries a [`SimActivity`](crate::SimActivity), the
/// synthesized netlist additionally runs through the worker's [`SimCache`] — the
/// group's compiled block program and shared stimulus batch absorb every later
/// point — and both store keys fold the stimulus digest, so simulated and
/// analytic records never alias.
fn evaluate(
    spec: &ExplorationSpec,
    job: &Job,
    cache: &mut CompiledCache,
    sim_cache: &mut SimCache,
    memo: Option<&StoreContext<'_>>,
    recorded: &mut Vec<(EvalKey, StoredEval)>,
    worker: &mut WorkerStats,
) -> Result<ExplorationPoint, ExploreError> {
    // Fault hook first: injected panics and stalls must fire on *every* attempt,
    // including warm reruns that would otherwise short-circuit on a store hit.
    if let Some(faults) = spec.faults() {
        faults.on_job_attempt(job.index());
    }
    let design = spec.materialize(job);
    #[cfg(test)]
    if design.name() == "__panic__" {
        panic!("injected evaluation panic (worker-panic tests only)");
    }
    let activity = spec.sim_activity();
    let sim_on = activity.is_some();
    let lookups = memo.filter(|_| !spec.retain_artifacts);
    let point_key = memo.map(|context| {
        let stimulus = activity.map(stimulus_digest).unwrap_or(0);
        EvalKey::point(&design, job.flow(), context.tech_digest, stimulus)
    });
    if let (Some(context), Some(key)) = (lookups, point_key.as_ref()) {
        if let Some(stored) = context.store.lookup(key) {
            worker.store_hits += 1;
            return Ok(point_from_stored(job, &design, stored, sim_on));
        }
    }
    let synthesis = job
        .flow()
        .synthesize(
            design.expr(),
            design.spec(),
            design.output_width(),
            spec.tech(),
        )
        .map_err(|source| ExploreError::Flow {
            job: job.label(),
            source,
        })?;
    // Runs the simulated switching metric on one synthesized netlist through the
    // worker's per-group context cache, tallying build/reuse counters.
    let mut simulate = |netlist: &dpsyn_netlist::Netlist,
                        word_map: &dpsyn_netlist::WordMap,
                        worker: &mut WorkerStats|
     -> Result<Option<f64>, ExploreError> {
        let Some(activity) = activity else {
            return Ok(None);
        };
        let (power, outcome) = sim_cache
            .simulate(activity, netlist, word_map, design.spec(), spec.tech())
            .map_err(|message| ExploreError::Sim {
                job: job.label(),
                message,
            })?;
        worker.sim_points += 1;
        match outcome {
            SimOutcome::Built => worker.sim_builds += 1,
            SimOutcome::Reused => worker.sim_reuses += 1,
        }
        Ok(Some(power))
    };
    let (evaluated, simulated) = match synthesis {
        FlowSynthesis::Analyzed(result) => {
            let simulated = simulate(&result.netlist, &result.word_map, worker)?;
            (
                Evaluated {
                    delay: result.delay,
                    area: result.area,
                    switching_energy: result.switching_energy,
                    power_mw: result.power_mw,
                    cell_count: result.compiled.cell_count(),
                    logic_depth: result.compiled.level_count(),
                    artifact: spec.retain_artifacts.then_some(*result),
                },
                simulated,
            )
        }
        FlowSynthesis::Unanalyzed(parts) => {
            let (arrivals, probabilities) = input_profiles(&parts.word_map, design.spec());
            let analysis_key = memo.map(|context| {
                let stimulus = activity
                    .map(|activity| {
                        stimulus_layout_digest(stimulus_digest(activity), &parts.word_map)
                    })
                    .unwrap_or(0);
                EvalKey::analysis(
                    &parts.netlist,
                    context.tech_digest,
                    parts.flow,
                    profile_digest(&arrivals, &probabilities),
                    stimulus,
                )
            });
            if let (Some(context), Some(key)) = (lookups, analysis_key.as_ref()) {
                if let Some(stored) = context.store.lookup(key) {
                    worker.store_hits += 1;
                    // Promote the hit to a point-level record so the next run
                    // skips this job's synthesis too.
                    if let Some(point_key) = point_key {
                        recorded.push((point_key, stored));
                    }
                    return Ok(point_from_stored(job, &design, stored, sim_on));
                }
            }
            // Simulate before `analyze` consumes the netlist by value.
            let simulated = simulate(&parts.netlist, &parts.word_map, worker)?;
            let evaluated = cache
                .analyze(
                    parts.flow,
                    parts.netlist,
                    parts.word_map,
                    PointProfiles {
                        arrivals: &arrivals,
                        probabilities: &probabilities,
                    },
                    spec.tech(),
                    spec.retain_artifacts,
                )
                .map_err(|source| ExploreError::Flow {
                    job: job.label(),
                    source,
                })?;
            if let Some(key) = analysis_key {
                recorded.push((key, stored_from(&evaluated, simulated)));
            }
            (evaluated, simulated)
        }
    };
    if let Some(key) = point_key {
        recorded.push((key, stored_from(&evaluated, simulated)));
    }
    let metrics = PointMetrics {
        delay: evaluated.delay,
        power: evaluated.power_mw,
        area: evaluated.area,
        switching_energy: evaluated.switching_energy,
        cell_count: evaluated.cell_count,
        logic_depth: evaluated.logic_depth,
        simulated_switch_power: simulated,
    };
    Ok(ExplorationPoint {
        job: job.clone(),
        design: design.name().to_string(),
        metrics,
        artifact: evaluated.artifact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BiasProfile, SkewProfile};
    use dpsyn_baselines::Flow;

    /// A workload spec whose matrix has one group of `skews × biases` jobs per
    /// `(width, flow)` combination.
    fn spec(threads: usize, overpartition: usize) -> ExplorationSpec {
        ExplorationSpec::builder()
            .sum_workload(3)
            .widths([3, 4])
            .skews([
                SkewProfile::Keep,
                SkewProfile::Uniform(1.0),
                SkewProfile::Uniform(2.0),
            ])
            .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
            .flows([Flow::Conventional, Flow::FaAot])
            .threads(threads)
            .overpartition(overpartition)
            .build()
            .expect("schedule test spec is well-formed")
    }

    /// Every chunk is non-empty, covers each job exactly once, never mixes groups,
    /// and respects the documented per-group chunk-count cap.
    fn assert_schedule_invariants(spec: &ExplorationSpec) {
        let jobs = spec.jobs();
        let preview = schedule_preview(spec);
        let mut seen = vec![false; jobs.len()];
        for chunk in preview.chunks() {
            assert!(!chunk.is_empty(), "degenerate empty chunk");
            for &job_index in chunk {
                assert!(!seen[job_index], "job {job_index} scheduled twice");
                seen[job_index] = true;
                assert!(
                    jobs[chunk[0]].is_delta_peer(&jobs[job_index]),
                    "chunk mixes groups"
                );
            }
        }
        assert!(seen.iter().all(|&claimed| claimed), "schedule misses jobs");
        // Per-group chunk cap: count chunks per (source, width, flow) group.
        let cap = spec.threads() * spec.overpartition();
        let mut group_chunks: Vec<(usize, usize)> = Vec::new(); // (leader job, chunks)
        for chunk in preview.chunks() {
            match group_chunks
                .iter_mut()
                .find(|(leader, _)| jobs[*leader].is_delta_peer(&jobs[chunk[0]]))
            {
                Some((_, count)) => *count += 1,
                None => group_chunks.push((chunk[0], 1)),
            }
        }
        for (leader, count) in group_chunks {
            let group_len = jobs
                .iter()
                .filter(|job| job.is_delta_peer(&jobs[leader]))
                .count();
            assert!(
                count <= cap.min(group_len),
                "group of {group_len} jobs split into {count} chunks (cap {})",
                cap.min(group_len)
            );
        }
        // Seeding: every chunk index queued exactly once, in contiguous blocks.
        let queued: Vec<usize> = preview
            .worker_queues()
            .iter()
            .flat_map(|queue| queue.iter().copied())
            .collect();
        assert_eq!(queued, (0..preview.chunks().len()).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_respects_invariants_across_thread_counts() {
        for threads in [1, 2, 3, 4, 7, 8, 64] {
            for overpartition in [1, 2, 4] {
                assert_schedule_invariants(&spec(threads, overpartition));
            }
        }
    }

    #[test]
    fn more_threads_than_jobs_emits_at_most_one_chunk_per_job() {
        // 24 jobs under 64 workers: the old `ceil(len/threads)` sizing already gave
        // one-job chunks; the tightened target additionally caps the chunk count at
        // the group length, so there are never more (degenerate) chunks than jobs.
        let spec = spec(64, 4);
        let preview = schedule_preview(&spec);
        assert_eq!(preview.chunks().len(), spec.jobs().len());
        assert!(preview.chunks().iter().all(|chunk| chunk.len() == 1));
        // The seeded queues still cover every chunk despite idle tail workers.
        let seeded: usize = preview.worker_queues().iter().map(Vec::len).sum();
        assert_eq!(seeded, preview.chunks().len());
    }

    #[test]
    fn single_thread_without_overpartition_is_one_chunk_per_group() {
        let spec = spec(1, 1);
        let preview = schedule_preview(&spec);
        // 2 widths × 2 flows = 4 groups of skews × biases = 6 jobs each.
        assert_eq!(preview.chunks().len(), 4);
        assert!(preview.chunks().iter().all(|chunk| chunk.len() == 6));
        assert_eq!(preview.worker_queues().len(), 1);
        assert_eq!(preview.worker_queues()[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn overpartition_splits_groups_finer_for_stealing() {
        // Groups of 6 at 2 threads: overpartition 1 → chunks of 3; overpartition 4
        // (target 8 > len 6) → per-job chunks.
        let coarse = schedule_preview(&spec(2, 1));
        assert!(coarse.chunks().iter().all(|chunk| chunk.len() == 3));
        let fine = schedule_preview(&spec(2, 4));
        assert!(fine.chunks().iter().all(|chunk| chunk.len() == 1));
    }

    #[test]
    fn remainder_groups_keep_chunks_within_one_of_each_other() {
        // A 5-job group at 2 threads, overpartition 1: ceil(5/2) = 3 → chunks of
        // 3 and 2 — the remainder chunk is smaller, never empty.
        let spec = ExplorationSpec::builder()
            .sum_workload(3)
            .width(3)
            .skews([
                SkewProfile::Keep,
                SkewProfile::Uniform(1.0),
                SkewProfile::Uniform(2.0),
                SkewProfile::Uniform(3.0),
                SkewProfile::Uniform(4.0),
            ])
            .flow(Flow::Conventional)
            .threads(2)
            .overpartition(1)
            .build()
            .expect("spec is well-formed");
        let preview = schedule_preview(&spec);
        let sizes: Vec<usize> = preview.chunks().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2]);
    }

    /// A fixed design whose evaluation panics (the `__panic__` injection hook in
    /// [`evaluate`] is compiled under `cfg(test)` only).
    fn panicking_design() -> dpsyn_designs::Design {
        let healthy = dpsyn_designs::x_squared();
        dpsyn_designs::Design::new(
            "__panic__",
            "injected panic for worker-panic tests",
            &healthy.expr().to_string(),
            healthy.spec().clone(),
            healthy.output_width(),
        )
    }

    #[test]
    fn panicking_jobs_are_retried_then_quarantined_not_fatal() {
        // The panicking design sits *after* a healthy one, so its job indices are
        // 2 and 3 (two flows per design) and healthy jobs complete around it. Its
        // evaluation panics on *every* attempt, so both jobs exhaust the retry
        // budget and land in quarantine — the sweep itself still succeeds, with
        // identical results for every thread count.
        for threads in [1, 2, 4] {
            let spec = ExplorationSpec::builder()
                .design(dpsyn_designs::x_squared())
                .design(panicking_design())
                .flows([Flow::FaAot, Flow::Conventional])
                .threads(threads)
                .seed(7)
                .build()
                .expect("panic-injection spec is well-formed");
            let results = explore(&spec).expect("a poisoned job must not fail the sweep");
            assert_eq!(
                results.points().len(),
                2,
                "the healthy design's two jobs complete"
            );
            let indices: Vec<usize> = results.quarantined().iter().map(|job| job.index).collect();
            assert_eq!(indices, vec![2, 3], "quarantine order is canonical");
            for job in results.quarantined() {
                assert_eq!(job.attempts, JOB_ATTEMPT_LIMIT, "full retry budget spent");
                assert!(
                    job.reason.contains("injected evaluation panic"),
                    "the panic message is preserved (got {:?})",
                    job.reason
                );
                assert!(
                    job.label.contains("__panic__"),
                    "the label names the poisoned design (got {:?})",
                    job.label
                );
            }
            let summary = results.render_summary();
            assert!(
                summary.contains("quarantined jobs (2):"),
                "the summary reports the quarantine section"
            );
        }
    }

    #[test]
    fn transient_panics_are_retried_to_success() {
        // A fault plan that panics job 2's first attempt only: the supervised
        // retry succeeds on attempt 2 and the sweep is complete — no quarantine,
        // and the results match a fault-free run of the same spec.
        let build = |faults: Option<std::sync::Arc<crate::faults::FaultPlan>>| {
            let mut builder = ExplorationSpec::builder()
                .sum_workload(2)
                .widths([3, 4])
                .flows([Flow::Conventional])
                .threads(2)
                .seed(11);
            if let Some(plan) = faults {
                builder = builder.faults(plan);
            }
            builder.build().expect("spec is well-formed")
        };
        let plan = crate::faults::FaultPlan::builder().panic_job(1, 1).build();
        let faulted = build(Some(std::sync::Arc::clone(&plan)));
        let results = explore(&faulted).expect("one transient panic must be retried");
        assert!(results.quarantined().is_empty(), "the retry succeeded");
        assert_eq!(plan.job_attempts(1), 2, "attempt 1 panicked, attempt 2 ran");
        let clean = explore(&build(None)).expect("fault-free run");
        assert_eq!(
            results.render_summary(),
            clean.render_summary(),
            "recovered results are byte-identical to the fault-free run"
        );
    }

    #[test]
    fn sim_contexts_are_built_once_per_group_and_reused() {
        use crate::spec::SimActivity;
        // 2 widths × 2 flows = 4 (source, width, flow) groups of 3 skews × 2
        // biases = 6 jobs each. One worker, overpartition 1: every group runs as
        // one chunk. Both flows bind modules without looking at input profiles,
        // so every point of a group synthesizes the identical structure and the
        // simulated metric must compile exactly one block program (and draw one
        // stimulus batch) per group, absorbing the other five points as verified
        // reuses. (Profile-steered flows like the FA-tree family synthesize
        // different structures per skew and legitimately build more.)
        let spec = ExplorationSpec::builder()
            .sum_workload(3)
            .widths([3, 4])
            .skews([
                SkewProfile::Keep,
                SkewProfile::Uniform(1.0),
                SkewProfile::Uniform(2.0),
            ])
            .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
            .flows([Flow::Conventional, Flow::CsaOpt])
            .threads(1)
            .overpartition(1)
            .sim_activity(SimActivity {
                seed: 11,
                vectors: 512,
            })
            .build()
            .expect("sim reuse spec is well-formed");
        let (results, stats) = explore_with_stats(&spec).expect("sim sweep runs");
        assert_eq!(results.points().len(), 24);
        assert_eq!(stats.total_sim_points(), 24, "every point is simulated");
        assert_eq!(
            stats.total_sim_builds(),
            4,
            "one block program + stimulus batch per (source, width, flow) group"
        );
        assert_eq!(stats.total_sim_reuses(), 20);
        for point in results.points() {
            let simulated = point
                .metrics
                .simulated_switch_power
                .expect("sim metric present on every point");
            assert!(simulated.is_finite() && simulated > 0.0);
        }
        let text = results.render_summary();
        assert!(text.contains("sim mW"), "summary gains the sim column");
        assert!(text.contains("div%"), "summary gains the divergence column");

        // An analytic sweep of the same matrix carries no simulated metric and
        // renders the historical table.
        let analytic = ExplorationSpec::builder()
            .sum_workload(3)
            .widths([3, 4])
            .skews([
                SkewProfile::Keep,
                SkewProfile::Uniform(1.0),
                SkewProfile::Uniform(2.0),
            ])
            .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
            .flows([Flow::Conventional, Flow::CsaOpt])
            .threads(1)
            .overpartition(1)
            .build()
            .expect("analytic twin is well-formed");
        let (results, stats) = explore_with_stats(&analytic).expect("analytic sweep runs");
        assert_eq!(stats.total_sim_points(), 0);
        assert_eq!(stats.total_sim_builds(), 0);
        assert!(results
            .points()
            .iter()
            .all(|point| point.metrics.simulated_switch_power.is_none()));
        assert!(!results.render_summary().contains("sim mW"));
    }

    #[test]
    fn steal_queues_drain_exactly_once_under_both_policies() {
        for policy in [StealPolicy::BusiestVictim, StealPolicy::RoundRobin] {
            let queues = StealQueues::new(seed_queues(10, 3), policy);
            // Worker 2 drains its own queue then steals everything else dry.
            let mut claimed = Vec::new();
            while let Some(chunk) = queues.pop_own(2) {
                claimed.push(chunk);
            }
            while let Some(chunk) = queues.steal(2) {
                claimed.push(chunk);
            }
            claimed.sort_unstable();
            assert_eq!(claimed, (0..10).collect::<Vec<_>>());
            assert_eq!(
                queues.steal(0),
                None,
                "drained queues have nothing to steal"
            );
        }
    }
}
