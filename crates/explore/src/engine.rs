//! The job-sharded, multi-threaded exploration engine.

use crate::error::ExploreError;
use crate::job::Job;
use crate::pareto::{pareto_front, PointMetrics};
use crate::spec::ExplorationSpec;
use crate::summary::{render_summary, summarize_flows, FlowSummary};
use dpsyn_baselines::FlowResult;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// One evaluated point of the exploration: the job, its metrics and (optionally) the
/// synthesized artifact.
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// The job that produced the point.
    pub job: Job,
    /// Name of the materialized design (workload names include their shape).
    pub design: String,
    /// The extracted quality metrics.
    pub metrics: PointMetrics,
    /// The full flow result (netlist, word map) when the specification retains
    /// artifacts; `None` otherwise.
    pub artifact: Option<FlowResult>,
}

/// The outcome of one exploration: every evaluated point in canonical job order plus
/// the dominance-filtered Pareto front.
#[derive(Debug, Clone)]
pub struct ExplorationResults {
    points: Vec<ExplorationPoint>,
    front: Vec<usize>,
}

impl ExplorationResults {
    /// Every evaluated point, in canonical job order (independent of thread count).
    pub fn points(&self) -> &[ExplorationPoint] {
        &self.points
    }

    /// Indices (into [`Self::points`]) of the Pareto-optimal points over
    /// delay × power × area, ascending.
    pub fn front_indices(&self) -> &[usize] {
        &self.front
    }

    /// Iterates over the Pareto-optimal points in index order.
    pub fn front(&self) -> impl Iterator<Item = &ExplorationPoint> {
        self.front.iter().map(|&index| &self.points[index])
    }

    /// Per-flow aggregate summaries, in order of first appearance in the job matrix.
    pub fn summaries(&self) -> Vec<FlowSummary> {
        summarize_flows(self)
    }

    /// Renders the per-flow summary tables plus the Pareto front as text.
    ///
    /// The rendering is a pure function of the evaluated points, so it is
    /// byte-identical across runs and thread counts.
    pub fn render_summary(&self) -> String {
        render_summary(self)
    }
}

/// Runs an exploration: shards the job matrix across the specification's worker
/// threads, evaluates every point, and reduces the results into canonical order plus
/// the Pareto front.
///
/// Workers pull jobs from a shared counter (dynamic load balancing), but every result
/// is keyed by its job index and re-assembled in canonical order, and every job is a
/// pure function of the specification — so the returned results are **bit-identical
/// for any worker count**.
///
/// # Errors
///
/// Returns [`ExploreError::Flow`] when a synthesis flow fails on a job; if several
/// jobs fail, the error of the lowest-indexed job is returned (again independent of
/// the thread count).
pub fn explore(spec: &ExplorationSpec) -> Result<ExplorationResults, ExploreError> {
    let jobs = spec.jobs();
    let next_job = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<ExplorationPoint, ExploreError>)>> =
        Mutex::new(Vec::with_capacity(jobs.len()));
    thread::scope(|scope| {
        for _ in 0..spec.threads() {
            scope.spawn(|| loop {
                let index = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else {
                    break;
                };
                let outcome = evaluate(spec, job);
                collected
                    .lock()
                    .expect("a worker panicked while holding the results lock")
                    .push((index, outcome));
            });
        }
    });
    let mut collected = collected
        .into_inner()
        .expect("a worker panicked while holding the results lock");
    collected.sort_by_key(|(index, _)| *index);
    let mut points = Vec::with_capacity(collected.len());
    for (_, outcome) in collected {
        points.push(outcome?);
    }
    let metrics: Vec<PointMetrics> = points.iter().map(|point| point.metrics).collect();
    let front = pareto_front(&metrics);
    Ok(ExplorationResults { points, front })
}

/// Evaluates one job: materializes its design, runs its flow, and extracts the
/// metrics (delay from timing analysis, power from probability propagation, area and
/// structure straight off the flow's compiled program — the netlist is compiled once
/// per point and never re-traversed here).
fn evaluate(spec: &ExplorationSpec, job: &Job) -> Result<ExplorationPoint, ExploreError> {
    let design = spec.materialize(job);
    let result = job
        .flow()
        .run(
            design.expr(),
            design.spec(),
            design.output_width(),
            spec.tech(),
        )
        .map_err(|source| ExploreError::Flow {
            job: job.label(),
            source,
        })?;
    let metrics = PointMetrics {
        delay: result.delay,
        power: result.power_mw,
        area: result.area,
        switching_energy: result.switching_energy,
        cell_count: result.compiled.cell_count(),
        logic_depth: result.compiled.level_count(),
    };
    Ok(ExplorationPoint {
        job: job.clone(),
        design: design.name().to_string(),
        metrics,
        artifact: spec.retain_artifacts.then_some(result),
    })
}
