//! Seeded, deterministic fault injection for the exploration stack.
//!
//! A [`FaultPlan`] describes *exactly* which operations of a run fail and how:
//! store reads and writes are numbered 1, 2, 3, … in the order the store performs
//! them, job evaluations are numbered per job index by attempt, and every injected
//! failure fires at the step the plan names — never randomly. Replaying the same
//! plan against the same specification therefore reproduces the same failure
//! byte-for-byte, which is what lets the `tests/fault_injection.rs` wall assert
//! *byte-identical recovery* rather than "it didn't crash".
//!
//! The plan is threaded through three layers:
//!
//! * **Store** ([`ResultStore`](crate::ResultStore)): [`WriteFault`]s model a
//!   process killed mid-flush — an outright I/O error, a torn write (a truncated
//!   prefix lands in the memo file), or a crash after the temp file is written but
//!   before the rename. Read faults model an unavailable backing file.
//! * **Engine** ([`explore`](crate::explore)): [`FaultPlanBuilder::panic_job`]
//!   makes a job's evaluation panic for its first N attempts, exercising the
//!   engine's catch-unwind supervision (bounded retry, then quarantine);
//!   [`FaultPlanBuilder::stall_job`] delays a job, exercising the server's
//!   admission control.
//! * **Serve**: the server loads its store through the plan (degraded-mode
//!   startup) and flushes through it (degraded-mode recovery); slow or garbage
//!   *client* bytes are produced with [`deterministic_garbage`] by the test
//!   harness itself.
//!
//! A plan carries internal step counters, so one built plan describes **one**
//! run; build a fresh plan (same recipe) for every replay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How one injected store write fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write fails outright with an I/O error before any byte is written.
    Error,
    /// A torn write: only the first `keep_bytes` bytes of the canonical file
    /// content reach the memo file (the tear *is* renamed into place, modeling a
    /// kill after the data loss), then the flush reports the injected error.
    Torn {
        /// Bytes of the canonical file content that survive the tear.
        keep_bytes: usize,
    },
    /// The temp file is fully written but the process "dies" before the atomic
    /// rename: the memo file keeps its previous content and the temp file is
    /// left behind, exactly as a mid-flush kill would.
    CrashBeforeRename,
}

/// A deterministic fault-injection plan; see the [module docs](self). Build one
/// with [`FaultPlan::builder`] and attach it via
/// [`ExplorationSpecBuilder::faults`](crate::ExplorationSpecBuilder::faults) or
/// `ServeConfig::faults`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// `(job index, attempts that panic)` — the job's first N attempts panic.
    panics: Vec<(usize, u64)>,
    /// `(job index, stall)` — every attempt of the job sleeps first.
    stalls: Vec<(usize, Duration)>,
    /// Exact write ops (1-based) that fail, with their failure mode.
    write_faults: Vec<(u64, WriteFault)>,
    /// Inclusive 1-based write-op range that fails with [`WriteFault::Error`].
    write_outage: Option<(u64, u64)>,
    /// Exact read ops (1-based) that fail.
    read_faults: Vec<u64>,
    /// Inclusive 1-based read-op range that fails.
    read_outage: Option<(u64, u64)>,
    /// Store write ops performed so far.
    write_ops: AtomicU64,
    /// Store read ops performed so far.
    read_ops: AtomicU64,
    /// Evaluation attempts per job index. Keyed by job — not by worker or
    /// wall-clock — so the injected panics fire identically for every thread
    /// count and steal schedule.
    attempts: Mutex<std::collections::BTreeMap<usize, u64>>,
}

impl FaultPlan {
    /// Starts building a plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// Store write operations the plan has seen so far (1-based after the first).
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::SeqCst)
    }

    /// Store read operations the plan has seen so far.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::SeqCst)
    }

    /// Evaluation attempts the plan has seen for one job index.
    pub fn job_attempts(&self, job: usize) -> u64 {
        self.attempts
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&job)
            .copied()
            .unwrap_or(0)
    }

    /// Engine hook: counts one evaluation attempt of `job`, sleeps through a
    /// configured stall, and panics when the attempt is within the job's
    /// configured panic budget. Runs under the engine's catch-unwind supervision.
    pub(crate) fn on_job_attempt(&self, job: usize) {
        let attempt = {
            let mut attempts = self
                .attempts
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let entry = attempts.entry(job).or_insert(0);
            *entry += 1;
            *entry
        };
        if let Some((_, stall)) = self.stalls.iter().find(|(index, _)| *index == job) {
            std::thread::sleep(*stall);
        }
        if let Some((_, failing)) = self.panics.iter().find(|(index, _)| *index == job) {
            if attempt <= *failing {
                panic!("injected evaluation fault: job {job} attempt {attempt}");
            }
        }
    }

    /// Store hook: counts one write op and returns the fault injected at this
    /// step, if any (an exact per-op fault wins over an outage range).
    pub(crate) fn next_store_write_fault(&self) -> Option<WriteFault> {
        let op = self.write_ops.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(&(_, fault)) = self.write_faults.iter().find(|(at, _)| *at == op) {
            return Some(fault);
        }
        match self.write_outage {
            Some((from, to)) if (from..=to).contains(&op) => Some(WriteFault::Error),
            _ => None,
        }
    }

    /// Store hook: counts one read op and returns the injected failure reason,
    /// if this step is faulted.
    pub(crate) fn next_store_read_fault(&self) -> Option<String> {
        let op = self.read_ops.fetch_add(1, Ordering::SeqCst) + 1;
        let outage = matches!(self.read_outage, Some((from, to)) if (from..=to).contains(&op));
        (self.read_faults.contains(&op) || outage)
            .then(|| format!("injected store read fault (op {op})"))
    }
}

/// Builder for a [`FaultPlan`]; every method names the deterministic step the
/// fault fires at.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Makes the first `attempts` evaluation attempts of job `job` panic; the
    /// attempt after that succeeds. Use an attempt count at or above the engine's
    /// retry limit ([`JOB_ATTEMPT_LIMIT`](crate::JOB_ATTEMPT_LIMIT)) to poison the
    /// job permanently (retried, then quarantined).
    pub fn panic_job(mut self, job: usize, attempts: u64) -> Self {
        self.plan.panics.push((job, attempts));
        self
    }

    /// Makes every evaluation attempt of job `job` sleep for `stall` first —
    /// a deterministic "slow job" for admission-control tests.
    pub fn stall_job(mut self, job: usize, stall: Duration) -> Self {
        self.plan.stalls.push((job, stall));
        self
    }

    /// Injects `fault` at the store's `op`-th write (1-based).
    pub fn store_write_fault(mut self, op: u64, fault: WriteFault) -> Self {
        self.plan.write_faults.push((op, fault));
        self
    }

    /// Fails every store write in the inclusive 1-based op range `[from, to]`
    /// with [`WriteFault::Error`] — `(1, u64::MAX)` is a permanent outage.
    pub fn store_write_outage(mut self, from: u64, to: u64) -> Self {
        self.plan.write_outage = Some((from, to));
        self
    }

    /// Fails the store's `op`-th read (1-based) with an injected I/O error.
    pub fn store_read_fault(mut self, op: u64) -> Self {
        self.plan.read_faults.push(op);
        self
    }

    /// Fails every store read in the inclusive 1-based op range `[from, to]` —
    /// `(1, u64::MAX)` models a permanently unavailable backing file.
    pub fn store_read_outage(mut self, from: u64, to: u64) -> Self {
        self.plan.read_outage = Some((from, to));
        self
    }

    /// Finishes the plan. The `Arc` is what the spec and the server share: one
    /// plan instance carries one run's step counters.
    pub fn build(self) -> Arc<FaultPlan> {
        Arc::new(self.plan)
    }
}

/// Deterministic printable garbage (no newlines, no whitespace): `len` bytes in
/// `'!'..='~'` drawn from a splitmix64 stream seeded with `seed`. Test harnesses
/// stream this at the server to model a malformed or malicious client.
pub fn deterministic_garbage(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut word = state;
        word = (word ^ (word >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        word = (word ^ (word >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        word ^= word >> 31;
        out.push(b'!' + (word % 94) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_faults_fire_at_their_exact_op() {
        let plan = FaultPlan::builder()
            .store_write_fault(2, WriteFault::Torn { keep_bytes: 7 })
            .store_write_outage(4, 5)
            .build();
        assert_eq!(plan.next_store_write_fault(), None);
        assert_eq!(
            plan.next_store_write_fault(),
            Some(WriteFault::Torn { keep_bytes: 7 })
        );
        assert_eq!(plan.next_store_write_fault(), None);
        assert_eq!(plan.next_store_write_fault(), Some(WriteFault::Error));
        assert_eq!(plan.next_store_write_fault(), Some(WriteFault::Error));
        assert_eq!(plan.next_store_write_fault(), None);
        assert_eq!(plan.write_ops(), 6);
    }

    #[test]
    fn read_outages_cover_their_range() {
        let plan = FaultPlan::builder()
            .store_read_fault(1)
            .store_read_outage(3, u64::MAX)
            .build();
        assert!(plan.next_store_read_fault().is_some());
        assert!(plan.next_store_read_fault().is_none());
        assert!(plan.next_store_read_fault().is_some());
        assert!(plan.next_store_read_fault().is_some());
        assert_eq!(plan.read_ops(), 4);
    }

    #[test]
    fn job_panics_respect_their_attempt_budget() {
        let plan = FaultPlan::builder().panic_job(3, 2).build();
        for expected in 1..=2 {
            let clone = Arc::clone(&plan);
            let caught = std::panic::catch_unwind(move || clone.on_job_attempt(3));
            assert!(caught.is_err(), "attempt {expected} must panic");
        }
        plan.on_job_attempt(3); // third attempt succeeds
        plan.on_job_attempt(4); // unconfigured jobs never panic
        assert_eq!(plan.job_attempts(3), 3);
        assert_eq!(plan.job_attempts(4), 1);
    }

    #[test]
    fn garbage_is_deterministic_printable_and_newline_free() {
        let first = deterministic_garbage(11, 4096);
        assert_eq!(first, deterministic_garbage(11, 4096));
        assert_ne!(first, deterministic_garbage(12, 4096));
        assert!(first.iter().all(|&byte| (b'!'..=b'~').contains(&byte)));
    }
}
