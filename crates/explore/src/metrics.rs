//! Admission metrics of the exploration server.
//!
//! The server counts every request, rejection and sweep through a lock-free
//! [`ServeMetrics`] and answers a `{"status":{}}` request with a [`ServeStatus`]
//! snapshot — hit-rate, in-flight sweeps, queue depth and store health — so an
//! operator (or the CI smoke) can see a degraded server *saying* it is degraded
//! instead of inferring it from timings.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One point-in-time snapshot of a running server's admission metrics and store
/// health, as answered to a `{"status":{}}` request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStatus {
    /// Requests received (sweeps, status and shutdown lines alike).
    pub requests: u64,
    /// Sweep requests that completed and answered.
    pub completed: u64,
    /// Sweeps currently executing.
    pub in_flight: u64,
    /// Open connections not currently executing a sweep (parsed/parked lines).
    pub queue_depth: u64,
    /// Sweep requests shed with a typed `overloaded` response.
    pub rejected_overload: u64,
    /// Lines rejected for exceeding the configured byte cap.
    pub rejected_oversized: u64,
    /// Requests rejected because the client missed the read deadline.
    pub rejected_deadline: u64,
    /// Jobs enumerated across all completed sweeps.
    pub jobs: u64,
    /// Jobs served from the shared store across all completed sweeps.
    pub store_hits: u64,
    /// `store_hits / jobs` over the server's lifetime (0 before the first job).
    pub hit_rate: f64,
    /// Store state: `"ok"`, `"degraded"` (compute-through, flushes failing) or
    /// `"none"` (no backing file configured).
    pub store: String,
    /// Records currently held by the shared store.
    pub records: u64,
    /// Damaged record lines the last store load skipped and quarantined.
    pub damaged_lines: u64,
    /// Total lines in the store's quarantine sidecar.
    pub quarantined: u64,
}

/// Lock-free counters behind the server's `status` response; one instance per
/// [`serve`](crate::serve) call, shared by every connection thread.
#[derive(Debug, Default)]
pub(crate) struct ServeMetrics {
    requests: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicU64,
    connections: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_oversized: AtomicU64,
    rejected_deadline: AtomicU64,
    jobs: AtomicU64,
    store_hits: AtomicU64,
    degraded: AtomicBool,
}

impl ServeMetrics {
    pub(crate) fn new(degraded: bool) -> Self {
        let metrics = ServeMetrics::default();
        metrics.degraded.store(degraded, Ordering::SeqCst);
        metrics
    }

    pub(crate) fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_sweep(&self, jobs: u64, store_hits: u64) {
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.jobs.fetch_add(jobs, Ordering::SeqCst);
        self.store_hits.fetch_add(store_hits, Ordering::SeqCst);
    }

    pub(crate) fn note_oversized(&self) {
        self.rejected_oversized.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_deadline(&self) {
        self.rejected_deadline.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::SeqCst);
    }

    pub(crate) fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Tries to claim one of the `cap` in-flight sweep slots; `None` (and an
    /// `rejected_overload` tick) when they are all taken. The returned guard
    /// releases the slot on drop.
    pub(crate) fn try_admit(&self, cap: usize) -> Option<InFlightGuard<'_>> {
        let claimed = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        if claimed > cap as u64 {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.rejected_overload.fetch_add(1, Ordering::SeqCst);
            return None;
        }
        Some(InFlightGuard { metrics: self })
    }

    /// Counts one open connection; the returned guard closes it on drop.
    pub(crate) fn connection_guard(&self) -> ConnectionGuard<'_> {
        self.connections.fetch_add(1, Ordering::SeqCst);
        ConnectionGuard { metrics: self }
    }

    /// Snapshots the counters; the caller supplies the store half of the status.
    pub(crate) fn snapshot(
        &self,
        store: String,
        records: u64,
        damaged_lines: u64,
        quarantined: u64,
    ) -> ServeStatus {
        let jobs = self.jobs.load(Ordering::SeqCst);
        let store_hits = self.store_hits.load(Ordering::SeqCst);
        let in_flight = self.in_flight.load(Ordering::SeqCst);
        let connections = self.connections.load(Ordering::SeqCst);
        ServeStatus {
            requests: self.requests.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            in_flight,
            queue_depth: connections.saturating_sub(in_flight),
            rejected_overload: self.rejected_overload.load(Ordering::SeqCst),
            rejected_oversized: self.rejected_oversized.load(Ordering::SeqCst),
            rejected_deadline: self.rejected_deadline.load(Ordering::SeqCst),
            jobs,
            store_hits,
            hit_rate: if jobs == 0 {
                0.0
            } else {
                store_hits as f64 / jobs as f64
            },
            store,
            records,
            damaged_lines,
            quarantined,
        }
    }
}

/// RAII slot of one executing sweep; releases `in_flight` on drop.
pub(crate) struct InFlightGuard<'a> {
    metrics: &'a ServeMetrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII handle of one open connection; releases `connections` on drop.
pub(crate) struct ConnectionGuard<'a> {
    metrics: &'a ServeMetrics,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.metrics.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_caps_in_flight_and_releases_on_drop() {
        let metrics = ServeMetrics::new(false);
        let first = metrics.try_admit(2).expect("slot 1");
        let _second = metrics.try_admit(2).expect("slot 2");
        assert!(metrics.try_admit(2).is_none(), "cap reached");
        drop(first);
        let _third = metrics.try_admit(2).expect("slot freed by drop");
        let status = metrics.snapshot("none".to_string(), 0, 0, 0);
        assert_eq!(status.in_flight, 2);
        assert_eq!(status.rejected_overload, 1);
    }

    #[test]
    fn hit_rate_and_queue_depth_derive_from_counters() {
        let metrics = ServeMetrics::new(true);
        let _conn_a = metrics.connection_guard();
        let _conn_b = metrics.connection_guard();
        let _slot = metrics.try_admit(4).expect("slot");
        metrics.note_request();
        metrics.note_sweep(24, 18);
        let status = metrics.snapshot("degraded".to_string(), 5, 1, 2);
        assert_eq!(status.requests, 1);
        assert_eq!(status.completed, 1);
        assert_eq!(status.in_flight, 1);
        assert_eq!(status.queue_depth, 1, "2 connections - 1 in flight");
        assert!((status.hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(status.store, "degraded");
        assert!(metrics.degraded());
        assert_eq!(status.records, 5);
        assert_eq!(status.damaged_lines, 1);
        assert_eq!(status.quarantined, 2);
    }
}
