//! Dominance filtering over the delay × power × area objective space.

/// The quality metrics of one evaluated design point.
///
/// `delay`, `power` and `area` span the Pareto objective space (all minimized);
/// `switching_energy`, `cell_count` and `logic_depth` ride along for summaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// Critical delay under the point's arrival profile (library time units).
    pub delay: f64,
    /// Switching power on the milliwatt-like scale of the paper's Table 2.
    pub power: f64,
    /// Total cell area (library area units).
    pub area: f64,
    /// Weighted switching energy `Σ W·p(1−p)`.
    pub switching_energy: f64,
    /// Total cell count of the netlist.
    pub cell_count: usize,
    /// Structural logic depth of the netlist.
    pub logic_depth: usize,
    /// Simulated switching power (same scale as `power`), measured by running the
    /// synthesized netlist through the SIMD block engine on the sweep's shared
    /// stimulus batch. `None` unless the specification requests a
    /// [`SimActivity`](crate::SimActivity); rides along for summaries — dominance
    /// stays over the analytic delay × power × area space.
    pub simulated_switch_power: Option<f64>,
}

impl PointMetrics {
    /// Pareto dominance over (delay, power, area): `self` dominates `other` when it is
    /// no worse on every objective and strictly better on at least one.
    pub fn dominates(&self, other: &PointMetrics) -> bool {
        let no_worse =
            self.delay <= other.delay && self.power <= other.power && self.area <= other.area;
        let strictly_better =
            self.delay < other.delay || self.power < other.power || self.area < other.area;
        no_worse && strictly_better
    }
}

/// Returns the indices (ascending) of the points not dominated by any other point.
///
/// The result is a pure function of the *set* of metrics: permuting the input permutes
/// the indices but selects the same points, and duplicated metrics are all kept
/// (equal points do not dominate each other). The property suite in
/// `tests/prop_pareto.rs` pins both invariants down.
pub fn pareto_front(metrics: &[PointMetrics]) -> Vec<usize> {
    (0..metrics.len())
        .filter(|&candidate| {
            metrics
                .iter()
                .all(|other| !other.dominates(&metrics[candidate]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(delay: f64, power: f64, area: f64) -> PointMetrics {
        PointMetrics {
            delay,
            power,
            area,
            switching_energy: power / 10.0,
            cell_count: 10,
            logic_depth: 3,
            simulated_switch_power: None,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = point(1.0, 1.0, 1.0);
        let b = point(2.0, 1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Equal points do not dominate each other.
        assert!(!a.dominates(&a));
        // Trade-offs do not dominate.
        let c = point(0.5, 2.0, 1.0);
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn front_keeps_exactly_the_non_dominated_points() {
        let metrics = vec![
            point(1.0, 3.0, 2.0), // on the front (best delay)
            point(2.0, 1.0, 2.0), // on the front (best power)
            point(2.0, 3.0, 2.0), // dominated by both
            point(1.0, 3.0, 2.0), // duplicate of the first: also kept
            point(3.0, 3.0, 1.0), // on the front (best area)
        ];
        assert_eq!(pareto_front(&metrics), vec![0, 1, 3, 4]);
    }

    #[test]
    fn single_point_is_its_own_front() {
        assert_eq!(pareto_front(&[point(1.0, 1.0, 1.0)]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }
}
