//! Multi-threaded design-space exploration over the synthesis flows.
//!
//! The DAC 2000 technique only shows its value across a *space* of designs — widths,
//! input-arrival skews, signal-probability biases, objectives and rival flows. This
//! crate turns that space into a job matrix and runs it in parallel:
//!
//! 1. An [`ExplorationSpec`] crosses expression sources (fixed benchmark designs from
//!    `dpsyn-designs` and its workload generators) with width ranges, [`SkewProfile`]s,
//!    [`BiasProfile`]s and the [`Flow`]s of `dpsyn-baselines`.
//! 2. [`explore`] shards the resulting jobs across `std::thread::scope` workers
//!    under a **work-stealing scheduler**: each worker owns a deque of group-chunks
//!    seeded from the schedule and steals from a victim (per [`StealPolicy`]) when
//!    its own deque runs dry. Every job is a pure function of the specification and
//!    every result lands in a write-once slot keyed by job index, so the outcome is
//!    **bit-identical for any worker count, steal policy and overpartition factor**
//!    — the property the determinism suite pins down.
//! 3. Each synthesized point is reduced to [`PointMetrics`] (delay from static timing
//!    analysis, switching power from probability propagation, cell area and structure
//!    from the netlist), and the whole run is dominance-filtered into a Pareto front
//!    over delay × power × area plus per-flow [`FlowSummary`] tables.
//! 4. Optionally, a [`SimActivity`] request adds **simulated switching activity** as
//!    a per-point metric: every synthesized netlist runs through the SIMD block-lane
//!    engine of `dpsyn-sim` on a shared seeded stimulus batch (compiled once and
//!    reused across each `(source, width, flow)` group, like the analytic delta
//!    path), yielding `simulated_switch_power` and an analytic-vs-simulated
//!    divergence column in the summary — still byte-identical for any worker count.
//!
//! # Example
//!
//! ```
//! use dpsyn_baselines::Flow;
//! use dpsyn_explore::{explore, ExplorationSpec};
//!
//! # fn main() -> Result<(), dpsyn_explore::ExploreError> {
//! let spec = ExplorationSpec::builder()
//!     .design(dpsyn_designs::x_squared())
//!     .flows([Flow::Conventional, Flow::FaAot])
//!     .threads(2)
//!     .build()?;
//! let results = explore(&spec)?;
//! assert_eq!(results.points().len(), 2);
//! // FA_AOT is never dominated by the conventional flow.
//! assert!(results.front().any(|p| p.job.flow() == Flow::FaAot));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod error;
pub mod faults;
mod job;
#[cfg(unix)]
mod metrics;
mod pareto;
#[cfg(unix)]
mod serve;
mod sim;
mod spec;
mod store;
mod summary;

pub use dpsyn_baselines::Flow;
pub use engine::{
    explore, explore_with_stats, explore_with_store, schedule_preview, ExplorationPoint,
    ExplorationResults, ExploreStats, FreshRecords, QuarantinedJob, SchedulePreview, WorkerStats,
    JOB_ATTEMPT_LIMIT,
};
pub use error::ExploreError;
pub use job::Job;
#[cfg(unix)]
pub use metrics::ServeStatus;
pub use pareto::{pareto_front, PointMetrics};
#[cfg(unix)]
pub use serve::{serve, ServeConfig, ServeResponse};
pub use spec::{
    BiasProfile, ExplorationSpec, ExplorationSpecBuilder, ExprSource, SimActivity, SkewProfile,
    StealPolicy,
};
pub use store::{
    profile_digest, quarantine_path, stimulus_digest, stimulus_layout_digest, EvalKey, EvalStage,
    ResultStore, StoreHealth, StoredEval, STORE_FORMAT,
};
pub use summary::FlowSummary;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_shape() {
        let spec = ExplorationSpec::builder()
            .design(dpsyn_designs::x_squared())
            .design(dpsyn_designs::mixed_poly())
            .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot])
            .threads(2)
            .build()
            .unwrap();
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 6);
        // Canonical order: source-major, flow-minor, indices dense.
        assert_eq!(jobs[0].source_label(), "x_squared");
        assert_eq!(jobs[0].flow(), Flow::Conventional);
        assert_eq!(jobs[5].source_label(), "mixed_poly");
        assert_eq!(jobs[5].flow(), Flow::FaAot);
        assert!(jobs.iter().enumerate().all(|(i, job)| job.index() == i));

        let results = explore(&spec).unwrap();
        assert_eq!(results.points().len(), 6);
        let summaries = results.summaries();
        assert_eq!(summaries.len(), 3);
        assert!(summaries.iter().all(|s| s.points == 2));
        let text = results.render_summary();
        assert!(text.contains("pareto front"));
        assert!(text.contains("fa_aot"));
    }

    #[test]
    fn skew_and_bias_redraws_are_decorrelated() {
        // With a shared redraw seed the latest-arriving bit would always be the
        // most-biased bit; the salted seeds must break that rank correlation.
        let spec = ExplorationSpec::builder()
            .design(dpsyn_designs::iir())
            .skews([SkewProfile::Uniform(1.0)])
            .biases([BiasProfile::Uniform(0.5)])
            .flow(Flow::FaAot)
            .seed(3)
            .build()
            .unwrap();
        let design = spec.materialize(&spec.jobs()[0]);
        let profiles: Vec<(f64, f64)> = design
            .spec()
            .vars()
            .flat_map(|v| v.bits().iter().map(|b| (b.arrival, b.probability)))
            .collect();
        // Both redraws happened (non-constant arrivals and probabilities) ...
        assert!(profiles.iter().any(|(a, _)| *a != profiles[0].0));
        assert!(profiles.iter().any(|(_, p)| *p != profiles[0].1));
        // ... and the arrival rank order is not the probability rank order: with
        // arrival = 1.0*u_k and probability = 2*0.5*u_k - 0.5 off one shared stream,
        // every pair would satisfy (a_i < a_j) == (p_i < p_j).
        let decorrelated = profiles.iter().enumerate().any(|(i, (a_i, p_i))| {
            profiles[i + 1..]
                .iter()
                .any(|(a_j, p_j)| (a_i < a_j) != (p_i < p_j))
        });
        assert!(
            decorrelated,
            "skew and bias redraws share one random stream"
        );
    }

    #[test]
    fn workload_jobs_cross_widths_and_profiles() {
        let spec = ExplorationSpec::builder()
            .sum_workload(3)
            .widths([2, 4])
            .skews([SkewProfile::Uniform(1.0), SkewProfile::Uniform(2.0)])
            .biases([BiasProfile::Uniform(0.2)])
            .flow(Flow::FaAot)
            .seed(3)
            .build()
            .unwrap();
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2 * 2);
        // Every flow sharing a design point must see the identical design.
        let design_a = spec.materialize(&jobs[0]);
        let design_b = spec.materialize(&jobs[0]);
        assert_eq!(design_a.expr(), design_b.expr());
        assert_eq!(design_a.spec(), design_b.spec());
    }
}
