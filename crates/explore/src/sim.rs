//! The per-worker simulated switching-activity path of the exploration engine.
//!
//! When a sweep carries a [`SimActivity`](crate::SimActivity) request, every
//! evaluated point additionally runs its synthesized netlist through the SIMD
//! block-lane engine ([`BlockSim`]) on a **shared seeded stimulus batch** and folds
//! the measured per-net toggle rates through the same per-kind energy weights the
//! analytic model uses ([`dpsyn_power::simulated_energy`]). The result is
//! `simulated_switch_power` — the measured counterpart of the analytic
//! `power_mw` — and with it the analytic-vs-simulated divergence column of the
//! sweep summary.
//!
//! The cost model mirrors the compiled-program cache ([`crate::cache`]): jobs that
//! share `(source, width, flow)` synthesize structurally identical netlists, so the
//! compiled block program, the resolved technology tables and the drawn stimulus
//! batch of the group's first point absorb every later point. [`SimCache`] holds
//! those artifacts per worker with the same correctness ladder:
//!
//! 1. probe by [`Netlist::structural_hash`];
//! 2. **verify** the candidate cell-by-cell against the cached program's ops plus
//!    the input/output lists and the word map — hash equality is never trusted;
//! 3. on a verified hit, reuse the compiled program and the stimulus batch; points
//!    whose input probabilities were already simulated are served from a per-entry
//!    memo (skew axes never perturb a simulation, so a whole skew column collapses
//!    to one evaluation);
//! 4. on any mismatch, compile and draw fresh — so the simulated figure is a pure
//!    function of `(netlist structure, word map, spec probabilities, activity)`,
//!    bit-identical for any worker count, chunking or eviction history.
//!
//! Determinism note: the stimulus batch is keyed by the **spec-level** activity
//! seed, never by worker or group identity, so two structurally identical groups
//! draw the same batch and the persistent store's name-blind analysis keys stay
//! sound (the key folds the exact bit-to-net stimulus layout on top; see
//! [`crate::store::stimulus_layout_digest`]).

use crate::spec::SimActivity;
use dpsyn_ir::InputSpec;
use dpsyn_netlist::{CompiledOp, Netlist, WordMap};
use dpsyn_power::simulated_energy;
use dpsyn_sim::{BlockSim, SharedStimulus, ToggleCounter, DEFAULT_BLOCK};
use dpsyn_tech::{ResolvedTech, TechLibrary};
use std::collections::{HashMap, VecDeque};

/// Upper bound on live entries per worker, matching the compiled-program cache:
/// entries hold a compiled block program plus a drawn stimulus batch, so the bound
/// keeps memory flat while covering the structures a worker's groups cycle through.
const MAX_ENTRIES: usize = 8;

/// What one [`SimCache::simulate`] call did, for the engine's per-worker counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimOutcome {
    /// A fresh block program + stimulus batch were built for this structure.
    Built,
    /// A verified cached program (and its stimulus batch) absorbed the point.
    Reused,
}

/// One cached simulation context: the compiled block program, its structural
/// identity in cell order for exact verification, the stimulus batch drawn for the
/// activity request, the resolved energy tables, and a memo of probability
/// profiles already simulated under this exact context.
struct SimEntry {
    sim: BlockSim,
    /// The program's ops in cell-index order, for exact candidate verification.
    cell_ops: Vec<CompiledOp>,
    word_map: WordMap,
    activity: SimActivity,
    stimulus: SharedStimulus,
    resolved: ResolvedTech,
    voltage: f64,
    tech_digest: u64,
    /// `(probability profile of the spec, simulated power)` pairs already
    /// evaluated under this program + batch. Groups enumerate only a handful of
    /// bias points, so a linear scan over exact bit patterns is both cheap and
    /// trivially deterministic.
    memo: Vec<(Vec<u64>, f64)>,
}

impl SimEntry {
    /// Exact structural verification, mirroring the compiled-program cache: net
    /// universe, primary inputs/outputs, word-level interface, every cell's kind
    /// and exact pin lists — plus the activity request and tech identity this
    /// entry's batch and tables were built for.
    fn matches(
        &self,
        netlist: &Netlist,
        word_map: &WordMap,
        activity: SimActivity,
        tech_digest: u64,
    ) -> bool {
        if self.activity != activity
            || self.tech_digest != tech_digest
            || netlist.net_count() != self.sim.compiled().net_count()
            || netlist.cell_count() != self.sim.compiled().cell_count()
            || netlist.inputs() != self.sim.compiled().inputs()
            || netlist.outputs() != self.sim.compiled().outputs()
            || word_map != &self.word_map
        {
            return false;
        }
        netlist.cells().all(|(id, cell)| {
            let op = &self.cell_ops[id.index()];
            op.kind == cell.kind()
                && op.input_nets() == cell.inputs()
                && op.output_nets() == cell.outputs()
        })
    }

    /// The exact bit-pattern identity of the spec slice a simulation depends on:
    /// variable names, widths and per-bit probabilities (arrivals are irrelevant
    /// to logic simulation and deliberately excluded, which is what collapses a
    /// skew column to one evaluation).
    fn profile_key(spec: &InputSpec) -> Vec<u64> {
        let mut key = Vec::new();
        for var in spec.vars() {
            key.push(var.name().len() as u64);
            key.extend(var.name().bytes().map(u64::from));
            key.push(u64::from(var.width()));
            for bit in var.bits() {
                key.push(bit.probability.to_bits());
            }
        }
        key
    }
}

/// The per-worker simulation cache; see the [module documentation](self).
pub(crate) struct SimCache {
    entries: HashMap<u64, SimEntry>,
    /// Insertion-recency order of resident hashes, oldest first (FIFO admission,
    /// replacements re-admitted at the back — same policy as the compiled cache).
    order: VecDeque<u64>,
}

impl SimCache {
    pub(crate) fn new() -> Self {
        SimCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Simulates one synthesized point under `activity` and returns its simulated
    /// switching power (same milliwatt-like scale as the analytic `power_mw`),
    /// plus whether a cached context was reused or a fresh one built.
    ///
    /// # Errors
    ///
    /// Returns the stringified block-engine or technology-resolution failure;
    /// the engine wraps it into [`ExploreError::Sim`](crate::ExploreError::Sim)
    /// with the failing job's label.
    pub(crate) fn simulate(
        &mut self,
        activity: SimActivity,
        netlist: &Netlist,
        word_map: &WordMap,
        spec: &InputSpec,
        tech: &TechLibrary,
    ) -> Result<(f64, SimOutcome), String> {
        let hash = netlist.structural_hash();
        let tech_digest = tech.identity_digest();
        let verified = self
            .entries
            .get(&hash)
            .is_some_and(|entry| entry.matches(netlist, word_map, activity, tech_digest));
        let outcome = if verified {
            SimOutcome::Reused
        } else {
            let entry = self.build(activity, netlist, word_map, spec, tech, tech_digest)?;
            if let Some(evicted) = self.admit(hash) {
                self.entries.remove(&evicted);
            }
            self.entries.insert(hash, entry);
            SimOutcome::Built
        };
        let entry = self.entries.get_mut(&hash).expect("entry just verified");
        let key = SimEntry::profile_key(spec);
        if let Some((_, power)) = entry.memo.iter().find(|(resident, _)| *resident == key) {
            return Ok((*power, outcome));
        }
        let power = evaluate(entry, netlist, spec);
        entry.memo.push((key, power));
        Ok((power, outcome))
    }

    /// Compiles the block program, resolves the energy tables and draws the
    /// stimulus batch for one structure.
    fn build(
        &self,
        activity: SimActivity,
        netlist: &Netlist,
        word_map: &WordMap,
        spec: &InputSpec,
        tech: &TechLibrary,
        tech_digest: u64,
    ) -> Result<SimEntry, String> {
        let sim = BlockSim::compile(netlist, DEFAULT_BLOCK).map_err(|error| error.to_string())?;
        let resolved = tech
            .resolve(sim.compiled())
            .map_err(|error| error.to_string())?;
        let stimulus =
            SharedStimulus::generate(activity.seed, spec.total_bits() as usize, activity.vectors);
        Ok(SimEntry {
            cell_ops: sim.compiled().cell_ops(),
            sim,
            word_map: word_map.clone(),
            activity,
            stimulus,
            resolved,
            voltage: tech.voltage(),
            tech_digest,
            memo: Vec::new(),
        })
    }

    /// Records that `hash` now owns an entry; returns the hash to evict when the
    /// admission overflows the capacity.
    fn admit(&mut self, hash: u64) -> Option<u64> {
        if let Some(position) = self.order.iter().position(|resident| *resident == hash) {
            self.order.remove(position);
        }
        self.order.push_back(hash);
        (self.order.len() > MAX_ENTRIES).then(|| {
            self.order
                .pop_front()
                .expect("over-capacity queue is non-empty")
        })
    }
}

/// Runs the cached program over the cached batch under `spec`'s probabilities and
/// folds the measured toggle rates into a milliwatt-scale power figure.
fn evaluate(entry: &SimEntry, netlist: &Netlist, spec: &InputSpec) -> f64 {
    let assignments = entry.stimulus.biased_assignments(spec);
    let mut counter = ToggleCounter::new(entry.sim.net_count());
    let mut blocks = entry.sim.block_buffer();
    for chunk in assignments.chunks(entry.sim.vectors_per_pass()) {
        entry
            .sim
            .pack_word_assignments(&entry.word_map, chunk, &mut blocks);
        entry.sim.evaluate_into(&mut blocks);
        counter.record_blocks(&blocks, entry.sim.block(), chunk.len());
    }
    let mut rates = vec![0.0; entry.sim.net_count()];
    for (net, _) in netlist.nets() {
        rates[net.index()] = counter.toggle_rate(net);
    }
    simulated_energy(entry.sim.compiled(), &entry.resolved, &rates) * entry.voltage * entry.voltage
}
