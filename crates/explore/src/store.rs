//! The persistent cross-run evaluation store.
//!
//! PR 5/6 made repeated sweep points cheap *within* one [`explore`](crate::explore)
//! call (per-worker compiled-program cache + delta reruns), but every process still
//! re-evaluated the whole matrix from scratch. This module promotes that reuse
//! across runs, processes and clients: a [`ResultStore`] memoizes the analysed
//! figures of every evaluated point under an exact [`EvalKey`] and persists them in
//! a versioned on-disk memo file, so a warm-store sweep collapses to near-lookup
//! cost while its output stays **byte-identical** to a cold run (the stored figures
//! are f64 bit patterns, and the summary is a pure function of the points).
//!
//! # The evaluation key
//!
//! A stored result is only ever served when *everything* an analysis can observe is
//! provably identical. Two key stages share one shape ([`EvalKey`]):
//!
//! * [`EvalStage::Analysis`] — keyed on the synthesized netlist, exactly as the
//!   issue of record specifies: the structural hash, a 128-bit fingerprint of the
//!   **exact** structural serialization ([`Netlist::structural_words`] — the
//!   lossless, versioned counterpart of the folded `cell_ops` identity the
//!   per-worker cache verifies), the technology-library identity digest
//!   ([`TechLibrary::identity_digest`](dpsyn_tech::TechLibrary::identity_digest)),
//!   the flow name, and a digest of the per-net input profiles. This serves the
//!   synthesize-then-analyse flows (`conventional`, `csa_opt`): a warm hit skips the
//!   whole compile + timing + power + area bundle.
//! * [`EvalStage::Point`] — keyed one level earlier, on the materialized design
//!   itself (name, expression text, output width, every input bit's arrival and
//!   probability), the flow and the tech digest. Flows that analyse *during*
//!   synthesis (the FA-tree family) never expose an unanalysed netlist, so only a
//!   design-level key can collapse them to lookup cost; for the module-binding
//!   flows it additionally skips synthesis. Point hits are what makes a fully warm
//!   sweep near-free.
//!
//! Both fingerprints are independently-seeded splitmix64 chains
//! ([`StructuralHasher::with_seed`]) over canonical word streams, so a stored
//! result can never be served across a renamed design, an edited tech library, a
//! different flow seed or a reprofiled input — each of those perturbs its digest.
//!
//! Both stages additionally carry a **stimulus digest**: `0` for a purely analytic
//! run, and a digest of the simulated-activity identity (seed, vector count, batch
//! shape — plus, at the analysis stage, the exact bit-to-net stimulus layout) when
//! the sweep carries the simulated switching metric. A simulated record can
//! therefore never be served to a non-simulated sweep or vice versa, and two
//! different stimulus configurations never alias.
//!
//! # The memo file
//!
//! The on-disk format is deliberately line-oriented and self-checking:
//!
//! ```text
//! dpsyn-eval-store v2
//! A <structural> <fp0> <fp1> <tech> <profiles> <stimulus> <flow> <delay> <area> <energy> <power> <cells> <depth> <sim_power> <checksum>
//! P ...
//! ```
//!
//! every numeric field a fixed-width lowercase-hex u64 (f64s by bit pattern) and
//! every line carrying its own chained checksum. Loading **never fails on content**:
//! a missing file is an empty store, a wrong header (old version, foreign file) is
//! detected and the store rebuilt from empty ([`ResultStore::rebuilt`]), and any
//! line that fails to parse or checksum is skipped, counted
//! ([`ResultStore::damaged_lines`]) and **quarantined** to a sidecar file
//! ([`quarantine_path`]) so the evidence of a torn or corrupted write survives the
//! next canonical flush. A file whose final line is cut mid-record (no trailing
//! newline) is additionally flagged as a torn tail ([`ResultStore::torn_tail`]) —
//! the signature of a process killed mid-flush. A truncated write therefore costs
//! at most the truncated line, and the loss is visible, never silent.
//!
//! For crash-safety testing, a [`FaultPlan`] can be attached
//! ([`ResultStore::load_with_faults`]): every read and write of the memo file then
//! consults the plan first, so a suite can kill a flush at an exact step and
//! assert the recovery — see [`crate::faults`].
//!
//! [`ResultStore::flush`] is atomic and merge-convergent: it re-reads the file,
//! unions the on-disk records into its own (ties broken by the deterministic
//! smaller-value rule, so the union is commutative), writes a temp file **sorted by
//! key** and renames it over the store, then re-reads to verify its own records
//! survived — retrying when a concurrent flush won the rename race. Because the
//! merged record set and the line format are both canonical, the final file bytes
//! are independent of which process flushed last.

use crate::error::ExploreError;
use crate::faults::{FaultPlan, WriteFault};
use dpsyn_baselines::Flow;
use dpsyn_designs::Design;
use dpsyn_netlist::{NetId, Netlist, StructuralHasher};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Header line of the memo file; the version suffix guards the record layout.
pub const STORE_FORMAT: &str = "dpsyn-eval-store v2";

/// Bounded retries for the flush merge-verify loop under concurrent writers.
const FLUSH_ATTEMPTS: usize = 16;

/// Independent seeds for the two fingerprint chains, the two profile/primary
/// digests and the per-line checksum. Any two digests of the same words differ
/// because their chains start differently.
const FINGERPRINT_SEEDS: [u64; 2] = [0x9d5c_41e7_3b28_f601, 0x5e8a_02c9_d714_6fb3];
const POINT_PRIMARY_SEED: u64 = 0x31f6_88ad_0c52_e947;
const PROFILE_SEED: u64 = 0xc703_5a1e_92d8_4b65;
const LINE_SEED: u64 = 0x84b2_d90f_671c_3ae5;
const STIMULUS_SEED: u64 = 0x2f9e_6c83_b1d7_054a;

/// Which level of the evaluation pipeline a stored record memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EvalStage {
    /// Keyed on the synthesized netlist: a hit skips the analysis bundle.
    Analysis,
    /// Keyed on the materialized design point: a hit skips synthesis too.
    Point,
}

impl EvalStage {
    fn tag(self) -> &'static str {
        match self {
            EvalStage::Analysis => "A",
            EvalStage::Point => "P",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "A" => Some(EvalStage::Analysis),
            "P" => Some(EvalStage::Point),
            _ => None,
        }
    }
}

/// The exact identity a stored evaluation is keyed by; see the
/// [module documentation](self) for what each component covers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EvalKey {
    /// Which pipeline level the record memoizes.
    pub stage: EvalStage,
    /// The primary probe word: [`Netlist::structural_hash`] for analysis records,
    /// a seeded digest of the design identity for point records.
    pub structural: u64,
    /// 128-bit fingerprint of the exact canonical serialization (two
    /// independently-seeded chains over the same word stream).
    pub fingerprint: [u64; 2],
    /// The technology library's identity digest.
    pub tech: u64,
    /// The flow identity (includes the seed for `fa_random` / `fa_anneal`).
    pub flow: String,
    /// Digest of the input profiles the figures were computed under.
    pub profiles: u64,
    /// Digest of the stimulus the simulated switching metric was computed under —
    /// `0` for a purely analytic run. Build it with [`stimulus_digest`] (point
    /// stage) or [`stimulus_layout_digest`] (analysis stage, which folds the exact
    /// bit-to-net stimulus layout because analysis keys are name-blind).
    pub stimulus: u64,
}

/// Folds `words` through one independently-seeded splitmix64 chain.
fn chain(seed: u64, words: &[u64]) -> u64 {
    let mut hasher = StructuralHasher::with_seed(seed);
    for word in words {
        hasher.write(*word);
    }
    hasher.finish()
}

/// Appends a length-prefixed string to a canonical word stream.
fn push_str(words: &mut Vec<u64>, text: &str) {
    words.push(text.len() as u64);
    words.extend(text.bytes().map(u64::from));
}

impl EvalKey {
    /// Keys one synthesized-but-unanalysed netlist: the issue-specified
    /// `(structural_hash, exact serialization fingerprint, tech identity, flow,
    /// input-profile digest)` tuple, plus the stimulus digest (`0` when the sweep
    /// carries no simulated metric). Compute `profiles` with [`profile_digest`]
    /// from the same per-net maps the analyses will consume, and `stimulus` with
    /// [`stimulus_layout_digest`] over the same word map the simulation packs.
    pub fn analysis(
        netlist: &Netlist,
        tech: u64,
        flow: &str,
        profiles: u64,
        stimulus: u64,
    ) -> EvalKey {
        debug_assert!(
            !flow.chars().any(char::is_whitespace),
            "flow identifiers must be single tokens"
        );
        let words = netlist.structural_words();
        EvalKey {
            stage: EvalStage::Analysis,
            structural: netlist.structural_hash(),
            fingerprint: [
                chain(FINGERPRINT_SEEDS[0], &words),
                chain(FINGERPRINT_SEEDS[1], &words),
            ],
            tech,
            flow: flow.to_string(),
            profiles,
            stimulus,
        }
    }

    /// Keys one materialized design point before synthesis: name, expression
    /// text, output width and every input bit's exact arrival/probability, times
    /// the flow (seed included) and the tech digest. The name is part of the key
    /// because rendered summaries carry it — a renamed twin falls through to the
    /// name-blind analysis stage instead. `stimulus` is [`stimulus_digest`] of the
    /// sweep's simulated-activity request, or `0` for an analytic sweep.
    pub fn point(design: &Design, flow: Flow, tech: u64, stimulus: u64) -> EvalKey {
        let expr = design.expr().to_string();
        let mut words = Vec::new();
        push_str(&mut words, design.name());
        push_str(&mut words, &expr);
        words.push(u64::from(design.output_width()));
        words.push(design.spec().len() as u64);
        let mut profile_words = Vec::new();
        for var in design.spec().vars() {
            push_str(&mut words, var.name());
            words.push(u64::from(var.width()));
            for bit in var.bits() {
                words.push(bit.arrival.to_bits());
                words.push(bit.probability.to_bits());
                profile_words.push(bit.arrival.to_bits());
                profile_words.push(bit.probability.to_bits());
            }
        }
        EvalKey {
            stage: EvalStage::Point,
            structural: chain(POINT_PRIMARY_SEED, &words),
            fingerprint: [
                chain(FINGERPRINT_SEEDS[0], &words),
                chain(FINGERPRINT_SEEDS[1], &words),
            ],
            tech,
            flow: flow.to_string(),
            profiles: chain(PROFILE_SEED, &profile_words),
            stimulus,
        }
    }
}

/// Digest of one simulated-activity request's identity: the stimulus seed, the
/// vector count, and the batch shape the engine evaluates with (block size times
/// lane width). `0` is reserved for "no simulated metric", and the chain seed
/// guarantees no activity digests to `0` in practice.
pub fn stimulus_digest(activity: crate::spec::SimActivity) -> u64 {
    chain(
        STIMULUS_SEED,
        &[
            activity.seed,
            activity.vectors as u64,
            dpsyn_sim::DEFAULT_BLOCK as u64,
            dpsyn_sim::LANES as u64,
        ],
    )
}

/// Extends a [`stimulus_digest`] with the exact bit-to-net stimulus layout of one
/// word map: per input word in declaration order, the bit count and each bit's net
/// index. Analysis keys are name-blind, so without the layout two structurally
/// identical netlists whose inputs bind the stimulus differently could alias.
pub fn stimulus_layout_digest(base: u64, word_map: &dpsyn_netlist::WordMap) -> u64 {
    let mut words = vec![base, word_map.inputs().len() as u64];
    for word in word_map.inputs() {
        words.push(word.bits().len() as u64);
        for bit in word.bits() {
            words.push(bit.index() as u64);
        }
    }
    chain(STIMULUS_SEED, &words)
}

impl fmt::Display for EvalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {}",
            self.stage.tag(),
            self.structural,
            self.fingerprint[0],
            self.fingerprint[1],
            self.tech,
            self.profiles,
            self.stimulus,
            self.flow
        )
    }
}

/// Digest of the per-net input profiles an analysis consumes — the maps
/// [`dpsyn_baselines::input_profiles`] produces, folded net-by-net with exact f64
/// bit patterns.
pub fn profile_digest(
    arrivals: &BTreeMap<NetId, f64>,
    probabilities: &BTreeMap<NetId, f64>,
) -> u64 {
    let mut hasher = StructuralHasher::with_seed(PROFILE_SEED);
    hasher.write(arrivals.len() as u64);
    for (net, arrival) in arrivals {
        hasher.write(net.index() as u64);
        hasher.write(arrival.to_bits());
    }
    hasher.write(probabilities.len() as u64);
    for (net, probability) in probabilities {
        hasher.write(net.index() as u64);
        hasher.write(probability.to_bits());
    }
    hasher.finish()
}

/// The memoized figures of one evaluated point — exactly the fields an
/// [`ExplorationPoint`](crate::ExplorationPoint)'s metrics carry, stored as bit
/// patterns so a warm hit reproduces a cold run byte for byte.
#[derive(Debug, Clone, Copy)]
pub struct StoredEval {
    /// Critical delay (library time units).
    pub delay: f64,
    /// Total cell area (library area units).
    pub area: f64,
    /// Weighted switching energy.
    pub switching_energy: f64,
    /// Power on the milliwatt-like scale.
    pub power_mw: f64,
    /// Cell count of the synthesized netlist.
    pub cell_count: usize,
    /// Logic depth (levels) of the synthesized netlist.
    pub logic_depth: usize,
    /// Simulated switching power on the same milliwatt-like scale as `power_mw`;
    /// `0.0` when the record was produced by a purely analytic sweep (its key then
    /// carries a zero stimulus digest, so the two never mix).
    pub simulated_switch_power: f64,
}

impl StoredEval {
    /// The record as an exact word tuple — equality, ordering and the merge
    /// tie-break all operate on bit patterns, never on float comparison.
    fn bits(&self) -> [u64; 7] {
        [
            self.delay.to_bits(),
            self.area.to_bits(),
            self.switching_energy.to_bits(),
            self.power_mw.to_bits(),
            self.cell_count as u64,
            self.logic_depth as u64,
            self.simulated_switch_power.to_bits(),
        ]
    }
}

impl PartialEq for StoredEval {
    fn eq(&self, other: &Self) -> bool {
        self.bits() == other.bits()
    }
}

impl Eq for StoredEval {}

impl PartialOrd for StoredEval {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StoredEval {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bits().cmp(&other.bits())
    }
}

/// The deterministic merge winner for one key: the bit-wise smaller record.
/// Conflicting values for one exact key cannot arise from correct evaluation
/// (evaluation is a pure function of the key's preimage), but the merge must
/// still be a total, commutative rule so concurrent flushes converge to
/// identical bytes no matter the order.
fn merged(first: StoredEval, second: StoredEval) -> StoredEval {
    if second < first {
        second
    } else {
        first
    }
}

/// Chained checksum of one record line (key words, flow bytes, value words).
fn line_checksum(key: &EvalKey, value: &StoredEval) -> u64 {
    let mut hasher = StructuralHasher::with_seed(LINE_SEED);
    hasher.write(match key.stage {
        EvalStage::Analysis => 0,
        EvalStage::Point => 1,
    });
    hasher.write(key.structural);
    hasher.write(key.fingerprint[0]);
    hasher.write(key.fingerprint[1]);
    hasher.write(key.tech);
    hasher.write(key.profiles);
    hasher.write(key.stimulus);
    hasher.write_str(&key.flow);
    for word in value.bits() {
        hasher.write(word);
    }
    hasher.finish()
}

fn format_line(key: &EvalKey, value: &StoredEval) -> String {
    let bits = value.bits();
    format!(
        "{key} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x}",
        bits[0],
        bits[1],
        bits[2],
        bits[3],
        bits[4],
        bits[5],
        bits[6],
        line_checksum(key, value)
    )
}

/// Parses one record line; `None` for anything malformed or checksum-failing.
fn parse_line(line: &str) -> Option<(EvalKey, StoredEval)> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != 16 {
        return None;
    }
    let word = |token: &str| u64::from_str_radix(token, 16).ok();
    let key = EvalKey {
        stage: EvalStage::from_tag(tokens[0])?,
        structural: word(tokens[1])?,
        fingerprint: [word(tokens[2])?, word(tokens[3])?],
        tech: word(tokens[4])?,
        profiles: word(tokens[5])?,
        stimulus: word(tokens[6])?,
        flow: tokens[7].to_string(),
    };
    let value = StoredEval {
        delay: f64::from_bits(word(tokens[8])?),
        area: f64::from_bits(word(tokens[9])?),
        switching_energy: f64::from_bits(word(tokens[10])?),
        power_mw: f64::from_bits(word(tokens[11])?),
        cell_count: word(tokens[12])? as usize,
        logic_depth: word(tokens[13])? as usize,
        simulated_switch_power: f64::from_bits(word(tokens[14])?),
    };
    let checksum = word(tokens[15])?;
    (line_checksum(&key, &value) == checksum).then_some((key, value))
}

fn store_error(path: &Path, message: impl fmt::Display) -> ExploreError {
    ExploreError::Store {
        path: path.to_path_buf(),
        message: message.to_string(),
    }
}

/// What one read of a memo file found.
#[derive(Default)]
struct LoadedFile {
    records: BTreeMap<EvalKey, StoredEval>,
    /// The file existed but carried a foreign or stale header.
    rebuilt: bool,
    /// The raw text of every record line that failed to parse or checksum.
    damaged: Vec<String>,
    /// The file's final line was cut mid-record (no trailing newline and the
    /// partial line fails to parse) — the signature of a mid-flush kill.
    torn_tail: bool,
}

/// Reads a memo file; missing files and corrupt content never fail — only a true
/// I/O error (permissions, hardware, or an injected read fault) does.
fn read_file(path: &Path, faults: Option<&FaultPlan>) -> Result<LoadedFile, ExploreError> {
    if let Some(reason) = faults.and_then(FaultPlan::next_store_read_fault) {
        return Err(store_error(path, reason));
    }
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedFile::default())
        }
        Err(error) => return Err(store_error(path, error)),
    };
    let lines: Vec<&str> = text.lines().collect();
    if lines.first().copied() != Some(STORE_FORMAT) {
        // Stale version or foreign file: rebuild from empty rather than guessing.
        return Ok(LoadedFile {
            rebuilt: true,
            ..LoadedFile::default()
        });
    }
    let complete_tail = text.ends_with('\n');
    let mut loaded = LoadedFile::default();
    for (index, line) in lines.iter().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some((key, value)) => {
                loaded
                    .records
                    .entry(key)
                    .and_modify(|resident| *resident = merged(*resident, value))
                    .or_insert(value);
            }
            None => {
                // A complete final line that parses fine but lacks its trailing
                // newline is benign; a *failing* final partial line is a tear.
                if index == lines.len() - 1 && !complete_tail {
                    loaded.torn_tail = true;
                }
                loaded.damaged.push((*line).to_string());
            }
        }
    }
    Ok(loaded)
}

/// The sidecar file damaged lines of the memo file at `path` are quarantined to.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let file_name = path
        .file_name()
        .and_then(|name| name.to_str())
        .unwrap_or("store");
    path.with_file_name(format!("{file_name}.quarantine"))
}

/// Appends `damaged` lines to the quarantine sidecar (deduplicated — reloading
/// the same damaged file never duplicates its evidence) and returns the sidecar's
/// total line count. Quarantining is best-effort: a sidecar write failure must
/// never turn a salvageable load into an error.
fn quarantine_damaged(path: &Path, damaged: &[String]) -> usize {
    let sidecar = quarantine_path(path);
    let existing = fs::read_to_string(&sidecar).unwrap_or_default();
    let mut lines: std::collections::BTreeSet<&str> = existing
        .lines()
        .filter(|line| !line.trim().is_empty())
        .collect();
    let before = lines.len();
    for line in damaged {
        lines.insert(line.as_str());
    }
    if lines.len() != before {
        let mut out = String::new();
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        let _ = fs::write(&sidecar, out);
    }
    lines.len()
}

/// A snapshot of a store's integrity counters, surfaced by sweep stats and the
/// server's `status` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Records currently held.
    pub records: usize,
    /// Whether the last load found a stale/foreign file and rebuilt from empty.
    pub rebuilt: bool,
    /// Record lines the last load skipped (parse or checksum failures).
    pub damaged_lines: usize,
    /// Whether the last load found the file cut mid-record (mid-flush kill).
    pub torn_tail: bool,
    /// Total lines in the quarantine sidecar after the last load.
    pub quarantined: usize,
}

/// The persistent result store: an in-memory record map plus (optionally) the memo
/// file it loads from and flushes to. See the [module documentation](self) for the
/// key semantics and the on-disk format.
#[derive(Debug, Clone)]
pub struct ResultStore {
    path: Option<PathBuf>,
    records: BTreeMap<EvalKey, StoredEval>,
    rebuilt: bool,
    damaged_lines: usize,
    torn_tail: bool,
    quarantined: usize,
    /// Fault-injection plan every file read/write consults; `None` in production.
    faults: Option<Arc<FaultPlan>>,
}

impl ResultStore {
    /// An empty store with no backing file — [`flush`](Self::flush) is a no-op.
    /// The server mode uses this when run without a store path.
    pub fn in_memory() -> Self {
        ResultStore {
            path: None,
            records: BTreeMap::new(),
            rebuilt: false,
            damaged_lines: 0,
            torn_tail: false,
            quarantined: 0,
            faults: None,
        }
    }

    /// An empty store that *keeps* `path` as its backing file without touching
    /// the filesystem. The server's degraded mode starts from this when the memo
    /// file cannot be loaded: sweeps compute through in memory, and every flush
    /// retries the real file — so the store recovers the moment the path does.
    pub fn empty_at(path: impl Into<PathBuf>, faults: Option<Arc<FaultPlan>>) -> Self {
        ResultStore {
            path: Some(path.into()),
            faults,
            ..ResultStore::in_memory()
        }
    }

    /// Loads (or initializes) the store at `path`. A missing file yields an empty
    /// store; a stale or foreign file is detected and rebuilt from empty
    /// ([`rebuilt`](Self::rebuilt) reports it); corrupt lines are skipped,
    /// counted and quarantined to the [`quarantine_path`] sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] only for true I/O failures (permissions,
    /// hardware) — never for content.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, ExploreError> {
        Self::load_with_faults(path, None)
    }

    /// [`load`](Self::load) with a fault-injection plan attached: this load and
    /// every later [`flush`](Self::flush) consult the plan before touching the
    /// memo file. See [`crate::faults`].
    ///
    /// # Errors
    ///
    /// As [`load`](Self::load), plus the plan's injected read faults.
    pub fn load_with_faults(
        path: impl Into<PathBuf>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Self, ExploreError> {
        let path = path.into();
        let loaded = read_file(&path, faults.as_deref())?;
        let quarantined = if loaded.damaged.is_empty() {
            fs::read_to_string(quarantine_path(&path))
                .map(|text| text.lines().filter(|line| !line.trim().is_empty()).count())
                .unwrap_or(0)
        } else {
            quarantine_damaged(&path, &loaded.damaged)
        };
        Ok(ResultStore {
            path: Some(path),
            records: loaded.records,
            rebuilt: loaded.rebuilt,
            damaged_lines: loaded.damaged.len(),
            torn_tail: loaded.torn_tail,
            quarantined,
            faults,
        })
    }

    /// The backing memo file, when the store has one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether the last load found a stale/foreign file and rebuilt from empty.
    pub fn rebuilt(&self) -> bool {
        self.rebuilt
    }

    /// Record lines the last load skipped (parse or checksum failures); each one
    /// is preserved in the [`quarantine_path`] sidecar.
    pub fn damaged_lines(&self) -> usize {
        self.damaged_lines
    }

    /// Whether the last load found the file cut mid-record — the signature of a
    /// process killed mid-flush. The torn line is counted in
    /// [`damaged_lines`](Self::damaged_lines) and quarantined like any other.
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Total lines held by the quarantine sidecar after the last load.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Snapshot of the store's integrity counters.
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            records: self.records.len(),
            rebuilt: self.rebuilt,
            damaged_lines: self.damaged_lines,
            torn_tail: self.torn_tail,
            quarantined: self.quarantined,
        }
    }

    /// Number of memoized records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks one key up. Shared references suffice, so worker threads probe the
    /// store concurrently without any lock.
    pub fn lookup(&self, key: &EvalKey) -> Option<StoredEval> {
        self.records.get(key).copied()
    }

    /// Records one evaluation; a conflicting resident value is resolved by the
    /// deterministic merge rule.
    pub fn record(&mut self, key: EvalKey, value: StoredEval) {
        self.records
            .entry(key)
            .and_modify(|resident| *resident = merged(*resident, value))
            .or_insert(value);
    }

    /// Merges a batch of records (e.g. the fresh results of one exploration).
    pub fn merge(&mut self, records: impl IntoIterator<Item = (EvalKey, StoredEval)>) {
        for (key, value) in records {
            self.record(key, value);
        }
    }

    /// Writes the store to its memo file atomically (temp file + rename) after
    /// union-merging whatever is on disk, then verifies its own records survived —
    /// retrying when a concurrent flush won the rename race. Afterwards the file
    /// holds the deterministic union: records sorted by key, one canonical line
    /// each, so the final bytes are independent of flush order. A store without a
    /// path returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] on true I/O failure, or when the
    /// merge-verify loop cannot converge within its bounded retries.
    pub fn flush(&mut self) -> Result<(), ExploreError> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let faults = self.faults.clone();
        for _ in 0..FLUSH_ATTEMPTS {
            let on_disk = read_file(&path, faults.as_deref())?;
            self.merge(on_disk.records);
            self.write_atomic(&path)?;
            let reread = read_file(&path, faults.as_deref())?;
            let converged = self.records.iter().all(|(key, value)| {
                reread
                    .records
                    .get(key)
                    .is_some_and(|disk| merged(*disk, *value) == *disk)
            });
            if converged {
                return Ok(());
            }
        }
        Err(store_error(
            &path,
            "concurrent flushes kept overwriting each other; giving up after bounded retries",
        ))
    }

    fn write_atomic(&self, path: &Path) -> Result<(), ExploreError> {
        let fault = self
            .faults
            .as_deref()
            .and_then(FaultPlan::next_store_write_fault);
        if matches!(fault, Some(WriteFault::Error)) {
            return Err(store_error(path, "injected store write fault: I/O error"));
        }
        let file_name = path
            .file_name()
            .and_then(|name| name.to_str())
            .unwrap_or("store");
        let temp = path.with_file_name(format!("{file_name}.tmp.{}", std::process::id()));
        let mut out = String::with_capacity(64 * (self.records.len() + 1));
        out.push_str(STORE_FORMAT);
        out.push('\n');
        for (key, value) in &self.records {
            out.push_str(&format_line(key, value));
            out.push('\n');
        }
        // An injected torn write truncates the payload and still renames it into
        // place (the tear lands in the real memo file — the data loss of a kill
        // right after the rename); a crash-before-rename writes the full temp
        // file and leaves it orphaned. Both then report the injected error, as a
        // killed process would leave its caller with a failed flush.
        let payload = match fault {
            Some(WriteFault::Torn { keep_bytes }) => &out.as_bytes()[..keep_bytes.min(out.len())],
            _ => out.as_bytes(),
        };
        let write = || -> std::io::Result<()> {
            let mut file = fs::File::create(&temp)?;
            file.write_all(payload)?;
            file.sync_all()?;
            if matches!(fault, Some(WriteFault::CrashBeforeRename)) {
                return Ok(());
            }
            fs::rename(&temp, path)
        };
        write().map_err(|error| {
            let _ = fs::remove_file(&temp);
            store_error(path, error)
        })?;
        match fault {
            Some(WriteFault::Torn { .. }) => Err(store_error(
                path,
                "injected store write fault: torn write (killed mid-flush)",
            )),
            Some(WriteFault::CrashBeforeRename) => Err(store_error(
                path,
                "injected store write fault: crash before rename",
            )),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(stage: EvalStage, salt: u64) -> EvalKey {
        EvalKey {
            stage,
            structural: salt,
            fingerprint: [salt ^ 1, salt ^ 2],
            tech: 7,
            flow: "conventional".to_string(),
            profiles: salt ^ 3,
            stimulus: 0,
        }
    }

    fn value(delay: f64) -> StoredEval {
        StoredEval {
            delay,
            area: 12.5,
            switching_energy: 3.25,
            power_mw: 0.75,
            cell_count: 42,
            logic_depth: 9,
            simulated_switch_power: 0.125,
        }
    }

    #[test]
    fn line_roundtrip_is_exact() {
        for stage in [EvalStage::Analysis, EvalStage::Point] {
            let key = key(stage, 0xdead_beef);
            let value = value(1.625);
            let line = format_line(&key, &value);
            let (parsed_key, parsed_value) = parse_line(&line).expect("line parses");
            assert_eq!(parsed_key, key);
            assert_eq!(parsed_value, value);
        }
    }

    #[test]
    fn corrupt_lines_fail_the_checksum() {
        let line = format_line(&key(EvalStage::Analysis, 5), &value(2.0));
        // Flip one hex digit of the delay field.
        let tampered = {
            let mut tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
            let delay = tokens[8].clone();
            tokens[8] = match delay.strip_prefix('0') {
                Some(rest) => format!("1{rest}"),
                None => format!("0{}", &delay[1..]),
            };
            tokens.join(" ")
        };
        assert!(parse_line(&tampered).is_none(), "bit flip must be rejected");
        assert!(parse_line("A nonsense").is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn merge_rule_is_commutative_and_idempotent() {
        let small = value(1.0);
        let large = value(2.0);
        assert_eq!(merged(small, large), merged(large, small));
        assert_eq!(merged(small, small), small);
        assert_eq!(merged(small, large), small);
    }

    #[test]
    fn point_keys_track_every_identity_component() {
        let tech = dpsyn_tech::TechLibrary::lcbg10pv_like().identity_digest();
        let design = dpsyn_designs::x_squared();
        let base = EvalKey::point(&design, Flow::FaAot, tech, 0);
        assert_eq!(base, EvalKey::point(&design, Flow::FaAot, tech, 0));
        assert_ne!(base, EvalKey::point(&design, Flow::FaAlp, tech, 0));
        assert_ne!(
            base,
            EvalKey::point(&design, Flow::FaRandom(1), tech, 0),
            "the fa_random seed is part of the flow identity"
        );
        assert_ne!(
            EvalKey::point(&design, Flow::FaAnneal(1), tech, 0),
            EvalKey::point(&design, Flow::FaAnneal(2), tech, 0),
            "the fa_anneal seed is part of the flow identity"
        );
        assert_ne!(
            EvalKey::point(&design, Flow::FaRandom(1), tech, 0),
            EvalKey::point(&design, Flow::FaAnneal(1), tech, 0),
            "equal seeds of different seeded flows never alias"
        );
        assert_ne!(base, EvalKey::point(&design, Flow::FaAot, tech ^ 1, 0));
        assert_ne!(
            base,
            EvalKey::point(&design, Flow::FaAot, tech, 1),
            "the stimulus digest is part of the point key"
        );
        let reprofiled = design.with_uniform_arrival_skew(9, 2.0);
        assert_ne!(base, EvalKey::point(&reprofiled, Flow::FaAot, tech, 0));
        assert_ne!(
            base,
            EvalKey::point(&dpsyn_designs::x_cubed(), Flow::FaAot, tech, 0)
        );
    }

    #[test]
    fn analysis_keys_are_name_blind_but_structure_exact() {
        use dpsyn_netlist::CellKind;
        let build = |flip: bool| {
            let mut netlist = Netlist::new("demo");
            let a = netlist.add_input("a");
            let b = netlist.add_input("b");
            let kind = if flip { CellKind::Or2 } else { CellKind::And2 };
            let out = netlist.add_gate(kind, &[a, b]).unwrap()[0];
            netlist.mark_output(out);
            netlist
        };
        let base = EvalKey::analysis(&build(false), 7, "conventional", 11, 0);
        let mut renamed = build(false);
        renamed.set_net_name(renamed.inputs()[0], "zz");
        assert_eq!(EvalKey::analysis(&renamed, 7, "conventional", 11, 0), base);
        assert_ne!(
            EvalKey::analysis(&build(true), 7, "conventional", 11, 0),
            base
        );
        assert_ne!(
            EvalKey::analysis(&build(false), 8, "conventional", 11, 0),
            base
        );
        assert_ne!(EvalKey::analysis(&build(false), 7, "csa_opt", 11, 0), base);
        assert_ne!(
            EvalKey::analysis(&build(false), 7, "conventional", 12, 0),
            base
        );
        assert_ne!(
            EvalKey::analysis(&build(false), 7, "conventional", 11, 3),
            base,
            "the stimulus digest is part of the analysis key"
        );
    }

    #[test]
    fn stimulus_digests_track_request_and_layout() {
        use crate::spec::SimActivity;
        use dpsyn_netlist::{Word, WordMap};
        let base = stimulus_digest(SimActivity {
            seed: 5,
            vectors: 256,
        });
        assert_ne!(
            base, 0,
            "a real activity never digests to the analytic zero"
        );
        assert_eq!(
            base,
            stimulus_digest(SimActivity {
                seed: 5,
                vectors: 256
            })
        );
        assert_ne!(
            base,
            stimulus_digest(SimActivity {
                seed: 6,
                vectors: 256
            })
        );
        assert_ne!(
            base,
            stimulus_digest(SimActivity {
                seed: 5,
                vectors: 128
            })
        );

        // Layout digests separate word maps that bind the same stimulus bits to
        // different nets, and never collide with the bare request digest.
        let mut netlist = Netlist::new("demo");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let straight = WordMap::new(
            vec![Word::new("a", vec![a]), Word::new("b", vec![b])],
            Word::new("out", vec![a]),
        );
        let crossed = WordMap::new(
            vec![Word::new("a", vec![b]), Word::new("b", vec![a])],
            Word::new("out", vec![a]),
        );
        let straight_digest = stimulus_layout_digest(base, &straight);
        assert_eq!(straight_digest, stimulus_layout_digest(base, &straight));
        assert_ne!(straight_digest, stimulus_layout_digest(base, &crossed));
        assert_ne!(straight_digest, base);
    }

    #[test]
    fn profile_digest_is_exact_in_values_and_nets() {
        let mut arrivals = BTreeMap::new();
        let mut probabilities = BTreeMap::new();
        let netlist = {
            let mut netlist = Netlist::new("demo");
            netlist.add_input("a");
            netlist.add_input("b");
            netlist
        };
        let (a, b) = (netlist.inputs()[0], netlist.inputs()[1]);
        arrivals.insert(a, 1.0);
        probabilities.insert(a, 0.5);
        let base = profile_digest(&arrivals, &probabilities);
        assert_eq!(base, profile_digest(&arrivals, &probabilities));
        let mut shifted = arrivals.clone();
        shifted.insert(a, 1.0 + f64::EPSILON);
        assert_ne!(profile_digest(&shifted, &probabilities), base);
        let mut moved = arrivals.clone();
        moved.remove(&a);
        moved.insert(b, 1.0);
        assert_ne!(profile_digest(&moved, &probabilities), base);
    }

    #[test]
    fn in_memory_store_flush_is_a_noop() {
        let mut store = ResultStore::in_memory();
        store.record(key(EvalStage::Point, 1), value(1.0));
        assert_eq!(store.len(), 1);
        assert!(store.lookup(&key(EvalStage::Point, 1)).is_some());
        assert!(store.lookup(&key(EvalStage::Analysis, 1)).is_none());
        store.flush().expect("no backing file, nothing to do");
    }
}
