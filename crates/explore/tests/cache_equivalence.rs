//! Pins the engine's compiled-program cache + delta-evaluation path to the plain
//! per-job full path: every evaluated point — metrics *and* retained artifact — must
//! be bit-identical to an independent `Flow::run` of the same job, no matter whether
//! the engine evaluated it through a full bundle or a cached delta rerun.
//!
//! The matrix deliberately crosses profile axes with the two module-binding flows
//! (`Conventional` synthesizes profile-invariant structures — guaranteed cache hits;
//! `CsaOpt`'s structure shifts with the arrival profile — exercising the structural
//! verification fallback) plus an FA-tree flow (always pre-analysed). Two workload
//! widths push the number of distinct `CsaOpt` structures a single worker sees well
//! past the cache bound, so the run also churns through evictions and
//! recency-refreshing replacements — none of which may perturb a single bit.

use dpsyn_explore::{explore, BiasProfile, ExplorationSpec, Flow, SkewProfile};

fn spec(threads: usize) -> ExplorationSpec {
    ExplorationSpec::builder()
        .design(dpsyn_designs::iir())
        .design(dpsyn_designs::mixed_poly())
        .sum_workload(4)
        .widths([4, 5])
        .skews([
            SkewProfile::Keep,
            SkewProfile::Uniform(2.0),
            SkewProfile::Uniform(4.0),
        ])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot])
        .seed(13)
        .threads(threads)
        .retain_artifacts(true)
        .build()
        .expect("spec is well-formed")
}

#[test]
fn cached_delta_points_match_independent_full_runs() {
    for threads in [1, 3] {
        let spec = spec(threads);
        let results = explore(&spec).expect("exploration succeeds");
        assert_eq!(results.points().len(), spec.jobs().len());
        for point in results.points() {
            let design = spec.materialize(&point.job);
            let reference = point
                .job
                .flow()
                .run(
                    design.expr(),
                    design.spec(),
                    design.output_width(),
                    spec.tech(),
                )
                .expect("direct flow run succeeds");
            let label = point.job.label();
            assert_eq!(
                point.metrics.delay.to_bits(),
                reference.delay.to_bits(),
                "{label}: delay"
            );
            assert_eq!(
                point.metrics.area.to_bits(),
                reference.area.to_bits(),
                "{label}: area"
            );
            assert_eq!(
                point.metrics.switching_energy.to_bits(),
                reference.switching_energy.to_bits(),
                "{label}: switching energy"
            );
            assert_eq!(
                point.metrics.power.to_bits(),
                reference.power_mw.to_bits(),
                "{label}: power"
            );
            let artifact = point
                .artifact
                .as_ref()
                .expect("retain_artifacts keeps every point's artifact");
            assert_eq!(artifact.flow, reference.flow, "{label}: flow name");
            assert_eq!(artifact.netlist, reference.netlist, "{label}: netlist");
            assert_eq!(artifact.word_map, reference.word_map, "{label}: word map");
            assert_eq!(artifact.compiled, reference.compiled, "{label}: program");
            assert_eq!(
                artifact.delay.to_bits(),
                reference.delay.to_bits(),
                "{label}: artifact delay"
            );
            assert_eq!(
                artifact.switching_energy.to_bits(),
                reference.switching_energy.to_bits(),
                "{label}: artifact energy"
            );
        }
    }
}
