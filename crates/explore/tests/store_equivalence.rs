//! End-to-end equivalence suite for the persistent cross-run result store.
//!
//! The store's whole contract is *invisibility*: a warm-store sweep must render
//! byte-identically to a cold one, under every thread count and steal policy, for
//! partial warm-ups, and with artifact retention in play — while corrupt or stale
//! memo files degrade to a rebuild, never to wrong answers, and concurrent flushes
//! merge to one deterministic file.

use dpsyn_explore::{
    explore_with_stats, BiasProfile, EvalKey, EvalStage, ExplorationSpec, ExplorationSpecBuilder,
    Flow, ResultStore, SimActivity, SkewProfile, StealPolicy, StoredEval, STORE_FORMAT,
};
use std::path::PathBuf;

/// A fresh scratch path per test; the process id keeps parallel `cargo test`
/// processes (e.g. different profiles) apart.
fn scratch(test: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dpsyn-store-equivalence-{}-{test}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// The 48-job matrix the suite sweeps: a fixed design plus a sum workload across
/// widths, skews, biases and four flows — both analysis stages (the FA-tree flows
/// analyse during synthesis, `conventional`/`csa_opt` after it), both source kinds.
fn suite_spec() -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .sum_workload(3)
        .widths([3, 4])
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot, Flow::FaAlp])
        .seed(7)
}

#[test]
fn warm_store_is_byte_identical_across_threads_policies_and_partial_warmups() {
    let path = scratch("equivalence");
    // Cold reference run: populates the store from empty.
    let spec = suite_spec()
        .store(path.clone())
        .threads(2)
        .build()
        .expect("suite spec is well-formed");
    let jobs = spec.jobs().len();
    assert_eq!(jobs, 48, "the suite matrix is 48 jobs");
    let (cold, cold_stats) = explore_with_stats(&spec).expect("cold run succeeds");
    let cold_summary = cold.render_summary();
    assert_eq!(
        cold_stats.total_store_hits(),
        0,
        "an empty store cannot hit"
    );

    // A plain no-store run must render the same bytes (the store changes nothing).
    let (plain, _) = explore_with_stats(&suite_spec().threads(2).build().expect("plain spec"))
        .expect("plain run succeeds");
    assert_eq!(plain.render_summary(), cold_summary);

    // Warm reruns: every thread count × steal policy serves all 48 jobs from the
    // store and renders byte-identically.
    for threads in [1, 2, 4] {
        for policy in [StealPolicy::BusiestVictim, StealPolicy::RoundRobin] {
            let warm_spec = suite_spec()
                .store(path.clone())
                .threads(threads)
                .steal_policy(policy)
                .build()
                .expect("warm spec is well-formed");
            let (warm, stats) = explore_with_stats(&warm_spec).expect("warm run succeeds");
            assert_eq!(
                warm.render_summary(),
                cold_summary,
                "warm summary diverged at {threads} thread(s), {policy:?}"
            );
            assert_eq!(
                stats.total_store_hits(),
                jobs,
                "a fully warmed store must serve every job ({threads} thread(s), {policy:?})"
            );
        }
    }

    // Mixed run: warm only half the flow axis first, then sweep the full matrix —
    // the shared 24 jobs hit, the rest evaluate fresh, the bytes still match.
    let mixed_path = scratch("equivalence-mixed");
    let half_spec = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .sum_workload(3)
        .widths([3, 4])
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([Flow::Conventional, Flow::FaAot])
        .seed(7)
        .store(mixed_path.clone())
        .threads(2)
        .build()
        .expect("half spec is well-formed");
    let half_jobs = half_spec.jobs().len();
    assert_eq!(half_jobs, 24);
    explore_with_stats(&half_spec).expect("half warm-up succeeds");
    let mixed_spec = suite_spec()
        .store(mixed_path.clone())
        .threads(4)
        .build()
        .expect("mixed spec");
    let (mixed, stats) = explore_with_stats(&mixed_spec).expect("mixed run succeeds");
    assert_eq!(
        mixed.render_summary(),
        cold_summary,
        "a partially warmed store must not change a single byte"
    );
    assert_eq!(
        stats.total_store_hits(),
        half_jobs,
        "exactly the warmed half of the matrix is served from the store"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&mixed_path);
}

#[test]
fn retained_artifacts_bypass_lookups_and_stay_complete() {
    let path = scratch("retain");
    let retain_spec = |store: PathBuf| {
        suite_spec()
            .store(store)
            .retain_artifacts(true)
            .threads(2)
            .build()
            .expect("retain spec is well-formed")
    };
    let spec = retain_spec(path.clone());
    let (cold, _) = explore_with_stats(&spec).expect("cold retain run succeeds");
    // The cold retain run recorded its results; a warm retain run must NOT serve
    // from the store (a memoized record has no netlist to retain) ...
    let (warm, stats) = explore_with_stats(&retain_spec(path.clone())).expect("warm retain run");
    assert_eq!(
        stats.total_store_hits(),
        0,
        "artifact retention must disable store lookups"
    );
    // ... and every point still carries its full artifact, identical to cold.
    assert_eq!(warm.points().len(), cold.points().len());
    for (warm_point, cold_point) in warm.points().iter().zip(cold.points()) {
        let warm_artifact = warm_point.artifact.as_ref().expect("warm artifact kept");
        let cold_artifact = cold_point.artifact.as_ref().expect("cold artifact kept");
        assert_eq!(warm_point.metrics, cold_point.metrics);
        assert_eq!(
            warm_artifact.netlist.to_verilog(),
            cold_artifact.netlist.to_verilog(),
            "retained netlists must be identical on {}",
            warm_point.job.label()
        );
        assert_eq!(warm_artifact.delay.to_bits(), cold_artifact.delay.to_bits());
    }
    assert_eq!(warm.render_summary(), cold.render_summary());

    // The store is still warmed by retain runs: a later non-retaining sweep hits.
    let (served, stats) = explore_with_stats(
        &suite_spec()
            .store(path.clone())
            .threads(2)
            .build()
            .expect("non-retain spec"),
    )
    .expect("non-retain run succeeds");
    assert_eq!(stats.total_store_hits(), served.points().len());
    assert_eq!(served.render_summary(), cold.render_summary());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_and_stale_memo_files_rebuild_instead_of_failing() {
    let path = scratch("corrupt");
    // A foreign file: detected, rebuilt from empty, never an error.
    std::fs::write(&path, "not a store at all\nrandom bytes\n").expect("write corrupt file");
    let store = ResultStore::load(&path).expect("corrupt files load as empty");
    assert!(store.rebuilt(), "foreign header must report a rebuild");
    assert!(store.is_empty());

    // A stale version: same treatment.
    std::fs::write(&path, "dpsyn-eval-store v0\nA 0 0 0 0 0 x 0 0 0 0 0 0 0\n")
        .expect("write stale file");
    let store = ResultStore::load(&path).expect("stale files load as empty");
    assert!(store.rebuilt(), "stale version must report a rebuild");
    assert!(store.is_empty());

    // The previous live version (v1, no stimulus column) is stale too: its lines
    // cannot carry the stimulus digest, so the whole file rebuilds.
    std::fs::write(&path, "dpsyn-eval-store v1\nA 0 0 0 0 0 x 0 0 0 0 0 0 0\n")
        .expect("write v1 file");
    let store = ResultStore::load(&path).expect("v1 files load as empty");
    assert!(store.rebuilt(), "the stimulus-less v1 format must rebuild");
    assert!(store.is_empty());

    // A single tampered line: skipped and counted, the healthy records survive.
    let mut seeded = ResultStore::load(&path).expect("load for seeding");
    seeded.record(sample_key(1), sample_value(1.0));
    seeded.record(sample_key(2), sample_value(2.0));
    seeded.flush().expect("seed flush");
    let text = std::fs::read_to_string(&path).expect("read seeded store");
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "header + two records");
    let tampered = lines[1].replace(char::from(lines[1].as_bytes()[2]), "Z");
    lines[1] = &tampered;
    std::fs::write(&path, lines.join("\n")).expect("write tampered store");
    let reloaded = ResultStore::load(&path).expect("tampered store loads");
    assert!(!reloaded.rebuilt(), "the header is fine");
    assert_eq!(reloaded.damaged_lines(), 1, "one line failed its checksum");
    assert_eq!(reloaded.len(), 1, "the healthy record survives");

    // An exploration against the truncated store rebuilds the lost results.
    let spec = suite_spec()
        .store(path.clone())
        .threads(1)
        .build()
        .expect("rebuild spec");
    let (results, _) = explore_with_stats(&spec).expect("sweep over tampered store succeeds");
    assert_eq!(results.points().len(), 48);
    let rebuilt = ResultStore::load(&path).expect("rebuilt store loads");
    assert_eq!(rebuilt.damaged_lines(), 0, "the flush rewrote clean lines");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn anneal_seeds_never_alias_one_memo_entry() {
    let path = scratch("anneal-seeds");
    let anneal_spec = |flows: Vec<Flow>| {
        ExplorationSpec::builder()
            .design(dpsyn_designs::x_squared())
            .flows(flows)
            .seed(7)
            .store(path.clone())
            .threads(2)
            .build()
            .expect("anneal spec is well-formed")
    };
    // Warm the store with seed 1 only.
    explore_with_stats(&anneal_spec(vec![Flow::FaAnneal(1)])).expect("seed-1 warm-up succeeds");
    // Sweep both seeds: only the warmed seed may be served; if the memo key
    // dropped the seed, seed 2 would (wrongly) hit seed 1's entry.
    let (both, stats) =
        explore_with_stats(&anneal_spec(vec![Flow::FaAnneal(1), Flow::FaAnneal(2)]))
            .expect("two-seed sweep succeeds");
    assert_eq!(both.points().len(), 2);
    assert_eq!(
        stats.total_store_hits(),
        1,
        "seed 2 must not alias seed 1's memo entry"
    );
    // A rerun of the full two-seed sweep now hits both distinct entries.
    let (rerun, stats) =
        explore_with_stats(&anneal_spec(vec![Flow::FaAnneal(1), Flow::FaAnneal(2)]))
            .expect("warm two-seed sweep succeeds");
    assert_eq!(stats.total_store_hits(), 2);
    assert_eq!(rerun.render_summary(), both.render_summary());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sim_stimulus_never_aliases_an_analytic_or_other_seed_entry() {
    let path = scratch("sim-stimulus");
    let sim_spec = |activity: Option<SimActivity>| {
        let mut builder = ExplorationSpec::builder()
            .design(dpsyn_designs::x_squared())
            .flows([Flow::Conventional, Flow::CsaOpt])
            .seed(7)
            .store(path.clone())
            .threads(2);
        if let Some(activity) = activity {
            builder = builder.sim_activity(activity);
        }
        builder.build().expect("sim spec is well-formed")
    };
    // Warm the store analytically. A simulated-metric sweep of the *same* matrix
    // must not be served from those entries: a memoized analytic record has no
    // simulated power to report.
    explore_with_stats(&sim_spec(None)).expect("analytic warm-up succeeds");
    let activity_a = SimActivity {
        seed: 11,
        vectors: 256,
    };
    let (cold_sim, stats) =
        explore_with_stats(&sim_spec(Some(activity_a))).expect("cold sim sweep succeeds");
    assert_eq!(
        stats.total_store_hits(),
        0,
        "a simulated sweep must not alias analytic store entries"
    );
    let cold_summary = cold_sim.render_summary();
    assert!(cold_summary.contains("sim mW"));

    // A different stimulus (seed or vector count) is a different measurement.
    for activity_b in [
        SimActivity {
            seed: 12,
            vectors: 256,
        },
        SimActivity {
            seed: 11,
            vectors: 512,
        },
    ] {
        let (_, stats) =
            explore_with_stats(&sim_spec(Some(activity_b))).expect("other-stimulus sweep");
        assert_eq!(
            stats.total_store_hits(),
            0,
            "stimulus {activity_b:?} must not alias seed 11 x 256 entries"
        );
    }

    // The exact same stimulus reruns fully warm and byte-identically.
    let (warm_sim, stats) =
        explore_with_stats(&sim_spec(Some(activity_a))).expect("warm sim sweep succeeds");
    assert_eq!(stats.total_store_hits(), 2, "exact sim rerun hits fully");
    assert_eq!(warm_sim.render_summary(), cold_summary);

    // And the analytic matrix still hits its own (stimulus-0) entries.
    let (_, stats) = explore_with_stats(&sim_spec(None)).expect("analytic rerun succeeds");
    assert_eq!(stats.total_store_hits(), 2);
    let _ = std::fs::remove_file(&path);
}

fn sample_key(salt: u64) -> EvalKey {
    EvalKey {
        stage: EvalStage::Analysis,
        structural: salt,
        fingerprint: [salt ^ 0xaaaa, salt ^ 0x5555],
        tech: 7,
        flow: "conventional".to_string(),
        profiles: salt.rotate_left(13),
        stimulus: 0,
    }
}

fn sample_value(delay: f64) -> StoredEval {
    StoredEval {
        delay,
        area: 10.0 + delay,
        switching_energy: 0.5 * delay,
        power_mw: 0.25 * delay,
        cell_count: 10,
        logic_depth: 3,
        simulated_switch_power: 0.2 * delay,
    }
}

#[test]
fn concurrent_flushes_merge_to_one_deterministic_file() {
    // Two "processes" (two store instances over one path) with overlapping and
    // disjoint records, flushed in both orders: the final file must hold the full
    // union with identical bytes either way.
    let build_stores = |path: PathBuf| {
        let mut first = ResultStore::load(&path).expect("first store loads");
        let mut second = ResultStore::load(&path).expect("second store loads");
        for salt in 0..8 {
            first.record(sample_key(salt), sample_value(salt as f64));
        }
        for salt in 4..12 {
            second.record(sample_key(salt), sample_value(salt as f64));
        }
        (first, second)
    };
    let path_ab = scratch("flush-ab");
    let (mut a, mut b) = build_stores(path_ab.clone());
    a.flush().expect("a flushes");
    b.flush().expect("b flushes over a");
    let bytes_ab = std::fs::read(&path_ab).expect("read ab");

    let path_ba = scratch("flush-ba");
    let (mut a, mut b) = build_stores(path_ba.clone());
    b.flush().expect("b flushes");
    a.flush().expect("a flushes over b");
    let bytes_ba = std::fs::read(&path_ba).expect("read ba");

    assert_eq!(
        bytes_ab, bytes_ba,
        "flush order must not change the merged file's bytes"
    );
    let merged = ResultStore::load(&path_ab).expect("merged store loads");
    assert_eq!(merged.len(), 12, "the union holds every distinct key");
    assert_eq!(merged.damaged_lines(), 0);
    assert!(merged.lookup(&sample_key(0)).is_some());
    assert!(merged.lookup(&sample_key(11)).is_some());
    assert!(STORE_FORMAT.starts_with("dpsyn-eval-store"));
    let _ = std::fs::remove_file(&path_ab);
    let _ = std::fs::remove_file(&path_ba);
}
