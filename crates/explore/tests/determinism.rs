//! Thread-count determinism: an exploration's results — point ordering, metrics, the
//! Pareto front and the rendered summary bytes — are identical for 1, 2, 4 and 8
//! workers, in the spirit of the repository-level `tests/determinism.rs`.

use dpsyn_explore::{
    explore, BiasProfile, ExplorationResults, ExplorationSpec, Flow, SimActivity, SkewProfile,
    StealPolicy,
};

/// Builds the reference spec of the suite with the given worker count: two fixed
/// designs plus a workload source, crossed with two widths, a skew and a bias profile,
/// over five flows (80 jobs) — including the seeded `fa_anneal` local search, whose
/// move trajectory must also be worker-count invariant.
fn spec(threads: usize) -> ExplorationSpec {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::mixed_poly())
        .sum_workload(4)
        .widths([3, 5])
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([
            Flow::CsaOpt,
            Flow::FaAot,
            Flow::FaAlp,
            Flow::FaRandom(5),
            Flow::FaAnneal(5),
        ])
        .seed(11)
        .threads(threads)
        .build()
        .expect("reference spec is well-formed")
}

/// Flattens a result into exactly-comparable bytes/bits: job labels, metric bit
/// patterns, front indices and the rendered summary.
fn fingerprint(results: &ExplorationResults) -> (Vec<String>, Vec<[u64; 3]>, Vec<usize>, String) {
    let labels = results
        .points()
        .iter()
        .map(|point| format!("{} -> {}", point.job, point.design))
        .collect();
    let metrics = results
        .points()
        .iter()
        .map(|point| {
            [
                point.metrics.delay.to_bits(),
                point.metrics.power.to_bits(),
                point.metrics.area.to_bits(),
            ]
        })
        .collect();
    (
        labels,
        metrics,
        results.front_indices().to_vec(),
        results.render_summary(),
    )
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    let reference = explore(&spec(1)).expect("single-threaded exploration succeeds");
    let reference_fingerprint = fingerprint(&reference);
    for threads in [2, 4, 8] {
        let parallel = explore(&spec(threads)).expect("parallel exploration succeeds");
        let parallel_fingerprint = fingerprint(&parallel);
        assert_eq!(
            reference_fingerprint.0, parallel_fingerprint.0,
            "job ordering diverged at {threads} threads"
        );
        assert_eq!(
            reference_fingerprint.1, parallel_fingerprint.1,
            "metrics diverged at {threads} threads"
        );
        assert_eq!(
            reference_fingerprint.2, parallel_fingerprint.2,
            "Pareto front diverged at {threads} threads"
        );
        assert_eq!(
            reference_fingerprint.3, parallel_fingerprint.3,
            "rendered summary bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let first = explore(&spec(4)).expect("exploration succeeds");
    let second = explore(&spec(4)).expect("exploration succeeds");
    assert_eq!(fingerprint(&first), fingerprint(&second));
}

/// The adversarial-skew matrix for the work-stealing scheduler: one **dominant**
/// group (an 8-operand 10-bit sum workload whose synthesis and analysis dwarf the
/// rest) crossed with a dense 5-skew × 3-bias profile grid, plus many **tiny**
/// groups (cheap two-input fixed designs). Under the static PR-5 chunker the
/// dominant group's tail chunks would pin whichever worker claimed them last; under
/// work-stealing idle workers drain it — and either way the sweep output must stay
/// byte-identical.
fn adversarial_spec(threads: usize, policy: StealPolicy, overpartition: usize) -> ExplorationSpec {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::x2_x_y())
        .sum_workload(8)
        .widths([10])
        .skews([
            SkewProfile::Keep,
            SkewProfile::Uniform(1.0),
            SkewProfile::Uniform(2.0),
            SkewProfile::Uniform(3.0),
            SkewProfile::Uniform(4.0),
        ])
        .biases([
            BiasProfile::Keep,
            BiasProfile::Uniform(0.2),
            BiasProfile::Uniform(0.4),
        ])
        .flows([Flow::Conventional, Flow::FaAot])
        .seed(23)
        .threads(threads)
        .steal_policy(policy)
        .overpartition(overpartition)
        .build()
        .expect("adversarial spec is well-formed")
}

#[test]
fn adversarial_skew_is_bit_identical_for_any_worker_count_and_steal_policy() {
    // The single-worker, single-chunk-per-group run is the reference: maximal delta
    // chains, no stealing possible.
    let reference = fingerprint(
        &explore(&adversarial_spec(1, StealPolicy::BusiestVictim, 1))
            .expect("single-threaded adversarial exploration succeeds"),
    );
    for policy in [StealPolicy::BusiestVictim, StealPolicy::RoundRobin] {
        for threads in [2, 4, 8] {
            // Overpartition 1 reproduces the coarse one-chunk-per-worker split;
            // 4 is the default; 16 degenerates to per-job chunks on this matrix.
            for overpartition in [1, 4, 16] {
                let stolen = explore(&adversarial_spec(threads, policy, overpartition))
                    .expect("work-stealing adversarial exploration succeeds");
                assert_eq!(
                    reference,
                    fingerprint(&stolen),
                    "adversarial sweep diverged at {threads} threads, {policy:?}, \
                     overpartition {overpartition}"
                );
            }
        }
    }
}

/// A simulated-activity sweep: the stimulus batch is keyed by the spec-level sim
/// seed (never by worker or group identity), so the simulated power bits — and the
/// summary bytes that carry the `sim mW`/`div%` columns — must be identical for any
/// worker count and steal policy.
fn sim_spec(threads: usize, policy: StealPolicy) -> ExplorationSpec {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::mixed_poly())
        .sum_workload(3)
        .widths([3, 4])
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot])
        .seed(11)
        .sim_activity(SimActivity {
            seed: 19,
            vectors: 256,
        })
        .threads(threads)
        .steal_policy(policy)
        .build()
        .expect("sim spec is well-formed")
}

#[test]
fn simulated_activity_sweeps_are_bit_identical_across_workers_and_policies() {
    let reference = explore(&sim_spec(1, StealPolicy::BusiestVictim))
        .expect("single-threaded sim exploration succeeds");
    let sim_bits = |results: &ExplorationResults| -> Vec<u64> {
        results
            .points()
            .iter()
            .map(|point| {
                point
                    .metrics
                    .simulated_switch_power
                    .expect("every point of a sim sweep carries the simulated metric")
                    .to_bits()
            })
            .collect()
    };
    let reference_fingerprint = (fingerprint(&reference), sim_bits(&reference));
    assert!(reference_fingerprint.0 .3.contains("sim mW"));
    assert!(reference_fingerprint.0 .3.contains("div%"));
    for policy in [StealPolicy::BusiestVictim, StealPolicy::RoundRobin] {
        for threads in [1, 2, 4] {
            let parallel =
                explore(&sim_spec(threads, policy)).expect("parallel sim exploration succeeds");
            assert_eq!(
                reference_fingerprint,
                (fingerprint(&parallel), sim_bits(&parallel)),
                "sim sweep diverged at {threads} thread(s), {policy:?}"
            );
        }
    }
}

#[test]
fn more_workers_than_jobs_is_safe_and_identical() {
    let small = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .flows([Flow::Conventional, Flow::FaAot])
        .threads(8)
        .build()
        .expect("spec builds");
    let wide = explore(&small).expect("8 workers over 2 jobs");
    assert_eq!(wide.points().len(), 2);
    let narrow = explore(
        &ExplorationSpec::builder()
            .design(dpsyn_designs::x_squared())
            .flows([Flow::Conventional, Flow::FaAot])
            .threads(1)
            .build()
            .expect("spec builds"),
    )
    .expect("1 worker over 2 jobs");
    assert_eq!(fingerprint(&wide), fingerprint(&narrow));
}
