//! Error-path unit tests: malformed specifications return typed `ExploreError`s (with
//! `Display` coverage), never panics.

use dpsyn_explore::{BiasProfile, ExplorationSpec, ExploreError, Flow, SkewProfile};
use std::error::Error as _;

#[test]
fn empty_matrix_no_sources() {
    let error = ExplorationSpec::builder()
        .flow(Flow::FaAot)
        .build()
        .expect_err("no sources must not build");
    assert!(matches!(error, ExploreError::EmptyMatrix));
    assert!(error.to_string().contains("no jobs"));
}

#[test]
fn empty_matrix_no_flows() {
    let error = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .build()
        .expect_err("no flows must not build");
    assert!(matches!(error, ExploreError::EmptyMatrix));
}

#[test]
fn zero_workers() {
    let error = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .flow(Flow::FaAot)
        .threads(0)
        .build()
        .expect_err("zero workers must not build");
    assert!(matches!(error, ExploreError::ZeroWorkers));
    // The message names the offending builder field, not just "worker count".
    assert!(error.to_string().contains("`threads`"));
    assert!(error.to_string().contains("is zero"));
}

#[test]
fn unset_threads_default_to_the_available_parallelism() {
    let spec = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .flow(Flow::FaAot)
        .build()
        .expect("a spec without an explicit thread count builds");
    let expected = std::thread::available_parallelism().map_or(1, |cores| cores.get());
    assert_eq!(spec.threads(), expected);
    // An explicit non-zero count still wins over the default.
    let explicit = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .flow(Flow::FaAot)
        .threads(3)
        .build()
        .expect("an explicit thread count builds");
    assert_eq!(explicit.threads(), 3);
}

#[test]
fn zero_overpartition() {
    let error = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .flow(Flow::FaAot)
        .overpartition(0)
        .build()
        .expect_err("a zero overpartition factor must not build");
    assert!(matches!(error, ExploreError::ZeroOverpartition));
    assert!(error.to_string().contains("`overpartition`"));
}

#[test]
fn zero_width_on_the_width_axis() {
    let error = ExplorationSpec::builder()
        .sum_workload(4)
        .widths([4, 0, 8])
        .flow(Flow::FaAot)
        .build()
        .expect_err("width 0 must not build");
    assert!(matches!(error, ExploreError::ZeroWidth));
    assert!(error.to_string().contains("at least one bit"));
}

#[test]
fn workload_without_widths() {
    let error = ExplorationSpec::builder()
        .sum_workload(4)
        .flow(Flow::FaAot)
        .build()
        .expect_err("a workload source needs widths");
    assert!(matches!(error, ExploreError::MissingWidths));
    assert!(error.to_string().contains("width axis"));
}

#[test]
fn workload_without_operands() {
    let error = ExplorationSpec::builder()
        .sum_workload(0)
        .width(4)
        .flow(Flow::FaAot)
        .build()
        .expect_err("zero operands must not build");
    assert!(matches!(error, ExploreError::EmptySource));
    let error = ExplorationSpec::builder()
        .sum_of_products_workload(0)
        .width(4)
        .flow(Flow::FaAot)
        .build()
        .expect_err("zero terms must not build");
    assert!(matches!(error, ExploreError::EmptySource));
    assert!(error.to_string().contains("no operands"));
}

#[test]
fn invalid_skews_are_rejected() {
    for bad in [-1.0, f64::NAN, f64::INFINITY] {
        let error = ExplorationSpec::builder()
            .design(dpsyn_designs::x_squared())
            .skew(SkewProfile::Uniform(bad))
            .flow(Flow::FaAot)
            .build()
            .expect_err("invalid skew must not build");
        assert!(matches!(error, ExploreError::InvalidSkew(_)), "{bad}");
        assert!(error.to_string().contains("finite and non-negative"));
    }
}

#[test]
fn conflicting_skews_are_rejected() {
    // Exact duplicates conflict regardless of source kinds.
    let error = ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .skews([SkewProfile::Uniform(2.0), SkewProfile::Uniform(2.0)])
        .flow(Flow::FaAot)
        .build()
        .expect_err("duplicate skews must not build");
    match error {
        ExploreError::ConflictingSkews(first, second) => {
            assert_eq!(first, SkewProfile::Uniform(2.0));
            assert_eq!(second, SkewProfile::Uniform(2.0));
        }
        other => panic!("expected ConflictingSkews, got {other:?}"),
    }
    // With a workload source, `Keep` and `Uniform(0.0)` describe the same draw.
    let error = ExplorationSpec::builder()
        .sum_workload(3)
        .width(4)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(0.0)])
        .flow(Flow::FaAot)
        .build()
        .expect_err("Keep vs Uniform(0) over a workload must not build");
    assert!(matches!(error, ExploreError::ConflictingSkews(..)));
    assert!(error.to_string().contains("duplicate jobs"));
    // Without `random_sum` sources the same pair is fine: Keep preserves the
    // design's annotated arrivals while Uniform(0.0) zeroes them.
    ExplorationSpec::builder()
        .design(dpsyn_designs::x2_x_y())
        .skews([SkewProfile::Keep, SkewProfile::Uniform(0.0)])
        .flow(Flow::FaAot)
        .build()
        .expect("distinct profiles over a fixed design build");
    // Sum-of-products workloads draw their own non-zero arrivals, which Keep
    // preserves, so the pair is genuinely distinct there too.
    ExplorationSpec::builder()
        .sum_of_products_workload(2)
        .width(3)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(0.0)])
        .flow(Flow::FaAot)
        .build()
        .expect("distinct profiles over a sum-of-products workload build");
}

#[test]
fn invalid_and_conflicting_biases_are_rejected() {
    for bad in [-0.1, 0.6, f64::NAN] {
        let error = ExplorationSpec::builder()
            .design(dpsyn_designs::x_squared())
            .bias(BiasProfile::Uniform(bad))
            .flow(Flow::FaAlp)
            .build()
            .expect_err("invalid bias must not build");
        assert!(matches!(error, ExploreError::InvalidBias(_)), "{bad}");
        assert!(error.to_string().contains("[0, 0.5]"));
    }
    let error = ExplorationSpec::builder()
        .sum_workload(3)
        .width(4)
        .biases([BiasProfile::Uniform(0.2), BiasProfile::Uniform(0.2)])
        .flow(Flow::FaAlp)
        .build()
        .expect_err("duplicate biases must not build");
    assert!(matches!(error, ExploreError::ConflictingBiases(..)));
    assert!(error.to_string().contains("probability range"));
}

#[test]
fn flow_errors_carry_the_job_label_and_source() {
    // An output width of 0 reaches the synthesis flow and must surface as a typed
    // Flow error naming the job, not a panic.
    let broken = dpsyn_designs::Design::new(
        "w0",
        "zero output width",
        "a + b",
        dpsyn_ir::InputSpec::builder()
            .var("a", 2)
            .var("b", 2)
            .build()
            .unwrap(),
        0,
    );
    let spec = ExplorationSpec::builder()
        .design(broken)
        .flow(Flow::FaAot)
        .build()
        .expect("the spec itself is well-formed");
    let error = dpsyn_explore::explore(&spec).expect_err("width-0 synthesis fails");
    match &error {
        ExploreError::Flow { job, .. } => {
            assert!(job.contains("w0"), "{job}");
            assert!(job.contains("fa_aot"), "{job}");
        }
        other => panic!("expected a Flow error, got {other:?}"),
    }
    assert!(error.source().is_some(), "flow errors expose their cause");
    assert!(error.to_string().contains("flow failed on job"));
}

#[test]
fn error_display_is_covered_for_every_variant() {
    let variants: Vec<ExploreError> = vec![
        ExploreError::EmptyMatrix,
        ExploreError::ZeroWorkers,
        ExploreError::ZeroOverpartition,
        ExploreError::ZeroWidth,
        ExploreError::MissingWidths,
        ExploreError::EmptySource,
        ExploreError::InvalidSkew(-2.0),
        ExploreError::ConflictingSkews(SkewProfile::Keep, SkewProfile::Uniform(0.0)),
        ExploreError::InvalidBias(0.7),
        ExploreError::ConflictingBiases(BiasProfile::Keep, BiasProfile::Uniform(0.0)),
    ];
    let mut renderings: Vec<String> = variants.iter().map(ExploreError::to_string).collect();
    assert!(renderings.iter().all(|text| !text.is_empty()));
    renderings.sort_unstable();
    renderings.dedup();
    assert_eq!(renderings.len(), variants.len(), "messages are distinct");
}
