//! Property suite for the Pareto reduction: the returned front is exactly the set of
//! non-dominated points, and membership is independent of insertion order.

use dpsyn_explore::{pareto_front, PointMetrics};
use proptest::prelude::*;

/// Builds a metrics point from three small integer objectives (small ranges force
/// plenty of dominance and ties, the interesting cases).
fn point(objectives: (u8, u8, u8)) -> PointMetrics {
    PointMetrics {
        delay: f64::from(objectives.0 % 8),
        power: f64::from(objectives.1 % 8),
        area: f64::from(objectives.2 % 8),
        switching_energy: f64::from(objectives.1 % 8) / 10.0,
        cell_count: usize::from(objectives.2),
        logic_depth: usize::from(objectives.0),
        simulated_switch_power: None,
    }
}

/// Deterministically permutes `values` with a seeded Fisher–Yates shuffle.
fn permuted(values: &[PointMetrics], seed: u64) -> Vec<PointMetrics> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut shuffled = values.to_vec();
    for index in (1..shuffled.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        shuffled.swap(index, (state % (index as u64 + 1)) as usize);
    }
    shuffled
}

/// The objective triple of a point, as exactly-comparable bits.
fn key(metrics: &PointMetrics) -> (u64, u64, u64) {
    (
        metrics.delay.to_bits(),
        metrics.power.to_bits(),
        metrics.area.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No point on the returned front is dominated by **any** evaluated point.
    #[test]
    fn front_points_are_never_dominated(
        raw in prop::collection::vec((0u8..255, 0u8..255, 0u8..255), 1..40),
    ) {
        let metrics: Vec<PointMetrics> = raw.into_iter().map(point).collect();
        let front = pareto_front(&metrics);
        prop_assert!(!front.is_empty(), "a non-empty set always has a front");
        for &index in &front {
            for other in &metrics {
                prop_assert!(
                    !other.dominates(&metrics[index]),
                    "front point {index} is dominated"
                );
            }
        }
    }

    /// Every point excluded from the front is dominated by some evaluated point —
    /// together with the invariant above: front == the exact non-dominated set.
    #[test]
    fn excluded_points_are_always_dominated(
        raw in prop::collection::vec((0u8..255, 0u8..255, 0u8..255), 1..40),
    ) {
        let metrics: Vec<PointMetrics> = raw.into_iter().map(point).collect();
        let front = pareto_front(&metrics);
        for (index, candidate) in metrics.iter().enumerate() {
            if front.contains(&index) {
                continue;
            }
            prop_assert!(
                metrics.iter().any(|other| other.dominates(candidate)),
                "excluded point {index} is not dominated by anything"
            );
        }
    }

    /// The front is insertion-order-independent: permuting the evaluated points
    /// selects the same multiset of objective triples.
    #[test]
    fn front_is_insertion_order_independent(
        raw in prop::collection::vec((0u8..255, 0u8..255, 0u8..255), 1..40),
        seed in 0u64..1000,
    ) {
        let metrics: Vec<PointMetrics> = raw.into_iter().map(point).collect();
        let shuffled = permuted(&metrics, seed);
        let mut original: Vec<_> = pareto_front(&metrics)
            .into_iter()
            .map(|index| key(&metrics[index]))
            .collect();
        let mut reordered: Vec<_> = pareto_front(&shuffled)
            .into_iter()
            .map(|index| key(&shuffled[index]))
            .collect();
        original.sort_unstable();
        reordered.sort_unstable();
        prop_assert_eq!(original, reordered);
    }

    /// Duplicated metrics are all kept or all excluded together (equal points cannot
    /// dominate each other).
    #[test]
    fn duplicates_share_their_fate(
        raw in prop::collection::vec((0u8..255, 0u8..255, 0u8..255), 1..20),
        duplicated in 0usize..20,
    ) {
        let mut metrics: Vec<PointMetrics> = raw.into_iter().map(point).collect();
        let duplicated = duplicated % metrics.len();
        metrics.push(metrics[duplicated]);
        let front = pareto_front(&metrics);
        prop_assert_eq!(
            front.contains(&duplicated),
            front.contains(&(metrics.len() - 1)),
            "a duplicate pair split across the front boundary"
        );
    }
}
