//! Static timing analysis over bit-level netlists.
//!
//! Arrival times are propagated from primary inputs (whose arrival profile may be
//! non-uniform, the central premise of the DAC 2000 paper) through every cell using the
//! per-output pin-to-pin delays of a [`TechLibrary`]. The result is a [`TimingReport`]
//! with per-net arrival times, the critical delay and the critical path.
//!
//! The propagation is a **single pass over the shared compiled program**
//! ([`CompiledNetlist`]) with the library resolved once into per-kind delay tables;
//! [`TimingAnalysis::run_compiled`] lets callers that analyse the same netlist several
//! ways (timing, power, simulation) levelize it exactly once.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_netlist::{CellKind, Netlist};
//! use dpsyn_tech::TechLibrary;
//! use dpsyn_timing::TimingAnalysis;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut netlist = Netlist::new("fa");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let c = netlist.add_input("c");
//! let outs = netlist.add_gate(CellKind::Fa, &[a, b, c])?;
//! netlist.mark_output(outs[0]);
//! netlist.mark_output(outs[1]);
//!
//! let mut arrivals = BTreeMap::new();
//! arrivals.insert(a, 3.0);
//! let report = TimingAnalysis::new(&TechLibrary::unit())
//!     .with_input_arrivals(arrivals)
//!     .run(&netlist)?;
//! // sum arrives at max(3,0,0) + Ds = 5, carry at +Dc = 4
//! assert_eq!(report.arrival(outs[0]), 5.0);
//! assert_eq!(report.arrival(outs[1]), 4.0);
//! assert_eq!(report.critical_delay(), 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dpsyn_netlist::{
    CompiledNetlist, CompiledOp, DeltaState, InputDelta, NetId, Netlist, NetlistError,
};
use dpsyn_tech::{ResolvedTech, TechError, TechLibrary};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced by static timing analysis.
#[derive(Debug)]
pub enum TimingError {
    /// The netlist is structurally invalid (cycle, floating net, ...).
    Netlist(NetlistError),
    /// The technology library does not cover a cell kind used by the netlist.
    Tech(TechError),
    /// An input arrival time is negative or not finite.
    InvalidArrival {
        /// The offending net.
        net: NetId,
        /// The offending value.
        arrival: f64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Netlist(error) => write!(f, "invalid netlist: {error}"),
            TimingError::Tech(error) => write!(f, "incomplete technology library: {error}"),
            TimingError::InvalidArrival { net, arrival } => {
                write!(
                    f,
                    "arrival time {arrival} of net {net} is negative or not finite"
                )
            }
        }
    }
}

impl Error for TimingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TimingError::Netlist(error) => Some(error),
            TimingError::Tech(error) => Some(error),
            TimingError::InvalidArrival { .. } => None,
        }
    }
}

impl From<NetlistError> for TimingError {
    fn from(error: NetlistError) -> Self {
        TimingError::Netlist(error)
    }
}

impl From<TechError> for TimingError {
    fn from(error: TechError) -> Self {
        TimingError::Tech(error)
    }
}

/// Configurable static timing analysis.
///
/// Construct with a technology library, optionally provide per-net input arrival times,
/// then [`run`](TimingAnalysis::run) it over a netlist.
#[derive(Debug, Clone)]
pub struct TimingAnalysis<'lib> {
    tech: &'lib TechLibrary,
    input_arrivals: BTreeMap<NetId, f64>,
}

impl<'lib> TimingAnalysis<'lib> {
    /// Creates an analysis with all primary inputs arriving at time zero.
    pub fn new(tech: &'lib TechLibrary) -> Self {
        TimingAnalysis {
            tech,
            input_arrivals: BTreeMap::new(),
        }
    }

    /// Sets the arrival times of primary input nets; inputs not mentioned arrive at 0.
    pub fn with_input_arrivals(mut self, arrivals: BTreeMap<NetId, f64>) -> Self {
        self.input_arrivals = arrivals;
        self
    }

    /// Sets the arrival time of a single primary input net.
    pub fn input_arrival(mut self, net: NetId, arrival: f64) -> Self {
        self.input_arrivals.insert(net, arrival);
        self
    }

    /// Runs the analysis over `netlist`.
    ///
    /// This convenience entry point compiles the netlist internally; callers that
    /// already hold the shared [`CompiledNetlist`] program should use
    /// [`TimingAnalysis::run_compiled`] so the levelization happens exactly once per
    /// netlist rather than once per analysis.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist is invalid, the library does not cover a used
    /// cell kind, or an input arrival is negative / non-finite.
    pub fn run(&self, netlist: &Netlist) -> Result<TimingReport, TimingError> {
        self.tech.check_coverage(netlist)?;
        self.check_arrivals()?;
        let compiled = netlist.compile()?;
        let resolved = self.tech.resolve(&compiled)?;
        Ok(self.propagate(&compiled, &resolved))
    }

    /// Runs the analysis over an already-compiled program: a single pass over the
    /// flat op array with the library resolved once into per-kind delay tables — no
    /// map lookups and no graph traversal in the loop. The report is bit-identical
    /// to [`TimingAnalysis::run`] on the originating netlist.
    ///
    /// # Errors
    ///
    /// Returns an error when the library does not cover a used cell kind or an input
    /// arrival is negative / non-finite.
    pub fn run_compiled(&self, compiled: &CompiledNetlist) -> Result<TimingReport, TimingError> {
        let resolved = self.tech.resolve(compiled)?;
        self.check_arrivals()?;
        Ok(self.propagate(compiled, &resolved))
    }

    fn check_arrivals(&self) -> Result<(), TimingError> {
        for (net, arrival) in &self.input_arrivals {
            check_arrival(*net, *arrival)?;
        }
        Ok(())
    }

    /// The single-pass arrival propagation over the compiled program.
    fn propagate(&self, compiled: &CompiledNetlist, resolved: &ResolvedTech) -> TimingReport {
        let mut arrival = Vec::new();
        let mut worst_predecessor = Vec::new();
        propagate_into(
            compiled,
            resolved,
            &self.input_arrivals,
            &mut arrival,
            &mut worst_predecessor,
        );
        let (critical_output, critical_path) = finalize(compiled, &arrival, &worst_predecessor);
        TimingReport {
            arrival,
            critical_output,
            critical_path,
        }
    }
}

/// Validates one arrival value with the exact predicate of [`TimingAnalysis::run`].
fn check_arrival(net: NetId, arrival: f64) -> Result<(), TimingError> {
    if !arrival.is_finite() || arrival < 0.0 {
        return Err(TimingError::InvalidArrival { net, arrival });
    }
    Ok(())
}

/// The full arrival propagation, writing into caller-provided (persistent) buffers.
///
/// Shared verbatim by [`TimingAnalysis::run_compiled`] and
/// [`IncrementalTiming::run_full`], which is what makes the primed [`DeltaState`]
/// arrays bit-identical to a fresh report.
fn propagate_into(
    compiled: &CompiledNetlist,
    resolved: &ResolvedTech,
    input_arrivals: &BTreeMap<NetId, f64>,
    arrival: &mut Vec<f64>,
    worst_predecessor: &mut Vec<Option<NetId>>,
) {
    arrival.clear();
    arrival.resize(compiled.net_count(), 0.0);
    // The input net on the worst path into each net's driver, used to rebuild the
    // critical path after propagation.
    worst_predecessor.clear();
    worst_predecessor.resize(compiled.net_count(), None);
    for net in compiled.inputs() {
        arrival[net.index()] = input_arrivals.get(net).copied().unwrap_or(0.0);
    }
    for op in compiled.ops() {
        step_op(op, resolved, arrival, worst_predecessor);
    }
}

/// Recomputes one cell: the latest input (keeping the *last* maximum on ties exactly
/// like the former `Iterator::max_by(total_cmp)` fold did) plus the per-kind output
/// delays. Returns the bitmask of output pins whose stored arrival changed bits —
/// the early-termination signal of the delta path.
#[inline]
fn step_op(
    op: &CompiledOp,
    resolved: &ResolvedTech,
    arrival: &mut [f64],
    worst_predecessor: &mut [Option<NetId>],
) -> u8 {
    let mut worst_input = None;
    let mut input_arrival = 0.0f64;
    for (pin, net) in op.input_nets().iter().enumerate() {
        let candidate = arrival[net.index()];
        if pin == 0 || input_arrival.total_cmp(&candidate) != Ordering::Greater {
            worst_input = Some(*net);
            input_arrival = candidate;
        }
    }
    let delays = &resolved.delay[op.kind.table_index()];
    let mut changed = 0u8;
    for (pin, net) in op.output_nets().iter().enumerate() {
        let next = input_arrival + delays[pin];
        if arrival[net.index()].to_bits() != next.to_bits() {
            changed |= 1 << pin;
        }
        arrival[net.index()] = next;
        worst_predecessor[net.index()] = worst_input;
    }
    changed
}

/// Rebuilds the critical output and path from the (possibly delta-updated) arrays.
fn finalize(
    compiled: &CompiledNetlist,
    arrival: &[f64],
    worst_predecessor: &[Option<NetId>],
) -> (Option<NetId>, Vec<NetId>) {
    let critical_output = compiled
        .outputs()
        .iter()
        .copied()
        .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
    let critical_path = critical_output
        .map(|output| {
            let mut path = vec![output];
            let mut current = output;
            while let Some(previous) = worst_predecessor[current.index()] {
                path.push(previous);
                current = previous;
            }
            path.reverse();
            path
        })
        .unwrap_or_default();
    (critical_output, critical_path)
}

/// Incremental static timing analysis over one compiled program.
///
/// The library is resolved **once** per program at construction and reused across
/// every delta; the persistent per-net arrays live in a [`DeltaState`] owned by the
/// caller, so one primed state can absorb an arbitrary sequence of input-profile
/// deltas (and, via [`DeltaState::rebind`], local rewires) at dirty-cone cost.
///
/// Every report is **bit-identical** to what a fresh
/// [`TimingAnalysis::run_compiled`] with the same cumulative input profile would
/// produce: a dirty cell always rewrites all of its outputs, propagation stops only
/// where a recomputed arrival is bit-identical to the stored one, and downstream
/// values are pure functions of bit-identical inputs.
///
/// # Example
///
/// ```
/// use dpsyn_netlist::{CellKind, DeltaState, InputDelta, Netlist};
/// use dpsyn_tech::TechLibrary;
/// use dpsyn_timing::{IncrementalTiming, TimingAnalysis};
/// use std::collections::BTreeMap;
///
/// let mut netlist = Netlist::new("chain");
/// let a = netlist.add_input("a");
/// let b = netlist.add_input("b");
/// let y = netlist.add_gate(CellKind::Xor2, &[a, b]).unwrap()[0];
/// netlist.mark_output(y);
/// let compiled = netlist.compile().unwrap();
/// let lib = TechLibrary::unit();
///
/// let engine = IncrementalTiming::new(&lib, &compiled).unwrap();
/// let mut state = DeltaState::new(&compiled);
/// engine.run_full(&compiled, &BTreeMap::new(), &mut state).unwrap();
///
/// let mut delta = InputDelta::new();
/// delta.set_arrival(a, 2.5);
/// let report = engine.rerun_delta(&compiled, &mut state, &delta).unwrap();
/// // Bit-identical to a fresh full pass with the same cumulative profile.
/// let fresh = TimingAnalysis::new(&lib)
///     .input_arrival(a, 2.5)
///     .run_compiled(&compiled)
///     .unwrap();
/// assert_eq!(report, fresh);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalTiming {
    resolved: ResolvedTech,
}

impl IncrementalTiming {
    /// Resolves the library against `compiled` once, for reuse across every delta.
    ///
    /// # Errors
    ///
    /// Returns an error when the library does not cover a cell kind of the program.
    pub fn new(tech: &TechLibrary, compiled: &CompiledNetlist) -> Result<Self, TimingError> {
        Ok(IncrementalTiming {
            resolved: tech.resolve(compiled)?,
        })
    }

    /// Primes (or re-primes) the state with a full pass under `input_arrivals`
    /// (inputs not mentioned arrive at 0), returning the same report a fresh
    /// [`TimingAnalysis::run_compiled`] would.
    ///
    /// # Errors
    ///
    /// Returns an error when an arrival is negative or not finite.
    ///
    /// # Panics
    ///
    /// Panics when `state` is bound (via [`DeltaState::new`] /
    /// [`DeltaState::rebind`]) to a different program than `compiled`.
    pub fn run_full(
        &self,
        compiled: &CompiledNetlist,
        input_arrivals: &BTreeMap<NetId, f64>,
        state: &mut DeltaState,
    ) -> Result<TimingReport, TimingError> {
        for (net, arrival) in input_arrivals {
            check_arrival(*net, *arrival)?;
        }
        assert_eq!(
            state.bound_hash,
            compiled.structural_hash(),
            "run_full requires a DeltaState bound to this exact program \
             (DeltaState::new / rebind)"
        );
        let channel = &mut state.timing;
        channel.worklist.reset();
        propagate_into(
            compiled,
            &self.resolved,
            input_arrivals,
            &mut channel.arrival,
            &mut channel.worst_predecessor,
        );
        channel.primed = true;
        let (critical_output, critical_path) =
            finalize(compiled, &channel.arrival, &channel.worst_predecessor);
        Ok(TimingReport {
            arrival: channel.arrival.clone(),
            critical_output,
            critical_path,
        })
    }

    /// Applies an input delta and re-propagates arrivals **only through the dirty
    /// cone**: readers of inputs whose value actually changed (bit comparison) are
    /// seeded, advanced level by level over the fanout CSR, and each branch stops as
    /// soon as a recomputed arrival is bit-identical to the stored one. The report is
    /// bit-identical to a fresh full pass under the cumulative profile.
    ///
    /// The delta is validated **before** any state is mutated, so a failed call
    /// leaves the state exactly as it was. Assignments to nets that are **not
    /// primary inputs** of the program (including unknown nets) are validated for
    /// value but otherwise ignored — exactly how the full passes treat profile map
    /// keys that are not primary inputs — so they can never corrupt the state.
    ///
    /// # Errors
    ///
    /// Returns an error when a delta arrival is negative or not finite.
    ///
    /// # Panics
    ///
    /// Panics when the state was never primed with [`IncrementalTiming::run_full`],
    /// or is bound to a different program than `compiled` (structural-hash check).
    pub fn rerun_delta(
        &self,
        compiled: &CompiledNetlist,
        state: &mut DeltaState,
        delta: &InputDelta,
    ) -> Result<TimingReport, TimingError> {
        for (net, arrival) in delta.arrivals() {
            check_arrival(*net, *arrival)?;
        }
        assert_eq!(
            state.bound_hash,
            compiled.structural_hash(),
            "rerun_delta requires a DeltaState bound to this exact program \
             (DeltaState::new / rebind)"
        );
        assert!(
            state.timing.primed,
            "rerun_delta requires a state primed by run_full on the same program"
        );
        // Split borrows: the drain closure mutates the value arrays while the
        // worklist advances.
        let DeltaState {
            timing:
                dpsyn_netlist::TimingChannel {
                    arrival,
                    worst_predecessor,
                    worklist,
                    ..
                },
            input_mask,
            ..
        } = state;
        for (net, new_arrival) in delta.arrivals() {
            if !input_mask.get(net.index()).copied().unwrap_or(false) {
                continue;
            }
            if arrival[net.index()].to_bits() != new_arrival.to_bits() {
                arrival[net.index()] = *new_arrival;
                worklist.seed_readers(compiled, *net);
            }
        }
        let resolved = &self.resolved;
        worklist.drain(compiled, |op| {
            step_op(op, resolved, arrival, worst_predecessor)
        });
        let (critical_output, critical_path) = finalize(compiled, arrival, worst_predecessor);
        Ok(TimingReport {
            arrival: arrival.clone(),
            critical_output,
            critical_path,
        })
    }
}

/// The result of a static timing analysis: per-net arrival times and the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    arrival: Vec<f64>,
    critical_output: Option<NetId>,
    critical_path: Vec<NetId>,
}

impl TimingReport {
    /// Arrival time of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the analysed netlist.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// Latest arrival time over a set of nets (0.0 for an empty set).
    pub fn max_arrival<I: IntoIterator<Item = NetId>>(&self, nets: I) -> f64 {
        nets.into_iter()
            .map(|net| self.arrival(net))
            .fold(0.0, f64::max)
    }

    /// The critical delay: latest arrival time over all primary outputs.
    pub fn critical_delay(&self) -> f64 {
        self.critical_output
            .map(|net| self.arrival(net))
            .unwrap_or(0.0)
    }

    /// The primary output with the latest arrival, if the netlist has outputs.
    pub fn critical_output(&self) -> Option<NetId> {
        self.critical_output
    }

    /// The nets on the critical path, from a primary input (or constant) to the
    /// critical output.
    pub fn critical_path(&self) -> &[NetId] {
        &self.critical_path
    }

    /// Slack against a required time: `required − critical_delay`.
    ///
    /// # Example
    /// ```
    /// # use dpsyn_netlist::{CellKind, Netlist};
    /// # use dpsyn_tech::TechLibrary;
    /// # use dpsyn_timing::TimingAnalysis;
    /// # let mut netlist = Netlist::new("t");
    /// # let a = netlist.add_input("a");
    /// # let b = netlist.add_input("b");
    /// # let y = netlist.add_gate(CellKind::Xor2, &[a, b]).unwrap()[0];
    /// # netlist.mark_output(y);
    /// let report = TimingAnalysis::new(&TechLibrary::unit()).run(&netlist).unwrap();
    /// assert_eq!(report.slack(2.5), 1.5);
    /// ```
    pub fn slack(&self, required: f64) -> f64 {
        required - self.critical_delay()
    }

    /// All per-net arrival times, indexed by [`NetId::index`].
    pub fn arrivals(&self) -> &[f64] {
        &self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::CellKind;

    fn chain_netlist() -> (Netlist, Vec<NetId>) {
        // a -> NOT -> XOR(b) -> FA(c, const1) chain to exercise multi-level paths.
        let mut netlist = Netlist::new("chain");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let inverted = netlist.add_gate(CellKind::Not, &[a]).unwrap()[0];
        let xored = netlist.add_gate(CellKind::Xor2, &[inverted, b]).unwrap()[0];
        let one = netlist.constant(true);
        let fa = netlist.add_gate(CellKind::Fa, &[xored, c, one]).unwrap();
        netlist.mark_output(fa[0]);
        netlist.mark_output(fa[1]);
        (netlist, vec![a, b, c, fa[0], fa[1]])
    }

    #[test]
    fn zero_arrival_defaults() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        // not: 0, xor2: +1, fa sum: +2 => 3; carry => 2.
        assert_eq!(report.arrival(nets[3]), 3.0);
        assert_eq!(report.arrival(nets[4]), 2.0);
        assert_eq!(report.critical_delay(), 3.0);
        assert_eq!(report.critical_output(), Some(nets[3]));
    }

    #[test]
    fn uneven_arrivals_shift_the_critical_path() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib)
            .input_arrival(nets[2], 10.0)
            .run(&netlist)
            .unwrap();
        // c arrives at 10, so the FA sum arrives at 12.
        assert_eq!(report.arrival(nets[3]), 12.0);
        assert_eq!(report.critical_delay(), 12.0);
        // The critical path now starts at c.
        assert_eq!(report.critical_path().first(), Some(&nets[2]));
        assert_eq!(report.critical_path().last(), Some(&nets[3]));
    }

    #[test]
    fn critical_path_is_connected() {
        let (netlist, _) = chain_netlist();
        let lib = TechLibrary::lcbg10pv_like();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        let path = report.critical_path();
        assert!(path.len() >= 2);
        // Arrival times along the path are non-decreasing.
        for window in path.windows(2) {
            assert!(report.arrival(window[0]) <= report.arrival(window[1]) + 1e-12);
        }
    }

    #[test]
    fn max_arrival_over_set() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        assert_eq!(report.max_arrival([nets[3], nets[4]]), 3.0);
        assert_eq!(report.max_arrival(Vec::new()), 0.0);
    }

    #[test]
    fn invalid_arrival_is_rejected() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let result = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], -1.0)
            .run(&netlist);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
        let result = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], f64::NAN)
            .run(&netlist);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
    }

    #[test]
    fn missing_library_entry_is_reported() {
        let (netlist, _) = chain_netlist();
        let lib = TechLibrary::builder("incomplete").build().unwrap();
        let result = TimingAnalysis::new(&lib).run(&netlist);
        assert!(matches!(result, Err(TimingError::Tech(_))));
    }

    #[test]
    fn invalid_netlist_is_reported() {
        let mut netlist = Netlist::new("floating");
        let a = netlist.add_input("a");
        let floating = netlist.add_net("floating");
        let y = netlist.add_gate(CellKind::And2, &[a, floating]).unwrap()[0];
        netlist.mark_output(y);
        // STA itself only needs a topological order; the floating net simply arrives at
        // time zero, mirroring how downstream tools treat unconstrained inputs.
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        assert_eq!(report.critical_delay(), 0.0);
    }

    #[test]
    fn run_compiled_is_bit_identical_to_run() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        for lib in [TechLibrary::unit(), TechLibrary::lcbg10pv_like()] {
            let analysis = TimingAnalysis::new(&lib)
                .input_arrival(nets[0], 1.25)
                .input_arrival(nets[2], 0.5);
            let from_netlist = analysis.run(&netlist).unwrap();
            let from_compiled = analysis.run_compiled(&compiled).unwrap();
            assert_eq!(from_netlist, from_compiled);
        }
    }

    #[test]
    fn run_compiled_reports_the_same_errors() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        let lib = TechLibrary::unit();
        let result = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], f64::NAN)
            .run_compiled(&compiled);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
        let incomplete = TechLibrary::builder("incomplete").build().unwrap();
        let result = TimingAnalysis::new(&incomplete).run_compiled(&compiled);
        assert!(matches!(result, Err(TimingError::Tech(_))));
    }

    #[test]
    fn empty_netlist_has_zero_delay() {
        let netlist = Netlist::new("empty");
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        assert_eq!(report.critical_delay(), 0.0);
        assert!(report.critical_output().is_none());
        assert!(report.critical_path().is_empty());
    }

    #[test]
    fn incremental_matches_fresh_runs_across_deltas() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        let lib = TechLibrary::lcbg10pv_like();
        let engine = IncrementalTiming::new(&lib, &compiled).unwrap();
        let mut state = DeltaState::new(&compiled);
        let mut oracle: BTreeMap<NetId, f64> = BTreeMap::new();
        let primed = engine.run_full(&compiled, &oracle, &mut state).unwrap();
        assert_eq!(
            primed,
            TimingAnalysis::new(&lib).run_compiled(&compiled).unwrap()
        );
        // A sequence of deltas, including no-op assignments (early termination).
        for (net, value) in [
            (nets[2], 10.0),
            (nets[0], 1.5),
            (nets[2], 10.0), // unchanged: must not disturb anything
            (nets[2], 0.25),
            (nets[1], 0.0), // explicit default
        ] {
            let mut delta = InputDelta::new();
            delta.set_arrival(net, value);
            oracle.insert(net, value);
            let incremental = engine.rerun_delta(&compiled, &mut state, &delta).unwrap();
            let fresh = TimingAnalysis::new(&lib)
                .with_input_arrivals(oracle.clone())
                .run_compiled(&compiled)
                .unwrap();
            assert_eq!(incremental, fresh, "delta ({net}, {value})");
            for (a, b) in incremental.arrivals().iter().zip(fresh.arrivals()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn delta_entries_for_non_input_nets_are_ignored_like_fresh_map_keys() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        let lib = TechLibrary::unit();
        let engine = IncrementalTiming::new(&lib, &compiled).unwrap();
        let mut state = DeltaState::new(&compiled);
        engine
            .run_full(&compiled, &BTreeMap::new(), &mut state)
            .unwrap();
        // nets[3] is the FA sum — an internal/output net, not a primary input; the
        // unknown NetId is out of range entirely. The fresh path validates such map
        // entries but never applies them; the delta path must behave identically
        // (no state corruption, no panic).
        let mut delta = InputDelta::new();
        delta.set_arrival(nets[3], 9.0);
        let mut other = dpsyn_netlist::Netlist::new("other");
        let foreign = (0..16).map(|i| other.add_input(format!("x{i}"))).last();
        delta.set_arrival(foreign.unwrap(), 4.0); // index beyond this program's nets
        delta.set_arrival(nets[0], 2.0);
        let incremental = engine.rerun_delta(&compiled, &mut state, &delta).unwrap();
        let mut oracle = BTreeMap::new();
        oracle.insert(nets[3], 9.0);
        oracle.insert(nets[0], 2.0);
        let fresh = TimingAnalysis::new(&lib)
            .with_input_arrivals(oracle)
            .run_compiled(&compiled)
            .unwrap();
        assert_eq!(incremental, fresh);
    }

    #[test]
    #[should_panic(expected = "bound to this exact program")]
    fn rerun_delta_rejects_a_state_bound_to_another_program() {
        let (netlist, _) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        let lib = TechLibrary::unit();
        let engine = IncrementalTiming::new(&lib, &compiled).unwrap();
        let mut state = DeltaState::new(&compiled);
        engine
            .run_full(&compiled, &BTreeMap::new(), &mut state)
            .unwrap();
        // A different netlist (even a same-sized one) must be rejected outright.
        let (mut other, _) = chain_netlist();
        let (a, b) = (other.inputs()[0], other.inputs()[1]);
        other.add_gate(CellKind::And2, &[a, b]).unwrap();
        let other_compiled = other.compile().unwrap();
        let _ = engine.rerun_delta(&other_compiled, &mut state, &InputDelta::new());
    }

    #[test]
    fn incremental_reports_the_same_errors_without_corrupting_state() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        let lib = TechLibrary::unit();
        let incomplete = TechLibrary::builder("incomplete").build().unwrap();
        assert!(matches!(
            IncrementalTiming::new(&incomplete, &compiled),
            Err(TimingError::Tech(_))
        ));
        let engine = IncrementalTiming::new(&lib, &compiled).unwrap();
        let mut state = DeltaState::new(&compiled);
        let baseline = engine
            .run_full(&compiled, &BTreeMap::new(), &mut state)
            .unwrap();
        let mut delta = InputDelta::new();
        delta.set_arrival(nets[0], f64::NAN);
        let result = engine.rerun_delta(&compiled, &mut state, &delta);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
        // The failed delta must not have touched the state: an empty rerun still
        // reproduces the baseline bit for bit.
        let unchanged = engine
            .rerun_delta(&compiled, &mut state, &InputDelta::new())
            .unwrap();
        assert_eq!(unchanged, baseline);
    }

    #[test]
    fn error_display_and_source() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let error = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], -2.0)
            .run(&netlist)
            .unwrap_err();
        assert!(error.to_string().contains("-2"));
        assert!(Error::source(&error).is_none());
        let lib = TechLibrary::builder("incomplete").build().unwrap();
        let error = TimingAnalysis::new(&lib).run(&netlist).unwrap_err();
        assert!(Error::source(&error).is_some());
    }
}
