//! Static timing analysis over bit-level netlists.
//!
//! Arrival times are propagated from primary inputs (whose arrival profile may be
//! non-uniform, the central premise of the DAC 2000 paper) through every cell using the
//! per-output pin-to-pin delays of a [`TechLibrary`]. The result is a [`TimingReport`]
//! with per-net arrival times, the critical delay and the critical path.
//!
//! The propagation is a **single pass over the shared compiled program**
//! ([`CompiledNetlist`]) with the library resolved once into per-kind delay tables;
//! [`TimingAnalysis::run_compiled`] lets callers that analyse the same netlist several
//! ways (timing, power, simulation) levelize it exactly once.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use dpsyn_netlist::{CellKind, Netlist};
//! use dpsyn_tech::TechLibrary;
//! use dpsyn_timing::TimingAnalysis;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut netlist = Netlist::new("fa");
//! let a = netlist.add_input("a");
//! let b = netlist.add_input("b");
//! let c = netlist.add_input("c");
//! let outs = netlist.add_gate(CellKind::Fa, &[a, b, c])?;
//! netlist.mark_output(outs[0]);
//! netlist.mark_output(outs[1]);
//!
//! let mut arrivals = BTreeMap::new();
//! arrivals.insert(a, 3.0);
//! let report = TimingAnalysis::new(&TechLibrary::unit())
//!     .with_input_arrivals(arrivals)
//!     .run(&netlist)?;
//! // sum arrives at max(3,0,0) + Ds = 5, carry at +Dc = 4
//! assert_eq!(report.arrival(outs[0]), 5.0);
//! assert_eq!(report.arrival(outs[1]), 4.0);
//! assert_eq!(report.critical_delay(), 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dpsyn_netlist::{CompiledNetlist, NetId, Netlist, NetlistError};
use dpsyn_tech::{ResolvedTech, TechError, TechLibrary};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced by static timing analysis.
#[derive(Debug)]
pub enum TimingError {
    /// The netlist is structurally invalid (cycle, floating net, ...).
    Netlist(NetlistError),
    /// The technology library does not cover a cell kind used by the netlist.
    Tech(TechError),
    /// An input arrival time is negative or not finite.
    InvalidArrival {
        /// The offending net.
        net: NetId,
        /// The offending value.
        arrival: f64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Netlist(error) => write!(f, "invalid netlist: {error}"),
            TimingError::Tech(error) => write!(f, "incomplete technology library: {error}"),
            TimingError::InvalidArrival { net, arrival } => {
                write!(
                    f,
                    "arrival time {arrival} of net {net} is negative or not finite"
                )
            }
        }
    }
}

impl Error for TimingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TimingError::Netlist(error) => Some(error),
            TimingError::Tech(error) => Some(error),
            TimingError::InvalidArrival { .. } => None,
        }
    }
}

impl From<NetlistError> for TimingError {
    fn from(error: NetlistError) -> Self {
        TimingError::Netlist(error)
    }
}

impl From<TechError> for TimingError {
    fn from(error: TechError) -> Self {
        TimingError::Tech(error)
    }
}

/// Configurable static timing analysis.
///
/// Construct with a technology library, optionally provide per-net input arrival times,
/// then [`run`](TimingAnalysis::run) it over a netlist.
#[derive(Debug, Clone)]
pub struct TimingAnalysis<'lib> {
    tech: &'lib TechLibrary,
    input_arrivals: BTreeMap<NetId, f64>,
}

impl<'lib> TimingAnalysis<'lib> {
    /// Creates an analysis with all primary inputs arriving at time zero.
    pub fn new(tech: &'lib TechLibrary) -> Self {
        TimingAnalysis {
            tech,
            input_arrivals: BTreeMap::new(),
        }
    }

    /// Sets the arrival times of primary input nets; inputs not mentioned arrive at 0.
    pub fn with_input_arrivals(mut self, arrivals: BTreeMap<NetId, f64>) -> Self {
        self.input_arrivals = arrivals;
        self
    }

    /// Sets the arrival time of a single primary input net.
    pub fn input_arrival(mut self, net: NetId, arrival: f64) -> Self {
        self.input_arrivals.insert(net, arrival);
        self
    }

    /// Runs the analysis over `netlist`.
    ///
    /// This convenience entry point compiles the netlist internally; callers that
    /// already hold the shared [`CompiledNetlist`] program should use
    /// [`TimingAnalysis::run_compiled`] so the levelization happens exactly once per
    /// netlist rather than once per analysis.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist is invalid, the library does not cover a used
    /// cell kind, or an input arrival is negative / non-finite.
    pub fn run(&self, netlist: &Netlist) -> Result<TimingReport, TimingError> {
        self.tech.check_coverage(netlist)?;
        self.check_arrivals()?;
        let compiled = netlist.compile()?;
        let resolved = self.tech.resolve(&compiled)?;
        Ok(self.propagate(&compiled, &resolved))
    }

    /// Runs the analysis over an already-compiled program: a single pass over the
    /// flat op array with the library resolved once into per-kind delay tables — no
    /// map lookups and no graph traversal in the loop. The report is bit-identical
    /// to [`TimingAnalysis::run`] on the originating netlist.
    ///
    /// # Errors
    ///
    /// Returns an error when the library does not cover a used cell kind or an input
    /// arrival is negative / non-finite.
    pub fn run_compiled(&self, compiled: &CompiledNetlist) -> Result<TimingReport, TimingError> {
        let resolved = self.tech.resolve(compiled)?;
        self.check_arrivals()?;
        Ok(self.propagate(compiled, &resolved))
    }

    fn check_arrivals(&self) -> Result<(), TimingError> {
        for (net, arrival) in &self.input_arrivals {
            if !arrival.is_finite() || *arrival < 0.0 {
                return Err(TimingError::InvalidArrival {
                    net: *net,
                    arrival: *arrival,
                });
            }
        }
        Ok(())
    }

    /// The single-pass arrival propagation over the compiled program.
    fn propagate(&self, compiled: &CompiledNetlist, resolved: &ResolvedTech) -> TimingReport {
        let mut arrival = vec![0.0f64; compiled.net_count()];
        // The input net on the worst path into each net's driver, used to rebuild the
        // critical path after propagation.
        let mut worst_predecessor: Vec<Option<NetId>> = vec![None; compiled.net_count()];
        for net in compiled.inputs() {
            arrival[net.index()] = self.input_arrivals.get(net).copied().unwrap_or(0.0);
        }
        for op in compiled.ops() {
            // Latest input, keeping the *last* maximum on ties exactly like the
            // former `Iterator::max_by(total_cmp)` fold did.
            let mut worst_input = None;
            let mut input_arrival = 0.0f64;
            for (pin, net) in op.input_nets().iter().enumerate() {
                let candidate = arrival[net.index()];
                if pin == 0 || input_arrival.total_cmp(&candidate) != Ordering::Greater {
                    worst_input = Some(*net);
                    input_arrival = candidate;
                }
            }
            let delays = &resolved.delay[op.kind.table_index()];
            for (pin, net) in op.output_nets().iter().enumerate() {
                arrival[net.index()] = input_arrival + delays[pin];
                worst_predecessor[net.index()] = worst_input;
            }
        }
        let critical_output = compiled
            .outputs()
            .iter()
            .copied()
            .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
        let critical_path = critical_output
            .map(|output| {
                let mut path = vec![output];
                let mut current = output;
                while let Some(previous) = worst_predecessor[current.index()] {
                    path.push(previous);
                    current = previous;
                }
                path.reverse();
                path
            })
            .unwrap_or_default();
        TimingReport {
            arrival,
            critical_output,
            critical_path,
        }
    }
}

/// The result of a static timing analysis: per-net arrival times and the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    arrival: Vec<f64>,
    critical_output: Option<NetId>,
    critical_path: Vec<NetId>,
}

impl TimingReport {
    /// Arrival time of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the analysed netlist.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// Latest arrival time over a set of nets (0.0 for an empty set).
    pub fn max_arrival<I: IntoIterator<Item = NetId>>(&self, nets: I) -> f64 {
        nets.into_iter()
            .map(|net| self.arrival(net))
            .fold(0.0, f64::max)
    }

    /// The critical delay: latest arrival time over all primary outputs.
    pub fn critical_delay(&self) -> f64 {
        self.critical_output
            .map(|net| self.arrival(net))
            .unwrap_or(0.0)
    }

    /// The primary output with the latest arrival, if the netlist has outputs.
    pub fn critical_output(&self) -> Option<NetId> {
        self.critical_output
    }

    /// The nets on the critical path, from a primary input (or constant) to the
    /// critical output.
    pub fn critical_path(&self) -> &[NetId] {
        &self.critical_path
    }

    /// Slack against a required time: `required − critical_delay`.
    ///
    /// # Example
    /// ```
    /// # use dpsyn_netlist::{CellKind, Netlist};
    /// # use dpsyn_tech::TechLibrary;
    /// # use dpsyn_timing::TimingAnalysis;
    /// # let mut netlist = Netlist::new("t");
    /// # let a = netlist.add_input("a");
    /// # let b = netlist.add_input("b");
    /// # let y = netlist.add_gate(CellKind::Xor2, &[a, b]).unwrap()[0];
    /// # netlist.mark_output(y);
    /// let report = TimingAnalysis::new(&TechLibrary::unit()).run(&netlist).unwrap();
    /// assert_eq!(report.slack(2.5), 1.5);
    /// ```
    pub fn slack(&self, required: f64) -> f64 {
        required - self.critical_delay()
    }

    /// All per-net arrival times, indexed by [`NetId::index`].
    pub fn arrivals(&self) -> &[f64] {
        &self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_netlist::CellKind;

    fn chain_netlist() -> (Netlist, Vec<NetId>) {
        // a -> NOT -> XOR(b) -> FA(c, const1) chain to exercise multi-level paths.
        let mut netlist = Netlist::new("chain");
        let a = netlist.add_input("a");
        let b = netlist.add_input("b");
        let c = netlist.add_input("c");
        let inverted = netlist.add_gate(CellKind::Not, &[a]).unwrap()[0];
        let xored = netlist.add_gate(CellKind::Xor2, &[inverted, b]).unwrap()[0];
        let one = netlist.constant(true);
        let fa = netlist.add_gate(CellKind::Fa, &[xored, c, one]).unwrap();
        netlist.mark_output(fa[0]);
        netlist.mark_output(fa[1]);
        (netlist, vec![a, b, c, fa[0], fa[1]])
    }

    #[test]
    fn zero_arrival_defaults() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        // not: 0, xor2: +1, fa sum: +2 => 3; carry => 2.
        assert_eq!(report.arrival(nets[3]), 3.0);
        assert_eq!(report.arrival(nets[4]), 2.0);
        assert_eq!(report.critical_delay(), 3.0);
        assert_eq!(report.critical_output(), Some(nets[3]));
    }

    #[test]
    fn uneven_arrivals_shift_the_critical_path() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib)
            .input_arrival(nets[2], 10.0)
            .run(&netlist)
            .unwrap();
        // c arrives at 10, so the FA sum arrives at 12.
        assert_eq!(report.arrival(nets[3]), 12.0);
        assert_eq!(report.critical_delay(), 12.0);
        // The critical path now starts at c.
        assert_eq!(report.critical_path().first(), Some(&nets[2]));
        assert_eq!(report.critical_path().last(), Some(&nets[3]));
    }

    #[test]
    fn critical_path_is_connected() {
        let (netlist, _) = chain_netlist();
        let lib = TechLibrary::lcbg10pv_like();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        let path = report.critical_path();
        assert!(path.len() >= 2);
        // Arrival times along the path are non-decreasing.
        for window in path.windows(2) {
            assert!(report.arrival(window[0]) <= report.arrival(window[1]) + 1e-12);
        }
    }

    #[test]
    fn max_arrival_over_set() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        assert_eq!(report.max_arrival([nets[3], nets[4]]), 3.0);
        assert_eq!(report.max_arrival(Vec::new()), 0.0);
    }

    #[test]
    fn invalid_arrival_is_rejected() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let result = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], -1.0)
            .run(&netlist);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
        let result = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], f64::NAN)
            .run(&netlist);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
    }

    #[test]
    fn missing_library_entry_is_reported() {
        let (netlist, _) = chain_netlist();
        let lib = TechLibrary::builder("incomplete").build().unwrap();
        let result = TimingAnalysis::new(&lib).run(&netlist);
        assert!(matches!(result, Err(TimingError::Tech(_))));
    }

    #[test]
    fn invalid_netlist_is_reported() {
        let mut netlist = Netlist::new("floating");
        let a = netlist.add_input("a");
        let floating = netlist.add_net("floating");
        let y = netlist.add_gate(CellKind::And2, &[a, floating]).unwrap()[0];
        netlist.mark_output(y);
        // STA itself only needs a topological order; the floating net simply arrives at
        // time zero, mirroring how downstream tools treat unconstrained inputs.
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        assert_eq!(report.critical_delay(), 0.0);
    }

    #[test]
    fn run_compiled_is_bit_identical_to_run() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        for lib in [TechLibrary::unit(), TechLibrary::lcbg10pv_like()] {
            let analysis = TimingAnalysis::new(&lib)
                .input_arrival(nets[0], 1.25)
                .input_arrival(nets[2], 0.5);
            let from_netlist = analysis.run(&netlist).unwrap();
            let from_compiled = analysis.run_compiled(&compiled).unwrap();
            assert_eq!(from_netlist, from_compiled);
        }
    }

    #[test]
    fn run_compiled_reports_the_same_errors() {
        let (netlist, nets) = chain_netlist();
        let compiled = netlist.compile().unwrap();
        let lib = TechLibrary::unit();
        let result = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], f64::NAN)
            .run_compiled(&compiled);
        assert!(matches!(result, Err(TimingError::InvalidArrival { .. })));
        let incomplete = TechLibrary::builder("incomplete").build().unwrap();
        let result = TimingAnalysis::new(&incomplete).run_compiled(&compiled);
        assert!(matches!(result, Err(TimingError::Tech(_))));
    }

    #[test]
    fn empty_netlist_has_zero_delay() {
        let netlist = Netlist::new("empty");
        let lib = TechLibrary::unit();
        let report = TimingAnalysis::new(&lib).run(&netlist).unwrap();
        assert_eq!(report.critical_delay(), 0.0);
        assert!(report.critical_output().is_none());
        assert!(report.critical_path().is_empty());
    }

    #[test]
    fn error_display_and_source() {
        let (netlist, nets) = chain_netlist();
        let lib = TechLibrary::unit();
        let error = TimingAnalysis::new(&lib)
            .input_arrival(nets[0], -2.0)
            .run(&netlist)
            .unwrap_err();
        assert!(error.to_string().contains("-2"));
        assert!(Error::source(&error).is_none());
        let lib = TechLibrary::builder("incomplete").build().unwrap();
        let error = TimingAnalysis::new(&lib).run(&netlist).unwrap_err();
        assert!(Error::source(&error).is_some());
    }
}
