//! Regenerates Figure 2 of the paper: the effect of FA input selection on the delay of
//! F = X + Y + Z + W under an uneven arrival profile (Ds = 2, Dc = 1).

fn main() {
    let result = dpsyn_bench::figure2();
    println!("Figure 2 — effect of signal selection on timing (Ds = 2, Dc = 1)");
    println!(
        "  (a) fixed Wallace selection        : final-adder inputs ready at t = {}",
        result.wallace
    );
    println!(
        "  (b) column isolation (inputs only) : final-adder inputs ready at t = {}",
        result.column_isolation
    );
    println!(
        "  (c) column interaction (FA_AOT)    : final-adder inputs ready at t = {}",
        result.column_interaction
    );
    println!("paper reports 9 / 9 / 8");
}
