//! Regenerates Table 1 of the paper: delay and area of the conventional flow, CSA_OPT
//! and FA_AOT over the ten benchmark designs.

fn main() {
    let lib = dpsyn_tech::TechLibrary::lcbg10pv_like();
    let designs = dpsyn_designs::table1_designs();
    eprintln!(
        "synthesizing {} designs with three flows each ...",
        designs.len()
    );
    let rows = dpsyn_bench::table1(&designs, &lib);
    print!("{}", dpsyn_bench::format_table1(&rows));
}
