//! Free-form design-space exploration: crosses benchmark designs and synthetic
//! workloads with arrival-skew and probability-bias profiles over every synthesis
//! flow, and prints the per-flow summary plus the delay × power × area Pareto front.
//!
//! ```bash
//! cargo run --release -p dpsyn-bench --bin explore            # full sweep
//! cargo run --release -p dpsyn-bench --bin explore -- --smoke # small CI matrix
//! ```
//!
//! `--smoke` additionally re-runs its matrix single-threaded and asserts the rendered
//! summary is byte-identical — the engine's determinism contract, checked end to end.

use dpsyn_baselines::Flow;
use dpsyn_explore::{explore, BiasProfile, ExplorationSpec, ExplorationSpecBuilder, SkewProfile};

/// Worker count: every available core, capped at 8 (results are identical either way).
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// The small deterministic matrix CI smoke-runs: 24 jobs.
fn smoke_spec(workers: usize) -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::mixed_poly())
        .sum_workload(3)
        .width(4)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot, Flow::FaAlp])
        .seed(7)
        .threads(workers)
}

/// The full sweep: four benchmark designs plus an 8-operand sum workload, crossed
/// with three skew and two bias profiles over all six flows (216 jobs).
fn full_spec(workers: usize) -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .designs([
            dpsyn_designs::x2_x_y(),
            dpsyn_designs::mixed_poly(),
            dpsyn_designs::iir(),
            dpsyn_designs::serial_adapter(),
        ])
        .sum_workload(8)
        .widths([8, 12])
        .skews([
            SkewProfile::Keep,
            SkewProfile::Uniform(2.0),
            SkewProfile::Uniform(4.0),
        ])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([
            Flow::Conventional,
            Flow::CsaOpt,
            Flow::WallaceFixed,
            Flow::FaRandom(8),
            Flow::FaAot,
            Flow::FaAlp,
        ])
        .seed(7)
        .threads(workers)
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let workers = threads();
    let builder = if smoke {
        smoke_spec(workers)
    } else {
        full_spec(workers)
    };
    let spec = builder.build().expect("exploration spec is well-formed");
    eprintln!(
        "exploring {} jobs on {} worker thread(s) ...",
        spec.jobs().len(),
        spec.threads()
    );
    let results = explore(&spec).expect("every flow succeeds on the built-in matrix");
    let summary = results.render_summary();
    print!("{summary}");
    if smoke {
        // Determinism gate: the single-threaded run must render byte-identically.
        let reference = explore(&smoke_spec(1).build().expect("smoke spec"))
            .expect("single-threaded smoke run succeeds");
        assert_eq!(
            summary,
            reference.render_summary(),
            "exploration summary diverged between {workers} worker(s) and 1 worker"
        );
        eprintln!("smoke OK: {workers}-thread and 1-thread summaries are byte-identical");
    }
}
