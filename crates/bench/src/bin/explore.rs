//! Free-form design-space exploration: crosses benchmark designs and synthetic
//! workloads with arrival-skew and probability-bias profiles over every synthesis
//! flow, and prints the per-flow summary plus the delay × power × area Pareto front.
//!
//! ```bash
//! cargo run --release -p dpsyn-bench --bin explore                     # full sweep
//! cargo run --release -p dpsyn-bench --bin explore -- --smoke          # small CI matrix
//! cargo run --release -p dpsyn-bench --bin explore -- --store memo.txt # persistent store
//! cargo run --release -p dpsyn-bench --bin explore -- --serve /tmp/dpsyn.sock --store memo.txt
//! cargo run --release -p dpsyn-bench --bin explore -- --serve-smoke    # CI server check
//! ```
//!
//! The worker count defaults to the host's available parallelism (the spec builder's
//! default), and the work-stealing scheduler's per-run stats — chunks, jobs, steals
//! and store hits per worker — are reported on stderr. `--smoke` additionally re-runs
//! its matrix single-threaded and asserts the rendered summary is byte-identical —
//! the engine's determinism contract, checked end to end.
//!
//! `--store <path>` attaches the persistent cross-run result store: a re-run of the
//! same sweep against a warm memo file collapses to lookups (watch the store-hit
//! counters) while printing the byte-identical summary. `--serve <socket>` starts the
//! long-lived service mode on a Unix socket (newline-delimited JSON requests, one
//! exploration each, all sharing the store; see `dpsyn_explore::serve`), and
//! `--serve-smoke` self-tests that mode end to end: it spawns the server in-process,
//! sends the smoke matrix twice over two overlapping client connections, asserts both
//! responses carry the byte-identical batch summary with warm hits on the second,
//! exercises a `sim_activity` request (simulated columns present, no aliasing of the
//! analytic store entries) plus a malformed one (typed rejection), and shuts the
//! server down gracefully.

use dpsyn_baselines::Flow;
use dpsyn_explore::{
    explore, explore_with_stats, BiasProfile, ExplorationSpec, ExplorationSpecBuilder, SkewProfile,
};
use std::path::PathBuf;

/// The small deterministic matrix CI smoke-runs: 24 jobs.
fn smoke_spec() -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::mixed_poly())
        .sum_workload(3)
        .width(4)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot, Flow::FaAlp])
        .seed(7)
}

/// The full sweep: four benchmark designs plus an 8-operand sum workload, crossed
/// with three skew and two bias profiles over all six flows (216 jobs).
fn full_spec() -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .designs([
            dpsyn_designs::x2_x_y(),
            dpsyn_designs::mixed_poly(),
            dpsyn_designs::iir(),
            dpsyn_designs::serial_adapter(),
        ])
        .sum_workload(8)
        .widths([8, 12])
        .skews([
            SkewProfile::Keep,
            SkewProfile::Uniform(2.0),
            SkewProfile::Uniform(4.0),
        ])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([
            Flow::Conventional,
            Flow::CsaOpt,
            Flow::WallaceFixed,
            Flow::FaRandom(8),
            Flow::FaAot,
            Flow::FaAlp,
        ])
        .seed(7)
}

/// Value of `--flag <value>` in `args`, when present.
fn flag_value(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|position| args.get(position + 1))
        .map(PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store = flag_value(&args, "--store");
    if let Some(socket) = flag_value(&args, "--serve") {
        serve_mode(socket, store);
        return;
    }
    if args.iter().any(|arg| arg == "--serve-smoke") {
        serve_smoke();
        return;
    }
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let builder = if smoke { smoke_spec() } else { full_spec() };
    let builder = match &store {
        Some(path) => builder.store(path.clone()),
        None => builder,
    };
    // No explicit `.threads(..)`: the builder defaults to the available parallelism.
    let spec = builder.build().expect("exploration spec is well-formed");
    let workers = spec.threads();
    eprintln!(
        "exploring {} jobs on {} worker thread(s) ...",
        spec.jobs().len(),
        workers
    );
    let (results, stats) = explore_with_stats(&spec).expect("every flow succeeds");
    if let Some(health) = stats.store {
        eprintln!(
            "store: {} record(s) loaded, {} damaged line(s), {} quarantined line(s){}{}",
            health.records,
            health.damaged_lines,
            health.quarantined,
            if health.torn_tail {
                ", torn tail (mid-flush kill recovered)"
            } else {
                ""
            },
            if health.rebuilt {
                ", stale file rebuilt"
            } else {
                ""
            },
        );
    }
    for (worker, worker_stats) in stats.workers.iter().enumerate() {
        eprintln!(
            "worker {worker}: {} chunk(s), {} job(s), {} steal(s), {} store hit(s)",
            worker_stats.chunks, worker_stats.jobs, worker_stats.steals, worker_stats.store_hits
        );
    }
    if !results.quarantined().is_empty() {
        eprintln!(
            "WARNING: {} job(s) quarantined after repeated panics",
            results.quarantined().len()
        );
    }
    let (busiest, laziest) = stats.job_spread();
    eprintln!(
        "scheduler: {} total steal(s), {} store hit(s), busiest/laziest worker ran \
         {busiest}/{laziest} job(s)",
        stats.total_steals(),
        stats.total_store_hits()
    );
    let summary = results.render_summary();
    print!("{summary}");
    if smoke {
        // Determinism gate: the single-threaded run must render byte-identically.
        let reference = explore(&smoke_spec().threads(1).build().expect("smoke spec"))
            .expect("single-threaded smoke run succeeds");
        assert_eq!(
            summary,
            reference.render_summary(),
            "exploration summary diverged between {workers} worker(s) and 1 worker"
        );
        eprintln!("smoke OK: {workers}-thread and 1-thread summaries are byte-identical");
    }
}

#[cfg(unix)]
fn serve_mode(socket: PathBuf, store_path: Option<PathBuf>) {
    use dpsyn_explore::{serve, ServeConfig};
    eprintln!(
        "serving explorations on `{}` (store: {}) — send {{\"shutdown\":true}} to stop",
        socket.display(),
        store_path
            .as_ref()
            .map_or("in-memory".to_string(), |path| path.display().to_string())
    );
    let mut config = ServeConfig::new(socket);
    config.store_path = store_path;
    serve(&config).expect("server runs until shutdown");
}

#[cfg(not(unix))]
fn serve_mode(_socket: PathBuf, _store: Option<PathBuf>) {
    eprintln!("--serve requires Unix domain sockets and is unavailable on this platform");
    std::process::exit(1);
}

/// End-to-end self-test of the server mode; see the module docs. Panics (failing
/// CI) on any divergence.
#[cfg(unix)]
fn serve_smoke() {
    use dpsyn_explore::{serve, ServeConfig, ServeResponse, SimActivity};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    let scratch = std::env::temp_dir().join(format!("dpsyn-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir creates");
    let socket = scratch.join("explore.sock");
    let store = scratch.join("store.txt");
    let _ = std::fs::remove_file(&store);
    let mut config = ServeConfig::new(socket.clone());
    config.store_path = Some(store.clone());
    let server = std::thread::spawn(move || serve(&config));

    // The smoke matrix as a protocol request (single-threaded for a fixed job
    // order; determinism across thread counts is `--smoke`'s job).
    let request = concat!(
        r#"{"sources":[{"design":"x_squared"},{"design":"mixed_poly"},{"sum":3}],"#,
        r#""widths":[4],"skews":["keep",2.0],"#,
        r#""flows":["conventional","csa_opt","fa_aot","fa_alp"],"seed":7,"threads":1}"#,
        "\n"
    );
    let reference = explore(&smoke_spec().threads(1).build().expect("smoke spec"))
        .expect("batch smoke run succeeds")
        .render_summary();

    let connect = || -> UnixStream {
        // The server binds asynchronously; retry briefly.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(&socket) {
                Ok(stream) => return stream,
                Err(error) if Instant::now() < deadline => {
                    let _ = error;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(error) => panic!("cannot connect to serve socket: {error}"),
            }
        }
    };
    let read_response = |stream: &mut UnixStream| -> ServeResponse {
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("response line arrives");
        ServeResponse::parse(&line).expect("response parses")
    };

    // Request 1: cold — populates the shared store.
    let mut first = connect();
    first.write_all(request.as_bytes()).expect("request sends");
    let cold = read_response(&mut first);
    assert!(cold.ok, "cold request failed: {}", cold.error);
    assert_eq!(
        cold.summary, reference,
        "cold summary must match batch mode"
    );
    drop(first);

    // Requests 2 and 3: two *overlapping* connections — both written before
    // either response is read, so the server handles them concurrently against
    // the warmed store.
    let mut second = connect();
    let mut third = connect();
    second.write_all(request.as_bytes()).expect("request sends");
    third.write_all(request.as_bytes()).expect("request sends");
    for (label, stream) in [("second", &mut second), ("third", &mut third)] {
        let warm = read_response(stream);
        assert!(warm.ok, "{label} request failed: {}", warm.error);
        assert_eq!(
            warm.summary, reference,
            "{label} (warm) summary must be byte-identical to batch mode"
        );
        assert!(
            warm.store_hits > 0,
            "{label} request saw no warm store hits (jobs={}, hits={})",
            warm.jobs,
            warm.store_hits
        );
        eprintln!(
            "serve smoke: {label} request {} jobs, {} warm hit(s)",
            warm.jobs, warm.store_hits
        );
    }
    drop(second);
    drop(third);

    // Request 4: the smoke matrix with simulated switching activity. The stimulus
    // digest keys it apart from the analytic entries (no warm hits), and the
    // summary gains the simulated columns — byte-identical to batch mode.
    let sim_request = concat!(
        r#"{"sources":[{"design":"x_squared"},{"design":"mixed_poly"},{"sum":3}],"#,
        r#""widths":[4],"skews":["keep",2.0],"#,
        r#""flows":["conventional","csa_opt","fa_aot","fa_alp"],"seed":7,"threads":1,"#,
        r#""sim_activity":{"seed":11,"vectors":256}}"#,
        "\n"
    );
    let sim_reference = explore(
        &smoke_spec()
            .threads(1)
            .sim_activity(SimActivity {
                seed: 11,
                vectors: 256,
            })
            .build()
            .expect("sim smoke spec"),
    )
    .expect("batch sim smoke run succeeds")
    .render_summary();
    let mut simulated = connect();
    simulated
        .write_all(sim_request.as_bytes())
        .expect("sim request sends");
    let sim = read_response(&mut simulated);
    assert!(sim.ok, "sim request failed: {}", sim.error);
    assert_eq!(
        sim.summary, sim_reference,
        "sim summary must match batch mode"
    );
    assert!(
        sim.summary.contains("sim mW") && sim.summary.contains("div%"),
        "sim summary must carry the simulated columns"
    );
    assert_eq!(
        sim.store_hits, 0,
        "a simulated request must never be served from analytic store entries"
    );
    drop(simulated);
    eprintln!("serve smoke: simulated-activity request carries the sim columns");

    // Request 5: a malformed `sim_activity` must be rejected with its typed error,
    // not explored analytically.
    let malformed_request = concat!(
        r#"{"sources":[{"design":"x_squared"}],"flows":["conventional"],"#,
        r#""sim_activity":{"seed":11}}"#,
        "\n"
    );
    let mut malformed = connect();
    malformed
        .write_all(malformed_request.as_bytes())
        .expect("malformed request sends");
    let rejected = read_response(&mut malformed);
    assert!(!rejected.ok, "a seed-only sim_activity must be rejected");
    assert!(
        rejected.error.contains("requires a `vectors` count"),
        "unexpected rejection reason: {}",
        rejected.error
    );
    drop(malformed);
    eprintln!(
        "serve smoke: malformed sim_activity rejected ({})",
        rejected.error
    );

    // Request 6: the admission/health status — hit-rate, in-flight and store
    // counters must be answered and coherent with the sweeps above.
    let mut statusline = connect();
    statusline
        .write_all(b"{\"status\":{}}\n")
        .expect("status request sends");
    let status_response = read_response(&mut statusline);
    assert!(status_response.ok, "status must answer");
    let status = status_response.status.expect("status payload present");
    assert!(
        status.completed >= 4,
        "at least the four sweeps completed (got {})",
        status.completed
    );
    assert!(
        status.hit_rate > 0.0,
        "warm sweeps must have produced a positive store hit-rate"
    );
    assert_eq!(status.store, "ok", "the healthy store reports ok");
    assert!(status.records > 0, "the store holds the smoke records");
    assert_eq!(status.in_flight, 0, "no sweep is executing now");
    drop(statusline);
    eprintln!(
        "serve smoke: status answered ({} completed, hit-rate {:.3}, store {})",
        status.completed, status.hit_rate, status.store
    );

    // Graceful shutdown: acknowledged, server thread exits, socket file removed.
    let mut closer = connect();
    closer
        .write_all(b"{\"shutdown\":true}\n")
        .expect("shutdown sends");
    let ack = read_response(&mut closer);
    assert!(ack.ok && ack.shutdown, "shutdown must be acknowledged");
    drop(closer);
    server
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
    assert!(store.exists(), "store must persist across server shutdown");
    serve_smoke_degraded(&scratch, &store, connect, read_response);
    let _ = std::fs::remove_dir_all(&scratch);
    eprintln!("serve smoke OK: overlapping warm requests byte-identical to batch mode");
}

/// Second phase of the serve smoke: a server whose store is *unavailable* (a
/// permanent injected read+write outage) must keep answering — degraded, flagged
/// as such in both the sweep response and the status — and still shut down
/// cleanly. This is the degrade-don't-die contract, driven end to end.
#[cfg(unix)]
fn serve_smoke_degraded(
    scratch: &std::path::Path,
    store: &std::path::Path,
    connect: impl Fn() -> std::os::unix::net::UnixStream,
    read_response: impl Fn(&mut std::os::unix::net::UnixStream) -> dpsyn_explore::ServeResponse,
) {
    use dpsyn_explore::faults::FaultPlan;
    use dpsyn_explore::{serve, ServeConfig};
    use std::io::Write;

    let socket = scratch.join("explore.sock");
    let mut config = ServeConfig::new(socket.clone());
    config.store_path = Some(store.to_path_buf());
    config.faults = Some(
        FaultPlan::builder()
            .store_read_outage(1, u64::MAX)
            .store_write_outage(1, u64::MAX)
            .build(),
    );
    let server = std::thread::spawn(move || serve(&config));

    let request = concat!(
        r#"{"sources":[{"design":"x_squared"}],"flows":["conventional","fa_aot"],"#,
        r#""seed":7,"threads":1}"#,
        "\n"
    );
    let mut stream = connect();
    stream.write_all(request.as_bytes()).expect("request sends");
    let degraded = read_response(&mut stream);
    assert!(
        degraded.ok,
        "a store outage must not fail the sweep: {}",
        degraded.error
    );
    assert_eq!(degraded.points, 2, "the sweep computed through");
    assert_eq!(
        degraded.store, "degraded",
        "the response must flag the degraded store"
    );
    assert_eq!(
        degraded.store_hits, 0,
        "an unloadable store cannot serve warm hits"
    );
    drop(stream);

    let mut statusline = connect();
    statusline
        .write_all(b"{\"status\":{}}\n")
        .expect("status request sends");
    let status = read_response(&mut statusline)
        .status
        .expect("degraded server still answers status");
    assert_eq!(status.store, "degraded");
    assert_eq!(status.completed, 1);
    assert_eq!(
        status.hit_rate, 0.0,
        "nothing was loaded from the unavailable file, so no hit can be warm"
    );
    assert!(
        status.records > 0,
        "the computed-through records are held in memory awaiting a flush"
    );
    drop(statusline);

    let mut closer = connect();
    closer
        .write_all(b"{\"shutdown\":true}\n")
        .expect("shutdown sends");
    let ack = read_response(&mut closer);
    assert!(
        ack.ok && ack.shutdown,
        "degraded server still acknowledges shutdown"
    );
    drop(closer);
    server
        .join()
        .expect("degraded server thread joins")
        .expect("degraded server exits cleanly despite the failing final flush");
    eprintln!("serve smoke: store-outage phase served degraded and shut down cleanly");
}

#[cfg(not(unix))]
fn serve_smoke() {
    eprintln!("--serve-smoke requires Unix domain sockets; skipping");
}
