//! Free-form design-space exploration: crosses benchmark designs and synthetic
//! workloads with arrival-skew and probability-bias profiles over every synthesis
//! flow, and prints the per-flow summary plus the delay × power × area Pareto front.
//!
//! ```bash
//! cargo run --release -p dpsyn-bench --bin explore            # full sweep
//! cargo run --release -p dpsyn-bench --bin explore -- --smoke # small CI matrix
//! ```
//!
//! The worker count defaults to the host's available parallelism (the spec builder's
//! default), and the work-stealing scheduler's per-run stats — chunks, jobs and
//! steals per worker — are reported on stderr. `--smoke` additionally re-runs its
//! matrix single-threaded and asserts the rendered summary is byte-identical — the
//! engine's determinism contract, checked end to end.

use dpsyn_baselines::Flow;
use dpsyn_explore::{
    explore, explore_with_stats, BiasProfile, ExplorationSpec, ExplorationSpecBuilder, SkewProfile,
};

/// The small deterministic matrix CI smoke-runs: 24 jobs.
fn smoke_spec() -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .design(dpsyn_designs::x_squared())
        .design(dpsyn_designs::mixed_poly())
        .sum_workload(3)
        .width(4)
        .skews([SkewProfile::Keep, SkewProfile::Uniform(2.0)])
        .flows([Flow::Conventional, Flow::CsaOpt, Flow::FaAot, Flow::FaAlp])
        .seed(7)
}

/// The full sweep: four benchmark designs plus an 8-operand sum workload, crossed
/// with three skew and two bias profiles over all six flows (216 jobs).
fn full_spec() -> ExplorationSpecBuilder {
    ExplorationSpec::builder()
        .designs([
            dpsyn_designs::x2_x_y(),
            dpsyn_designs::mixed_poly(),
            dpsyn_designs::iir(),
            dpsyn_designs::serial_adapter(),
        ])
        .sum_workload(8)
        .widths([8, 12])
        .skews([
            SkewProfile::Keep,
            SkewProfile::Uniform(2.0),
            SkewProfile::Uniform(4.0),
        ])
        .biases([BiasProfile::Keep, BiasProfile::Uniform(0.3)])
        .flows([
            Flow::Conventional,
            Flow::CsaOpt,
            Flow::WallaceFixed,
            Flow::FaRandom(8),
            Flow::FaAot,
            Flow::FaAlp,
        ])
        .seed(7)
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let builder = if smoke { smoke_spec() } else { full_spec() };
    // No explicit `.threads(..)`: the builder defaults to the available parallelism.
    let spec = builder.build().expect("exploration spec is well-formed");
    let workers = spec.threads();
    eprintln!(
        "exploring {} jobs on {} worker thread(s) ...",
        spec.jobs().len(),
        workers
    );
    let (results, stats) = explore_with_stats(&spec).expect("every flow succeeds");
    for (worker, worker_stats) in stats.workers.iter().enumerate() {
        eprintln!(
            "worker {worker}: {} chunk(s), {} job(s), {} steal(s)",
            worker_stats.chunks, worker_stats.jobs, worker_stats.steals
        );
    }
    let (busiest, laziest) = stats.job_spread();
    eprintln!(
        "scheduler: {} total steal(s), busiest/laziest worker ran {busiest}/{laziest} job(s)",
        stats.total_steals()
    );
    let summary = results.render_summary();
    print!("{summary}");
    if smoke {
        // Determinism gate: the single-threaded run must render byte-identically.
        let reference = explore(&smoke_spec().threads(1).build().expect("smoke spec"))
            .expect("single-threaded smoke run succeeds");
        assert_eq!(
            summary,
            reference.render_summary(),
            "exploration summary diverged between {workers} worker(s) and 1 worker"
        );
        eprintln!("smoke OK: {workers}-thread and 1-thread summaries are byte-identical");
    }
}
