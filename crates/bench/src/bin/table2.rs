//! Regenerates Table 2 of the paper: switching power of FA_random vs FA_ALP over the
//! five filter/transform designs with random input signal probabilities, plus the
//! delta-searched `fa_anneal` column at an equal seed budget.

fn main() {
    let lib = dpsyn_tech::TechLibrary::lcbg10pv_like();
    let designs = dpsyn_designs::table2_designs();
    eprintln!(
        "synthesizing {} designs with random and power-driven selection ...",
        designs.len()
    );
    let rows = dpsyn_bench::table2(&designs, &lib, 2026, 5);
    print!("{}", dpsyn_bench::format_table2(&rows));
}
