//! Regenerates Figure 4 of the paper: the effect of FA input selection on switching
//! energy for four single-bit addends with p = 0.1, 0.2, 0.3, 0.4 and Ws = Wc = 1.

fn main() {
    let result = dpsyn_bench::figure4();
    println!("Figure 4 — effect of signal selection on power (Ws = Wc = 1)");
    let probabilities = [0.1, 0.2, 0.3, 0.4];
    for (index, energy) in result.energy_leaving_out.iter().enumerate() {
        let marker = if index == result.sc_lp_leaves_out {
            "  <- SC_LP selection"
        } else {
            ""
        };
        println!(
            "  FA over the three addends other than p = {:.1}: E_switching = {:.4}{}",
            probabilities[index], energy, marker
        );
    }
    println!("paper reports E(T1) = 0.411 vs E(T2) = 0.400 for its two example trees;");
    println!("the ordering (keeping the most skewed addends is cheaper) is what matters.");
}
