//! Ablation sweeps beyond the paper's tables: how the advantage of the fine-grained
//! allocation grows with input arrival skew and with input probability skew.

fn main() {
    let lib = dpsyn_tech::TechLibrary::lcbg10pv_like();
    println!("# arrival-skew sweep (8 x 12-bit operands, delay in ns)");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "skew", "fa_aot", "wallace", "csa_opt"
    );
    for point in dpsyn_bench::arrival_skew_sweep(&[0.0, 0.5, 1.0, 2.0, 4.0, 8.0], &lib, 7) {
        println!(
            "{:>6.1} {:>10.3} {:>10.3} {:>10.3}",
            point.skew, point.ours, point.wallace, point.reference
        );
    }
    println!();
    println!("# probability-skew sweep (8 x 12-bit operands, switching energy)");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "skew", "fa_alp", "wallace", "fa_random"
    );
    for point in dpsyn_bench::probability_skew_sweep(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.45], &lib, 7) {
        println!(
            "{:>6.2} {:>10.3} {:>10.3} {:>10.3}",
            point.skew, point.ours, point.wallace, point.reference
        );
    }
}
